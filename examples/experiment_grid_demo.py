"""Demo: resumable experiment orchestration over the evaluation grid.

Runs the Fig. 12 ablation grid through the :class:`repro.experiments.Runner`
twice — the first pass executes and caches every stage, the second is a pure
cache replay (a no-op) — then simulates an operator interrupt and shows the
grid resuming without redoing finished work.

Run with::

    PYTHONPATH=src REPRO_PROFILE=ci python examples/experiment_grid_demo.py
"""

import tempfile
from pathlib import Path

from repro import configure_logging, get_profile
from repro.experiments import Runner, RunnerConfig, named_grid
from repro.experiments.spec import STAGE_EVALUATE


def main() -> None:
    configure_logging()
    profile = get_profile()
    specs = named_grid("fig12", profile)
    print(f"grid: {len(specs)} specs at profile {profile.name}")
    for spec in specs:
        print("  ", spec.spec_id, spec.describe())

    with tempfile.TemporaryDirectory() as tmp:
        config = RunnerConfig(cache_dir=Path(tmp), dispatch="thread", max_workers=4)

        print("\n-- first run (cold cache) --")
        first = Runner(config).run(specs)
        print(f"executed {first.cache_misses} stages in {first.executed_seconds:.1f}s "
              f"({len(first.table)} records)")

        print("\n-- second run (warm cache: a no-op) --")
        second = Runner(config).run(specs)
        print(f"fully cached: {second.fully_cached} "
              f"(hits {second.cache_hits}, wall {second.wall_seconds:.2f}s)")

        print("\n-- interrupt / resume --")
        fresh = RunnerConfig(cache_dir=Path(tmp) / "fresh", dispatch="serial")
        victim = specs[-1].spec_id

        def sabotage(stage) -> None:
            if stage.spec.spec_id == victim and stage.kind == STAGE_EVALUATE:
                raise KeyboardInterrupt("simulated Ctrl-C")

        try:
            Runner(fresh, stage_callback=sabotage).run(specs)
        except KeyboardInterrupt:
            print("interrupted mid-grid; finished stages are already durable")
        resumed = Runner(fresh).run(specs)
        executed = [result for result in resumed.stage_results if not result.cached]
        print(f"resume executed only {len(executed)} stages "
              f"(all in spec {victim}); table intact: {len(resumed.table)} records")

        print("\nmean accuracy by variant:")
        for method, accuracy in sorted(resumed.table.mean_by_method("accuracy").items()):
            print(f"  {method:>15}: {accuracy:.3f}")


if __name__ == "__main__":
    main()
