"""User authentication with Low-Cost Weight Searching (LWS).

The weights of the four pre-training tasks are task-dependent: user
authentication (UA) leans on per-user signal idiosyncrasies, so the optimal
mix differs from activity recognition.  This example runs the paper's
Algorithm 1 — Bayesian Optimization over the weight simplex with a Gaussian
Process performance model and Expected Improvement — on the UA task of the
simulated HHAR dataset, then trains the final model with the searched
weights.

Run with:  python examples/user_authentication_weight_search.py
"""

from __future__ import annotations

import numpy as np

from repro import SagaPipeline, load_dataset
from repro.bayesopt import LWSConfig
from repro.core import SagaConfig
from repro.models import BackboneConfig
from repro.training import FinetuneConfig, PretrainConfig

SEED = 1
LABELLING_RATE = 0.10  # 10% of the training labels, as in the paper's sweep


def main() -> None:
    rng = np.random.default_rng(SEED)

    dataset = load_dataset("hhar", scale=0.06)
    splits = dataset.split(rng=rng, stratify_task="user")
    labelled = splits.train.labelled_fraction("user", LABELLING_RATE, rng=rng)
    print(f"UA task on simulated HHAR: {dataset.num_classes('user')} users, "
          f"{len(labelled)} labelled windows ({LABELLING_RATE:.0%} of the training split)")

    config = SagaConfig(
        backbone=BackboneConfig(
            input_channels=dataset.num_channels,
            window_length=dataset.window_length,
            hidden_dim=16, num_layers=1, num_heads=2, intermediate_dim=32,
        ),
        pretrain=PretrainConfig(epochs=4, batch_size=32, learning_rate=3e-3, seed=SEED),
        finetune=FinetuneConfig(epochs=12, batch_size=32, learning_rate=3e-3, seed=SEED),
        # A small search budget already improves over random weights; the paper
        # uses a larger budget on GPU hardware.
        lws=LWSConfig(budget=4, initial_random=2, grid_resolution=3, seed=SEED),
    )
    pipeline = SagaPipeline(config)

    print("\nRunning LWS (each trial = pre-train + fine-tune + validate) ...")
    search = pipeline.search_weights(splits.train, labelled, "user", splits.validation, rng=rng)
    for trial in search.trials:
        pretty = {k: round(v, 2) for k, v in trial.weights.items()}
        print(f"  trial {trial.iteration}: weights={pretty}  val.accuracy={trial.performance:.3f}")
    print(f"  best weights: { {k: round(v, 2) for k, v in search.best_weights.items()} } "
          f"(val.accuracy={search.best_performance:.3f})")

    print("\nTraining the final model with the searched weights ...")
    pipeline.pretrain(splits.train, weights=search.best_weights, rng=rng)
    pipeline.finetune(labelled, "user", validation=splits.validation, rng=rng)
    metrics = pipeline.evaluate(splits.test, "user")
    print(f"\nTest-set user authentication: accuracy={metrics.accuracy:.3f}  F1={metrics.f1:.3f}")


if __name__ == "__main__":
    main()
