"""Data-parallel pre-training demo: two workers, one logical optimizer.

This example shows the `repro.parallel` subsystem end to end:

1. generate a synthetic unlabelled IMU dataset;
2. run masked multi-level pre-training single-process (the baseline);
3. run the *same* pre-training with ``num_workers=2`` — each worker holds a
   model replica, computes gradients over its half of every batch, and the
   shard gradients are combined by a synchronous weighted all-reduce before
   the one (unchanged) Adam step;
4. demonstrate the sharded, seeded DataLoader that keeps replicas consistent;
5. report samples/sec for both runs and the speedup.

On a single-CPU host the parallel run cannot be faster (there is no second
core to compute on) — the demo still works and prints the honest ratio.

Run with:  python examples/parallel_pretrain_demo.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets import SyntheticIMUConfig, generate_synthetic_dataset
from repro.datasets.loaders import DataLoader
from repro.models import BackboneConfig
from repro.parallel import fork_available
from repro.training import PretrainConfig, Pretrainer

SEED = 0
NUM_WORKERS = 2
EPOCHS = 3
BATCH_SIZE = 32


def build_dataset():
    config = SyntheticIMUConfig(
        num_users=4,
        activities=("walking", "jogging", "sitting", "standing"),
        windows_per_combination=8,
        window_length=48,
        seed=SEED,
        name="parallel-demo",
    )
    return generate_synthetic_dataset(config)


def pretrain(dataset, num_workers: int, backend: str):
    backbone_config = BackboneConfig(
        input_channels=dataset.num_channels,
        window_length=dataset.window_length,
        hidden_dim=16,
        num_layers=1,
        num_heads=2,
        intermediate_dim=32,
    )
    config = PretrainConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        seed=SEED,
        log_every=0,
        num_workers=num_workers,
        parallel_backend=backend,
        prefetch_batches=2 if num_workers else 0,
    )
    started = time.perf_counter()
    result = Pretrainer(config, backbone_config).pretrain(dataset)
    seconds = time.perf_counter() - started
    return result, len(dataset) * EPOCHS / seconds


def show_sharded_loading(dataset):
    print("\nSharded, seeded loading (what keeps replicas consistent):")
    reference = DataLoader(dataset, batch_size=8, seed=SEED)
    shards = [
        DataLoader(dataset, batch_size=4, seed=SEED, num_shards=2, shard_index=w)
        for w in range(2)
    ]
    reference.set_epoch(0)
    for shard in shards:
        shard.set_epoch(0)
    global_batch = next(iter(reference))
    shard_batches = [next(iter(shard)) for shard in shards]
    union = np.concatenate([b.indices for b in shard_batches])
    print(f"  step-0 global batch : {global_batch.indices.tolist()}")
    for w, batch in enumerate(shard_batches):
        print(f"  step-0 shard {w}      : {batch.indices.tolist()}")
    print(f"  union == global     : {np.array_equal(union, global_batch.indices)}")


def main() -> None:
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    backend = "process" if fork_available() else "thread"
    dataset = build_dataset()
    print(f"dataset: {len(dataset)} windows, {cpus} CPU(s), backend: {backend}")

    single_result, single_sps = pretrain(dataset, num_workers=0, backend=backend)
    print(f"\nsingle-process : {single_sps:8.1f} samples/sec, "
          f"final loss {single_result.history.final_loss():.5f}")

    parallel_result, parallel_sps = pretrain(dataset, num_workers=NUM_WORKERS, backend=backend)
    print(f"{NUM_WORKERS}-worker       : {parallel_sps:8.1f} samples/sec, "
          f"final loss {parallel_result.history.final_loss():.5f}")
    print(f"speedup        : {parallel_sps / single_sps:.2f}x "
          f"({'expect >= 1.3x' if cpus >= 2 else 'single CPU — no parallelism available'})")

    show_sharded_loading(dataset)


if __name__ == "__main__":
    main()
