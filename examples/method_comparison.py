"""Compare Saga against the paper's baselines at several labelling rates.

Runs the experiment harness used by the benchmark suite (Fig. 6/7 of the
paper) on a single task/dataset pair and prints the accuracy table — Saga,
LIMU (point-level masking only), CL-HAR (contrastive), TPN (transformation
prediction) and a no-pre-training supervised model.

Run with:  python examples/method_comparison.py
(Set REPRO_PROFILE=quick or =paper for larger, slower, higher-fidelity runs.)
"""

from __future__ import annotations

from repro.core.experiment import ALL_METHOD_NAMES, ExperimentRunner, get_profile

TASK = "AR"
DATASET = "hhar"
RATES = (0.05, 0.20)


def main() -> None:
    profile = get_profile()
    print(f"Experiment profile: {profile.name} "
          f"(dataset scale {profile.dataset_scale}, window {profile.window_length}, "
          f"hidden {profile.hidden_dim}, pretrain {profile.pretrain_epochs} epochs)")
    runner = ExperimentRunner(profile, seed=0)

    print(f"\nComparing {len(ALL_METHOD_NAMES)} methods on {TASK}/{DATASET} "
          f"at labelling rates {[f'{r:.0%}' for r in RATES]} ...\n")
    table = runner.run_comparison(ALL_METHOD_NAMES, TASK, DATASET, labelling_rates=RATES)

    print("Accuracy by method and labelling rate:")
    print(table.format_table("accuracy"))
    print("\nMacro-F1 by method and labelling rate:")
    print(table.format_table("f1"))
    print("\nRanking by mean accuracy: " + " > ".join(table.ranking("accuracy")))


if __name__ == "__main__":
    main()
