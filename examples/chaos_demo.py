"""Chaos drill: deterministic fault injection against every self-healing seam.

This is ``docs/OPERATIONS.md`` §6 ("Failure modes & recovery") as a
runnable script.  Four drills, all driven by :mod:`repro.faults` plans so
every run injects identically:

1. **worker death mid-step** — SIGKILL (process backend) or an injected
   error (thread fallback) inside a data-parallel training step; the
   engine respawns the worker, replays the lost chunk, and the final
   parameters match a fault-free run to 1e-6;
2. **damaged JIT tape** — a replay fault on the serving hot path; the
   request is answered eagerly, the tape is quarantined and re-traced,
   and the ``serving_quarantined_tapes`` gauge records the event;
3. **corrupt checkpoint** — the newest registry version is garbage on
   disk; ``load()`` rolls back to the previous good version and publish
   numbering moves on past it;
4. **gateway under chaos** — a live gateway serving retrying closed-loop
   clients while connection reads randomly drop and stall: every offered
   request resolves as exactly one response or one transport error,
   sheds are 429/503, and the pending gauge returns to zero.

The fault-site catalog and plan grammar are in ``docs/FAULTS.md``.

Run with:  python examples/chaos_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.datasets.loaders import Batch
from repro.models import BackboneConfig, SagaBackbone
from repro.models.composite import ClassificationModel
from repro.nn import SGD, CrossEntropyLoss, Flatten, Linear, ReLUActivation, Sequential
from repro.nn.utils import parameters_to_vector
from repro.parallel import DataParallelEngine, fork_available
from repro.serving import (
    InferenceServer,
    ModelRegistry,
    RetryPolicy,
    ServerConfig,
    serve_gateway,
)
from repro.serving.loadgen import predict_body, run_closed_loop

SEED = 7
WINDOW_LENGTH = 32
NUM_CHANNELS = 6
NUM_CLASSES = 4


# ----------------------------------------------------------------------
# Drill 1: worker death mid-step
# ----------------------------------------------------------------------
def train(plan=None, backend="thread"):
    loss_fn = CrossEntropyLoss()
    rng = np.random.default_rng(SEED)
    model = Sequential(
        Flatten(), Linear(12, 16, rng=rng), ReLUActivation(),
        Linear(16, NUM_CLASSES, rng=rng),
    )
    optimizer = SGD(model.parameters(), lr=0.05)
    data_rng = np.random.default_rng(SEED + 1)
    if plan is not None:
        faults.arm(plan)
    try:
        with DataParallelEngine(
            model, lambda m, batch, r: loss_fn(m(batch.windows), batch.labels),
            num_workers=2, backend=backend,
        ) as engine:
            for _ in range(4):
                engine.accumulate(Batch(
                    windows=data_rng.normal(size=(8, 3, 4)),
                    labels=data_rng.integers(0, NUM_CLASSES, size=8),
                ))
                optimizer.step()
                engine.broadcast()
    finally:
        faults.disarm()
    return parameters_to_vector(model.parameters())


def drill_worker_death() -> None:
    backend = "process" if fork_available() else "thread"
    kind = "kill" if backend == "process" else "error"
    print(f"drill 1: {kind} worker rank 1 mid-step ({backend} backend)")
    baseline = train(backend=backend)
    recovered = train(
        plan=f"parallel.worker.step:{kind}:rank=1,step=2,times=1", backend=backend
    )
    diff = float(np.max(np.abs(recovered - baseline)))
    print(f"  respawned + replayed; max |param diff| vs fault-free = {diff:.2e}\n")


# ----------------------------------------------------------------------
# Drill 2: damaged JIT tape on the serving hot path
# ----------------------------------------------------------------------
def build_model(seed=SEED) -> ClassificationModel:
    rng = np.random.default_rng(seed)
    backbone = SagaBackbone(
        BackboneConfig(
            input_channels=NUM_CHANNELS, window_length=WINDOW_LENGTH,
            hidden_dim=16, num_layers=1, num_heads=2, intermediate_dim=32,
        ),
        rng=rng,
    )
    model = ClassificationModel(backbone, NUM_CLASSES, rng=rng)
    model.eval()
    return model


def drill_tape_quarantine() -> None:
    print("drill 2: replay fault on the serving forward path")
    server = InferenceServer(
        model=build_model(), config=ServerConfig(max_batch_size=8, max_wait_ms=1.0)
    )
    try:
        rng = np.random.default_rng(SEED + 2)
        window = rng.standard_normal((WINDOW_LENGTH, NUM_CHANNELS))
        server.predict(window)  # traces the bucket
        with faults.injected("serving.forward:error:times=1"):
            prediction = server.predict(window)  # fault → quarantine → eager
        stats = server._compiled.stats
        print(f"  faulted request still answered: label={prediction.label}")
        print(f"  quarantines={stats.quarantines}, fallbacks={stats.fallbacks}")
        server.predict(window)  # re-traces a fresh tape
        print(f"  re-traced: traces={stats.traces}, replays={stats.replays}\n")
    finally:
        server.close()


# ----------------------------------------------------------------------
# Drill 3: corrupt checkpoint in the registry
# ----------------------------------------------------------------------
def drill_registry_rollback() -> None:
    import tempfile

    print("drill 3: corrupt newest checkpoint in the model registry")
    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        registry.publish(build_model(1), "hhar", "activity")
        v2 = registry.publish(build_model(2), "hhar", "activity")
        v2.path.write_bytes(b"garbage, not an npz")
        _, served = registry.load("hhar", "activity")
        print(f"  v2 corrupt on disk -> load() rolled back to v{served.version}")
        v3 = registry.publish(build_model(3), "hhar", "activity")
        print(f"  next publish superseded it as v{v3.version}\n")


# ----------------------------------------------------------------------
# Drill 4: live gateway under connection chaos
# ----------------------------------------------------------------------
def drill_gateway_chaos() -> None:
    print("drill 4: gateway under dropped + stalled connection reads")
    server = InferenceServer(
        model=build_model(), config=ServerConfig(max_batch_size=16, max_wait_ms=2.0)
    )
    gateway = serve_gateway(server, port=0)
    try:
        rng = np.random.default_rng(SEED + 3)
        bodies = [
            predict_body(w)
            for w in rng.standard_normal((16, WINDOW_LENGTH, NUM_CHANNELS))
        ]
        spec = "serving.gateway.read:error:p=0.1;serving.gateway.read:latency:ms=2,p=0.2"
        with faults.injected(spec, seed=SEED) as plan:
            result = run_closed_loop(
                gateway.url, "/v1/predict", lambda i: bodies[i % 16],
                clients=8, requests_per_client=8,
                retry=RetryPolicy(max_retries=3, seed=SEED),
            )
            injected = plan.injected()
        accounted = result.completed + result.errors == result.offered
        print(f"  injected {injected} faults into connection reads")
        print(
            f"  offered={result.offered} completed={result.completed} "
            f"transport_errors={result.errors} retries={result.retries}"
        )
        print(f"  statuses={dict(result.status_counts)}")
        print(f"  exactly-once accounting holds: {accounted}")
        print(f"  pending after drill: {gateway._pending}\n")
    finally:
        gateway.stop()
        server.close()


def main() -> None:
    drill_worker_death()
    drill_tape_quarantine()
    drill_registry_rollback()
    drill_gateway_chaos()
    print("all drills recovered. site catalog: docs/FAULTS.md; runbook: docs/OPERATIONS.md §6")


if __name__ == "__main__":
    main()
