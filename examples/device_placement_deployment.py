"""Device-placement recognition plus on-phone deployment cost analysis.

Trains a Saga model for the DP task (which phone position the device is worn
at) on the simulated Shoaib dataset — the only dataset with placement labels
and a magnetometer — and then reports the deployment costs the paper studies
in Table IV and Figure 13: parameter count, disk size, estimated FLOPs and
simulated inference latency on the five evaluation phones.

Run with:  python examples/device_placement_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import SagaPipeline, load_dataset
from repro.core import SagaConfig
from repro.deployment import model_cost, phone_latency_profile
from repro.models import BackboneConfig
from repro.training import FinetuneConfig, PretrainConfig

SEED = 2


def main() -> None:
    rng = np.random.default_rng(SEED)

    dataset = load_dataset("shoaib", scale=0.03)
    splits = dataset.split(rng=rng, stratify_task="placement")
    labelled = splits.train.few_shot("placement", 12, rng=rng)
    print(f"Simulated Shoaib: {dataset.num_channels} channels "
          f"(acc+gyr+mag), {dataset.num_classes('placement')} placements, "
          f"{len(labelled)} labelled windows")

    config = SagaConfig(
        backbone=BackboneConfig(
            input_channels=dataset.num_channels,
            window_length=dataset.window_length,
            hidden_dim=24, num_layers=2, num_heads=2, intermediate_dim=48,
        ),
        pretrain=PretrainConfig(epochs=4, batch_size=32, learning_rate=2e-3, seed=SEED),
        finetune=FinetuneConfig(epochs=15, batch_size=32, learning_rate=2e-3, seed=SEED),
    )
    pipeline = SagaPipeline(config)

    print("\nPre-training (multi-level masking, uniform weights) and fine-tuning ...")
    pipeline.pretrain(splits.train, rng=rng)
    pipeline.finetune(labelled, "placement", validation=splits.validation, rng=rng)
    metrics = pipeline.evaluate(splits.test, "placement")
    print(f"Test-set device placement: accuracy={metrics.accuracy:.3f}  F1={metrics.f1:.3f}")

    print("\nDeployment cost of the fine-tuned model (Table IV / Figure 13 style):")
    model = pipeline.classifier_model
    cost = model_cost(model, dataset.window_length)
    print(f"  parameters: {cost.parameters:,}  ({cost.parameters_kb:.1f} KB at float32)")
    print(f"  disk size:  {cost.disk_kb:.1f} KB")
    print(f"  forward pass: {cost.mflops:.2f} MFLOPs per window")
    print("  simulated single-window inference latency:")
    for phone, latency_ms in phone_latency_profile(model, dataset.window_length).items():
        print(f"    {phone:<12} {latency_ms:6.2f} ms")


if __name__ == "__main__":
    main()
