"""Quickstart: pre-train a Saga backbone and fine-tune it with very few labels.

This example runs the whole Saga pipeline end to end on a small simulated
HHAR-like dataset:

1. load a dataset and split it 6:2:2;
2. pre-train the backbone on the (unlabelled) training windows with the four
   multi-granularity masking tasks and uniform task weights;
3. fine-tune a GRU classifier using only 10 labelled windows per activity;
4. evaluate on the held-out test split and compare against training the same
   model from scratch on the same 10 labels.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SagaPipeline, load_dataset
from repro.bayesopt import LWSConfig
from repro.core import SagaConfig
from repro.models import BackboneConfig
from repro.training import FinetuneConfig, Finetuner, PretrainConfig, evaluate_model

SEED = 0
LABELS_PER_CLASS = 10


def build_pipeline(dataset) -> SagaPipeline:
    """A laptop-scale Saga configuration (smaller than the paper's, same shape)."""
    config = SagaConfig(
        backbone=BackboneConfig(
            input_channels=dataset.num_channels,
            window_length=dataset.window_length,
            hidden_dim=24,
            num_layers=2,
            num_heads=2,
            intermediate_dim=48,
        ),
        pretrain=PretrainConfig(epochs=6, batch_size=32, learning_rate=2e-3, seed=SEED),
        finetune=FinetuneConfig(epochs=20, batch_size=32, learning_rate=2e-3, seed=SEED),
        lws=LWSConfig(budget=3, initial_random=2),
    )
    return SagaPipeline(config)


def main() -> None:
    rng = np.random.default_rng(SEED)

    print("Loading the simulated HHAR dataset ...")
    dataset = load_dataset("hhar", scale=0.08)
    splits = dataset.split(rng=rng, stratify_task="activity")
    few_labels = splits.train.few_shot("activity", LABELS_PER_CLASS, rng=rng)
    print(f"  windows: {len(dataset)}  train/val/test: {splits.sizes()}")
    print(f"  labelled subset: {len(few_labels)} windows ({LABELS_PER_CLASS} per activity)")

    print("\nPre-training the backbone with multi-level masking (uniform weights) ...")
    pipeline = build_pipeline(dataset)
    pipeline.pretrain(splits.train, rng=rng)
    print(f"  pre-training weights: {pipeline.weights}")

    print("\nFine-tuning the GRU classifier on the labelled subset ...")
    pipeline.finetune(few_labels, "activity", validation=splits.validation, rng=rng)
    saga_metrics = pipeline.evaluate(splits.test, "activity")

    print("\nTraining the same architecture from scratch on the same labels ...")
    from repro.models import SagaBackbone

    scratch_backbone = SagaBackbone(pipeline.config.backbone, rng=np.random.default_rng(SEED))
    scratch = Finetuner(pipeline.config.finetune).finetune(
        scratch_backbone, few_labels, "activity",
        validation_dataset=splits.validation, rng=np.random.default_rng(SEED),
    )
    scratch_metrics = evaluate_model(scratch.model, splits.test, "activity")

    print("\n=== Test-set results (activity recognition, %d labels/class) ===" % LABELS_PER_CLASS)
    print(f"  Saga (pre-trained):   accuracy={saga_metrics.accuracy:.3f}  F1={saga_metrics.f1:.3f}")
    print(f"  No pre-training:      accuracy={scratch_metrics.accuracy:.3f}  F1={scratch_metrics.f1:.3f}")
    if saga_metrics.accuracy >= scratch_metrics.accuracy:
        print("  -> pre-training on unlabelled IMU data pays off at this labelling budget.")
    else:
        print("  -> at this tiny scale the gap can flip; increase scale/epochs to match the paper.")


if __name__ == "__main__":
    main()
