"""Serving demo: train once, publish to the registry, serve live traffic.

This example walks the full deployment story of the reproduction:

1. fine-tune a small classification model on a simulated HHAR dataset;
2. publish it into a versioned :class:`~repro.serving.ModelRegistry`;
3. start an :class:`~repro.serving.InferenceServer` from the registry key,
   with micro-batching on the ``no_grad()`` inference fast path;
4. stream raw 40 Hz IMU samples through the ingestion adapter and classify
   the resulting 20 Hz windows;
5. print the telemetry snapshot and cross-check the observed latency against
   the paper's analytic Fig.-13 latency model.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import load_dataset, serve
from repro.deployment.devices import all_phones
from repro.models import BackboneConfig, SagaBackbone
from repro.serving import IngestionConfig, ModelRegistry, StreamIngestor, cross_check_latency
from repro.training import FinetuneConfig, Finetuner

SEED = 0
WINDOW_LENGTH = 40
SOURCE_RATE_HZ = 40.0
TARGET_RATE_HZ = 20.0


def train_model(dataset, splits, rng):
    """A quick supervised fine-tune — the serving stack is the point here."""
    backbone = SagaBackbone(
        BackboneConfig(
            input_channels=dataset.num_channels,
            window_length=WINDOW_LENGTH,
            hidden_dim=16,
            num_layers=1,
            num_heads=2,
            intermediate_dim=32,
        ),
        rng=rng,
    )
    result = Finetuner(FinetuneConfig(epochs=5, batch_size=32, seed=SEED)).finetune(
        backbone, splits.train, "activity", validation_dataset=splits.validation, rng=rng
    )
    return result.model


def main() -> None:
    rng = np.random.default_rng(SEED)

    print("Training a model to deploy ...")
    dataset = load_dataset("hhar", scale=0.05)
    # Subsample the time axis to the serving window length.
    stride = max(1, dataset.window_length // WINDOW_LENGTH)
    from dataclasses import replace
    from repro.datasets import IMUDataset

    windows = dataset.windows[:, ::stride, :][:, :WINDOW_LENGTH, :]
    dataset = IMUDataset(
        windows=windows,
        labels=dataset.labels,
        metadata=replace(dataset.metadata, window_length=windows.shape[1]),
    )
    splits = dataset.split(rng=rng, stratify_task="activity")
    model = train_model(dataset, splits, rng)

    with tempfile.TemporaryDirectory() as registry_dir:
        print(f"\nPublishing to the model registry at {registry_dir} ...")
        registry = ModelRegistry(registry_dir)
        record = registry.publish(
            model, dataset="hhar", task="activity", profile="demo",
            extra_metadata={"trained_at": time.strftime("%Y-%m-%d")},
        )
        print(f"  published {record.name} ({record.metadata['num_parameters']} parameters)")

        print("\nStarting the inference server (micro-batching, no-grad fast path,")
        print("float32 serving precision — the on-device default) ...")
        with serve(
            registry=registry, dataset="hhar", task="activity", profile="demo",
            max_batch_size=32, max_wait_ms=2.0,  # inference_dtype="float32" default
        ) as server:
            # --- burst traffic: 200 preprocessed windows ----------------------
            burst = rng.standard_normal((200, WINDOW_LENGTH, dataset.num_channels))
            started = time.perf_counter()
            predictions = server.predict_many(list(burst))
            elapsed = time.perf_counter() - started
            print(f"  classified {len(predictions)} windows in {elapsed * 1000:.1f} ms "
                  f"({len(predictions) / elapsed:.0f} req/s)")

            # --- streaming traffic: raw 40 Hz samples ------------------------
            ingestion = IngestionConfig(
                window_length=WINDOW_LENGTH,
                num_channels=dataset.num_channels,
                source_rate_hz=SOURCE_RATE_HZ,
                target_rate_hz=TARGET_RATE_HZ,
            )
            chunks = [rng.standard_normal((125, dataset.num_channels)) for _ in range(8)]
            stream_predictions = server.classify_stream(
                chunks, ingestor=StreamIngestor(ingestion)
            )
            activities = dataset.metadata.class_names.get("activity", ())
            print(f"  streamed {sum(len(c) for c in chunks)} raw samples "
                  f"-> {len(stream_predictions)} windows")
            for i, prediction in enumerate(stream_predictions[:5]):
                label = activities[prediction.label] if activities else prediction.label
                print(f"    window {i}: {label} "
                      f"(confidence {prediction.confidence:.2f}, "
                      f"{prediction.latency_ms:.2f} ms)")

            # --- telemetry ----------------------------------------------------
            snapshot = server.stats()
            print("\nTelemetry snapshot:")
            print(f"  requests={snapshot.requests} batches={snapshot.batches} "
                  f"mean_batch={snapshot.mean_batch_size:.1f} "
                  f"max_queue_depth={snapshot.max_queue_depth}")
            print(f"  latency p50={snapshot.latency_ms['p50']:.2f} ms "
                  f"p90={snapshot.latency_ms['p90']:.2f} ms "
                  f"p99={snapshot.latency_ms['p99']:.2f} ms "
                  f"throughput={snapshot.throughput_rps:.0f} req/s")

            print("\nCross-check against the analytic Fig.-13 latency model:")
            for phone in all_phones():
                check = cross_check_latency(snapshot, server.model, WINDOW_LENGTH, phone)
                print(f"  {check.phone:>12}: predicted {check.predicted_ms:6.2f} ms, "
                      f"observed p50 {check.observed_p50_ms:6.2f} ms "
                      f"(ratio {check.ratio:5.2f}, within 10x: {check.within})")


if __name__ == "__main__":
    main()
