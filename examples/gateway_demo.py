"""Gateway quickstart: serve a model over HTTP and watch it shed load.

This is the network front door end to end, driven entirely with stdlib
clients (``urllib`` / ``http.client``) — everything a deployment does:

1. build a small classification model and an
   :class:`~repro.serving.InferenceServer` (micro-batching, compiled
   float32 forward);
2. start an :class:`~repro.serving.InferenceGateway` on an ephemeral port
   with an attached metrics endpoint (``serve_gateway(...,
   metrics_port=0)``);
3. ``POST /v1/predict`` one window (JSON and the base64 float32 binary
   encoding), ``POST /v1/batch`` a stack, and run a chunked NDJSON
   streaming-ingestion session over ``POST /v1/stream``;
4. push offered load past a deliberately tiny admission bound with the
   open-loop Poisson load generator and watch the ``429`` load-shed path
   engage — with zero transport errors;
5. scrape the live ``/metrics`` endpoint and print the gateway's request,
   latency, and shed series.

The wire protocol is documented in ``docs/PROTOCOL.md``, the operator
guide in ``docs/OPERATIONS.md``.

Run with:  python examples/gateway_demo.py
"""

from __future__ import annotations

import base64
import json
import urllib.request
from http.client import HTTPConnection

import numpy as np

from repro.models import BackboneConfig, SagaBackbone
from repro.models.composite import ClassificationModel
from repro.serving import InferenceServer, ServerConfig, serve_gateway
from repro.serving.loadgen import predict_body, run_open_loop

SEED = 7
WINDOW_LENGTH = 32
NUM_CHANNELS = 6
NUM_CLASSES = 4


def build_model() -> ClassificationModel:
    rng = np.random.default_rng(SEED)
    backbone = SagaBackbone(
        BackboneConfig(
            input_channels=NUM_CHANNELS,
            window_length=WINDOW_LENGTH,
            hidden_dim=16,
            num_layers=1,
            num_heads=2,
            intermediate_dim=32,
        ),
        rng=rng,
    )
    model = ClassificationModel(backbone, NUM_CLASSES, rng=rng)
    model.eval()
    return model


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def run_stream_session(gateway, rng) -> None:
    """One chunked NDJSON ingestion session over a raw keep-alive connection."""
    messages = [
        {"samples": rng.standard_normal((40, NUM_CHANNELS)).tolist()}
        for _ in range(4)
    ]
    messages.append({"end": True})
    connection = HTTPConnection(gateway.config.host, gateway.port, timeout=30)
    try:
        connection.request(
            "POST", "/v1/stream",
            body=iter([json.dumps(m).encode() + b"\n" for m in messages]),
            headers={"Transfer-Encoding": "chunked"}, encode_chunked=True,
        )
        response = connection.getresponse()
        print(f"  stream session: HTTP {response.status}")
        for line in response.read().splitlines():
            if line.strip():
                print(f"    {line.decode()}")
    finally:
        connection.close()


def main() -> None:
    rng = np.random.default_rng(SEED + 1)
    server = InferenceServer(
        model=build_model(),
        config=ServerConfig(max_batch_size=16, max_wait_ms=2.0),
    )
    # max_pending is tiny on purpose: step 4 drives the 429 load-shed path.
    gateway = serve_gateway(server, port=0, metrics_port=0, max_pending=8)
    print(f"gateway listening on {gateway.url}")
    print(f"metrics endpoint on  {gateway.obs_server.url}\n")

    try:
        window = rng.standard_normal((WINDOW_LENGTH, NUM_CHANNELS))
        print("POST /v1/predict (JSON window):")
        print(f"  {post_json(gateway.url + '/v1/predict', {'window': window.tolist()})}")

        encoded = base64.b64encode(
            np.ascontiguousarray(window, dtype="<f4").tobytes()
        ).decode("ascii")
        print("POST /v1/predict (binary window_b64):")
        print(f"  {post_json(gateway.url + '/v1/predict', {'window_b64': encoded})}")

        stack = np.ascontiguousarray(
            rng.standard_normal((4, WINDOW_LENGTH, NUM_CHANNELS)), dtype="<f4"
        )
        batch = post_json(
            gateway.url + "/v1/batch",
            {"windows_b64": base64.b64encode(stack.tobytes()).decode("ascii")},
        )
        print(f"POST /v1/batch ({batch['count']} windows):")
        for prediction in batch["predictions"]:
            print(f"  {prediction}")

        print("POST /v1/stream (chunked NDJSON ingestion session):")
        run_stream_session(gateway, rng)

        print("\nopen-loop overload (Poisson arrivals at ~2x capacity):")
        body = predict_body(rng.standard_normal((WINDOW_LENGTH, NUM_CHANNELS)))
        result = run_open_loop(
            gateway.url, "/v1/predict", lambda i: body,
            rate_rps=1500.0, duration_s=2.0, seed=SEED, burst_factor=1.5,
        )
        summary = result.summary()
        print(f"  offered {result.offered} requests, statuses {result.status_counts}")
        print(
            f"  shed rate {summary['shed_rate']:.1%}, transport errors "
            f"{result.errors}, p50 {summary['latency_p50_ms']:.1f} ms, "
            f"p99 {summary['latency_p99_ms']:.1f} ms"
        )

        print("\nscraped gateway metrics (/metrics):")
        with urllib.request.urlopen(
            gateway.obs_server.url + "/metrics", timeout=10
        ) as response:
            for line in response.read().decode().splitlines():
                if line.startswith("gateway_") and "_bucket" not in line:
                    print(f"  {line}")
    finally:
        gateway.stop()
        server.close()
    print("\ngateway drained and stopped.")


if __name__ == "__main__":
    main()
