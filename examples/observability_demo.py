"""Observability demo: live /metrics endpoint plus one cross-process trace.

This example shows the ``repro.obs`` subsystem end to end:

1. serve traffic against a compiled model with a live exposition endpoint
   (``ServerConfig(metrics_port=0)`` binds an ephemeral port);
2. scrape ``/metrics`` (Prometheus text, round-tripped through the strict
   parser) and ``/healthz`` with plain ``urllib`` — what a real Prometheus
   scraper or load balancer would do;
3. run a 2-worker data-parallel training step with tracing sampled at 1.0 —
   on POSIX the workers are forked processes that flush their registry
   deltas and span fragments back to the parent at the step boundary;
4. export the merged cross-process trace as Chrome trace-event JSON
   (load it in Perfetto / chrome://tracing: one lane per process).

Run with:  python examples/observability_demo.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro.datasets.loaders import Batch
from repro.models import BackboneConfig, SagaBackbone
from repro.models.composite import ClassificationModel
from repro.nn import SGD, CrossEntropyLoss, Flatten, Linear, Sequential
from repro.obs import configure_tracing, get_tracer, parse_prometheus_text
from repro.parallel import DataParallelEngine, fork_available
from repro.serving import InferenceServer, ServerConfig

SEED = 0
WINDOW_LENGTH = 32
NUM_CHANNELS = 6
NUM_CLASSES = 4


def build_served_model():
    rng = np.random.default_rng(SEED)
    backbone = SagaBackbone(
        BackboneConfig(
            input_channels=NUM_CHANNELS,
            window_length=WINDOW_LENGTH,
            hidden_dim=16,
            num_layers=1,
            num_heads=2,
            intermediate_dim=32,
        ),
        rng=rng,
    )
    model = ClassificationModel(backbone, NUM_CLASSES, rng=rng)
    model.eval()
    return model


def scrape(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read()


def serve_and_scrape() -> None:
    print("== 1. Serving with a live /metrics endpoint ==")
    config = ServerConfig(max_batch_size=16, num_workers=1, metrics_port=0)
    with InferenceServer(model=build_served_model(), config=config) as server:
        endpoint = server.obs_server.url
        print(f"endpoint: {endpoint}  (ephemeral port {server.obs_server.port})")

        rng = np.random.default_rng(1)
        predictions = server.predict_many(
            [rng.standard_normal((WINDOW_LENGTH, NUM_CHANNELS)) for _ in range(32)]
        )
        stats = server.stats()
        print(f"served {stats.requests} requests, "
              f"p50 latency {stats.latency_ms.get('p50', 0.0):.2f} ms")

        health = json.loads(scrape(f"{endpoint}/healthz"))
        print(f"/healthz: {health['status']} (checks: {health['checks']})")

        text = scrape(f"{endpoint}/metrics").decode("utf-8")
        parsed = parse_prometheus_text(text)
        print(f"/metrics: {len(parsed['samples'])} samples across "
              f"{len(parsed['types'])} families, all parse cleanly; e.g.")
        for name, labels, value in parsed["samples"][:4]:
            print(f"    {name}{labels or ''} = {value}")


def parallel_trace(output_dir: Path) -> None:
    print("\n== 2. One cross-process trace from a 2-worker parallel step ==")
    backend = "process" if fork_available() else "thread"
    print(f"backend: {backend}")
    configure_tracing(sample_rate=1.0)

    rng = np.random.default_rng(2)
    model = Sequential(Flatten(), Linear(WINDOW_LENGTH * NUM_CHANNELS, NUM_CLASSES, rng=rng))
    optimizer = SGD(model.parameters(), lr=0.05)
    loss_fn = CrossEntropyLoss()

    def step_fn(replica, batch, step_rng):
        return loss_fn(replica(batch.windows), batch.labels)

    batch = Batch(
        windows=rng.normal(size=(16, WINDOW_LENGTH, NUM_CHANNELS)),
        labels=rng.integers(0, NUM_CLASSES, size=16),
    )
    with DataParallelEngine(model, step_fn, num_workers=2, backend=backend) as engine:
        loss, _ = engine.accumulate(batch)
        optimizer.step()
        engine.broadcast()
    print(f"parallel step done, loss {loss:.4f}")

    tracer = get_tracer()
    (trace_id,) = tracer.trace_ids()
    spans = tracer.spans(trace_id)
    pids = sorted({span.pid for span in spans})
    print(f"trace {trace_id}: {len(spans)} spans across {len(pids)} processes {pids}")
    for span in spans:
        print(f"    pid {span.pid}  {span.name:<14} {span.duration_ms:8.3f} ms")

    path = tracer.export_chrome_trace(output_dir / "parallel_step_trace.json", trace_id=trace_id)
    print(f"Chrome trace written to {path} — open in Perfetto for per-process lanes")
    configure_tracing(sample_rate=0.0)
    tracer.clear()


def main() -> None:
    serve_and_scrape()
    with tempfile.TemporaryDirectory() as tmp:
        parallel_trace(Path(tmp))


if __name__ == "__main__":
    main()
