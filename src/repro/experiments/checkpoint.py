"""Grid-level checkpoint file: durable progress for interrupted runs.

The stage cache alone makes a rerun resume correctly; the checkpoint adds a
human- and CI-readable record of *grid* progress — how many specs finished,
whether the run completed or was interrupted, and when.  It is advisory
metadata: deleting it never loses work (the cache is the source of truth).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from .io_utils import atomic_write_bytes

STATUS_RUNNING = "running"
STATUS_INTERRUPTED = "interrupted"
STATUS_COMPLETE = "complete"


class GridCheckpoint:
    """Mirror of one grid run's progress, updated after every spec."""

    def __init__(self, path: Path, grid_id: str) -> None:
        self.path = Path(path)
        self.grid_id = grid_id
        self._lock = threading.Lock()
        self._state: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def begin(self, total_specs: int) -> None:
        previous = self.load()
        resumed = bool(previous) and previous.get("status") != STATUS_COMPLETE
        self._state = {
            "grid_id": self.grid_id,
            "status": STATUS_RUNNING,
            "total_specs": total_specs,
            "completed_specs": {},
            "resumed": resumed,
            "updated_unix": time.time(),
        }
        if resumed:
            self._state["completed_specs"] = dict(previous.get("completed_specs", {}))
        self._write()

    def mark_spec_done(self, spec_id: str, stage_names: List[str]) -> None:
        with self._lock:
            completed = self._state.setdefault("completed_specs", {})
            completed[spec_id] = stage_names
            self._write()

    def mark_interrupted(self) -> None:
        with self._lock:
            self._state["status"] = STATUS_INTERRUPTED
            self._write()

    def mark_complete(self) -> None:
        with self._lock:
            self._state["status"] = STATUS_COMPLETE
            self._write()

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, object]:
        """Read the checkpoint from disk ({} when absent or unreadable)."""
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}

    @property
    def status(self) -> Optional[str]:
        return self.load().get("status")

    def _write(self) -> None:
        self._state["updated_unix"] = time.time()
        body = json.dumps(self._state, sort_keys=True, indent=2).encode("utf-8")
        atomic_write_bytes(self.path, body)
