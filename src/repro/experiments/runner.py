"""Resumable, cache-aware execution of experiment grids.

The :class:`Runner` takes a list of :class:`~repro.experiments.spec.ExperimentSpec`
objects, expands each into its stage DAG and executes the stages with:

* **content-addressed caching** — every stage key is a hash of the spec
  payload, the stage coordinates and ``repro.__version__``
  (:mod:`repro.experiments.cache`), so a completed stage is never recomputed
  by any later run of any grid that contains it;
* **checkpoint / resume** — grid progress is mirrored into a checkpoint file
  after every spec; an interrupted run (``KeyboardInterrupt``, worker crash,
  SIGKILL) restarts by simply calling :meth:`Runner.run` again, and every
  stage that finished before the interruption is a cache hit;
* **parallel dispatch** — independent specs fan out across a thread pool
  (``dispatch="thread"``; numpy training steps release the GIL, and each
  spec's own training loops may additionally use the
  :class:`~repro.parallel.engine.DataParallelEngine` workers configured by
  its profile).  ``dispatch="serial"`` runs in-line and is the reference
  the parity tests compare against.

Numeric results are produced by delegating to the same
:class:`~repro.core.experiment.ExperimentRunner` recipe as the legacy
``run_rate_sweep`` path (one pre-train per spec, a deep copy fine-tuned per
labelling rate, identical RNG derivations), so grids run through the Runner
reproduce the legacy figures bit-for-bit.
"""

from __future__ import annotations

import copy
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._version import __version__ as code_version
from ..core.experiment import ExperimentRunner, build_method
from ..evaluation.results import ExperimentRecord, ResultTable
from ..exceptions import ConfigurationError
from ..logging_utils import get_logger
from ..obs.metrics import get_registry
from .cache import StageCache, stage_key
from .checkpoint import GridCheckpoint
from .spec import STAGE_EMIT, STAGE_EVALUATE, STAGE_PRETRAIN, ExperimentSpec, StageDef, grid_id

logger = get_logger(__name__)

DISPATCH_SERIAL = "serial"
DISPATCH_THREAD = "thread"
DISPATCHERS = (DISPATCH_SERIAL, DISPATCH_THREAD)

DEFAULT_CACHE_DIR = ".repro_cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

StageCallback = Callable[[StageDef], None]

_RECORD_FIELDS = (
    "method", "task", "dataset", "labelling_rate", "accuracy", "f1",
    "num_train_samples", "seed",
)


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` under the CWD."""
    import os

    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs of one :class:`Runner` instance."""

    cache_dir: Optional[Path] = None
    dispatch: str = DISPATCH_THREAD
    max_workers: int = 4
    checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.dispatch not in DISPATCHERS:
            raise ConfigurationError(
                f"unknown dispatch mode {self.dispatch!r}; choose from {DISPATCHERS}"
            )
        if self.max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {self.max_workers}")

    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir) if self.cache_dir is not None else default_cache_dir()


@dataclass
class StageResult:
    """Outcome of one stage execution (or cache hit)."""

    name: str
    kind: str
    cached: bool
    seconds: float
    payload: Dict[str, object]


@dataclass
class GridResult:
    """Everything a grid run produced, plus its cost accounting."""

    grid_id: str
    specs: List[ExperimentSpec]
    table: ResultTable
    stage_results: List[StageResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def executed_seconds(self) -> float:
        """Compute time spent on cache-missed stages (cache hits cost ~0)."""
        return sum(result.seconds for result in self.stage_results if not result.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.stage_results if result.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for result in self.stage_results if not result.cached)

    @property
    def fully_cached(self) -> bool:
        """True when the whole grid was a no-op (every stage cache-hit)."""
        return self.cache_misses == 0

    def throughput(self) -> Dict[str, Optional[float]]:
        """Canonical throughput numbers for the BENCH report.

        Both rates count only work that actually executed (cache-replayed
        records are excluded from the numerator just as replayed stages are
        excluded from the denominator), so the numbers measure the hardware
        regardless of how much of the grid other runs had pre-warmed.
        ``None`` when nothing executed — a replayed cache has no rate.
        """
        executed = self.executed_seconds
        if executed <= 0:
            return {"records_per_second": None, "stages_per_second": None}
        executed_records = sum(
            1
            for result in self.stage_results
            if result.kind == STAGE_EVALUATE and not result.cached
        )
        return {
            "records_per_second": executed_records / executed,
            "stages_per_second": self.cache_misses / executed,
        }

    def stage_seconds(self) -> Dict[str, float]:
        """Executed seconds per stage kind (pretrain / evaluate / emit)."""
        totals: Dict[str, float] = {}
        for result in self.stage_results:
            if not result.cached:
                totals[result.kind] = totals.get(result.kind, 0.0) + result.seconds
        return totals


def _record_from_payload(payload: Dict[str, object]) -> ExperimentRecord:
    row = dict(payload)
    extra = {k: v for k, v in row.items() if k not in _RECORD_FIELDS}
    return ExperimentRecord(
        method=str(row["method"]),
        task=str(row["task"]),
        dataset=str(row["dataset"]),
        labelling_rate=float(row["labelling_rate"]),
        accuracy=float(row["accuracy"]),
        f1=float(row["f1"]),
        num_train_samples=int(row["num_train_samples"]),
        seed=int(row["seed"]),
        extra={k: float(v) for k, v in extra.items() if isinstance(v, (int, float))},
    )


class Runner:
    """Execute experiment grids with caching, resume and parallel dispatch."""

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        stage_callback: Optional[StageCallback] = None,
    ) -> None:
        self.config = config if config is not None else RunnerConfig()
        self.cache = StageCache(self.config.resolved_cache_dir())
        self.stage_callback = stage_callback
        # ExperimentRunner instances are shared per (profile, seed) so dataset
        # contexts are prepared once per grid, exactly like the legacy path.
        self._experiment_runners: Dict[Tuple[object, int], ExperimentRunner] = {}
        self._context_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> GridResult:
        """Run (or resume) a grid and return its aggregated results.

        Stages that are already cached are skipped; everything else executes.
        Calling :meth:`run` again with the same specs is a no-op that replays
        results from the cache.
        """
        specs = list(specs)
        if not specs:
            raise ConfigurationError("cannot run an empty grid")
        gid = grid_id(specs)
        checkpoint = (
            GridCheckpoint(self.cache.root / f"grid-{gid}.checkpoint.json", gid)
            if self.config.checkpoint
            else None
        )
        if checkpoint is not None:
            checkpoint.begin(total_specs=len(specs))
        started = time.perf_counter()
        results_by_spec: Dict[str, List[StageResult]] = {}

        try:
            if self.config.dispatch == DISPATCH_SERIAL or len(specs) == 1:
                for spec in specs:
                    results_by_spec[spec.spec_id] = self._run_spec(spec, checkpoint)
            else:
                with ThreadPoolExecutor(
                    max_workers=min(self.config.max_workers, len(specs)),
                    thread_name_prefix="grid-worker",
                ) as pool:
                    futures = {
                        spec.spec_id: pool.submit(self._run_spec, spec, checkpoint)
                        for spec in specs
                    }
                    for spec_id, future in futures.items():
                        results_by_spec[spec_id] = future.result()
        except BaseException:
            # Leave a durable mark of where the grid stopped; every completed
            # stage is already in the cache, so a rerun resumes from here.
            if checkpoint is not None:
                checkpoint.mark_interrupted()
            raise

        table = ResultTable()
        stage_results: List[StageResult] = []
        for spec in specs:  # deterministic order regardless of dispatch
            spec_results = results_by_spec[spec.spec_id]
            stage_results.extend(spec_results)
            for result in spec_results:
                if result.kind == STAGE_EVALUATE:
                    table.add(_record_from_payload(result.payload["record"]))
        grid_result = GridResult(
            grid_id=gid,
            specs=specs,
            table=table,
            stage_results=stage_results,
            wall_seconds=time.perf_counter() - started,
        )
        if checkpoint is not None:
            checkpoint.mark_complete()
        logger.info(
            "grid %s: %d specs, %d stages (%d cached), %.2fs executed / %.2fs wall",
            gid, len(specs), len(stage_results), grid_result.cache_hits,
            grid_result.executed_seconds, grid_result.wall_seconds,
        )
        return grid_result

    # ------------------------------------------------------------------
    # Spec execution
    # ------------------------------------------------------------------
    def _runner_for(self, spec: ExperimentSpec) -> ExperimentRunner:
        key = (spec.profile, spec.seed)
        with self._context_lock:
            if key not in self._experiment_runners:
                self._experiment_runners[key] = ExperimentRunner(spec.profile, seed=spec.seed)
            return self._experiment_runners[key]

    def _context(self, spec: ExperimentSpec):
        runner = self._runner_for(spec)
        # ExperimentRunner caches contexts internally but is not thread-safe;
        # serialise context preparation (training itself runs unlocked).
        with self._context_lock:
            return runner.context(spec.task, spec.dataset)

    def _run_spec(
        self, spec: ExperimentSpec, checkpoint: Optional[GridCheckpoint]
    ) -> List[StageResult]:
        stages = spec.stages()
        by_kind: Dict[str, List[StageDef]] = {}
        for stage in stages:
            by_kind.setdefault(stage.kind, []).append(stage)
        pretrain_stage = by_kind[STAGE_PRETRAIN][0]
        evaluate_stages = by_kind.get(STAGE_EVALUATE, [])
        emit_stage = by_kind[STAGE_EMIT][0]

        results: List[StageResult] = []
        keys = {stage.name: stage_key(stage, code_version) for stage in stages}

        # The pre-trained method is only materialised when some evaluate
        # stage actually needs to run.
        evaluate_cached = {
            stage.name: self.cache.lookup(keys[stage.name]) for stage in evaluate_stages
        }
        needs_method = any(payload is None for payload in evaluate_cached.values())

        pretrained = None
        pretrain_payload = self.cache.lookup(keys[pretrain_stage.name])
        if pretrain_payload is not None and needs_method:
            try:
                pretrained = self.cache.load_artifact(keys[pretrain_stage.name])
            except (OSError, pickle.UnpicklingError) as exc:  # pragma: no cover - corrupt cache
                logger.warning("re-running pretrain for %s (%s)", spec.describe(), exc)
                pretrain_payload = None
        if pretrain_payload is None and not needs_method:
            # Every evaluation is already cached, so nothing will consume the
            # pre-trained method (e.g. its pickle artifact was pruned to save
            # disk): keep the grid rerun a no-op instead of recomputing the
            # most expensive stage for nothing.
            results.append(
                StageResult(
                    pretrain_stage.name, STAGE_PRETRAIN, True, 0.0,
                    {"seconds": 0.0, "skipped": "all evaluations cached"},
                )
            )
        elif pretrain_payload is None:
            self._notify(pretrain_stage)
            seconds, pretrained = self._execute_pretrain(spec)
            pretrain_payload = {"seconds": seconds, "spec": spec.describe()}
            self.cache.store(keys[pretrain_stage.name], pretrain_payload, artifact=pretrained)
            results.append(
                StageResult(pretrain_stage.name, STAGE_PRETRAIN, False, seconds, pretrain_payload)
            )
        else:
            results.append(
                StageResult(
                    pretrain_stage.name, STAGE_PRETRAIN, True,
                    float(pretrain_payload.get("seconds", 0.0)), pretrain_payload,
                )
            )

        for stage in evaluate_stages:
            payload = evaluate_cached[stage.name]
            if payload is None:
                self._notify(stage)
                seconds, record = self._execute_evaluate(spec, stage.rate, pretrained)
                payload = {"seconds": seconds, "record": record}
                self.cache.store(keys[stage.name], payload)
                results.append(StageResult(stage.name, STAGE_EVALUATE, False, seconds, payload))
            else:
                results.append(
                    StageResult(
                        stage.name, STAGE_EVALUATE, True,
                        float(payload.get("seconds", 0.0)), payload,
                    )
                )

        emit_payload = self.cache.lookup(keys[emit_stage.name])
        if emit_payload is None:
            self._notify(emit_stage)
            started = time.perf_counter()
            records = [
                result.payload["record"] for result in results if result.kind == STAGE_EVALUATE
            ]
            emit_payload = {
                "seconds": time.perf_counter() - started,
                "records": records,
                "spec": spec.describe(),
            }
            self.cache.store(keys[emit_stage.name], emit_payload)
            results.append(
                StageResult(
                    emit_stage.name, STAGE_EMIT, False,
                    float(emit_payload["seconds"]), emit_payload,
                )
            )
        else:
            results.append(
                StageResult(
                    emit_stage.name, STAGE_EMIT, True,
                    float(emit_payload.get("seconds", 0.0)), emit_payload,
                )
            )

        self._record_stage_metrics(results)
        if checkpoint is not None:
            checkpoint.mark_spec_done(spec.spec_id, [r.name for r in results])
        return results

    @staticmethod
    def _record_stage_metrics(results: List[StageResult]) -> None:
        """Mirror one spec's stage outcomes into the metrics registry.

        ``experiments_stages_total{kind,cached}`` counts hits versus misses
        per stage kind; ``experiments_stage_seconds{kind}`` observes only
        *executed* durations (a cache hit's recorded seconds describe some
        earlier run's hardware, not this one).
        """
        registry = get_registry()
        totals = registry.counter(
            "experiments_stages_total",
            "Experiment stages processed, by kind and cache outcome",
            labels=("kind", "cached"),
        )
        seconds = registry.histogram(
            "experiments_stage_seconds",
            "Executed (cache-missed) stage durations, by kind",
            labels=("kind",),
            buckets=(
                0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                30.0, 60.0, 300.0, 1800.0, float("inf"),
            ),
        )
        for result in results:
            totals.labels(kind=result.kind, cached=str(result.cached).lower()).inc()
            if not result.cached:
                seconds.labels(kind=result.kind).observe(result.seconds)

    def _notify(self, stage: StageDef) -> None:
        if self.stage_callback is not None:
            self.stage_callback(stage)

    # ------------------------------------------------------------------
    # Stage bodies (the legacy ExperimentRunner recipe, stage by stage)
    # ------------------------------------------------------------------
    def _execute_pretrain(self, spec: ExperimentSpec):
        context = self._context(spec)
        started = time.perf_counter()
        rng = np.random.default_rng(spec.seed)
        method = build_method(spec.method, spec.profile, context.splits.train.num_channels)
        method.pretrain(context.splits.train, rng)
        return time.perf_counter() - started, method

    def _execute_evaluate(self, spec: ExperimentSpec, rate: float, pretrained):
        context = self._context(spec)
        runner = self._runner_for(spec)
        started = time.perf_counter()
        trial = copy.deepcopy(pretrained)
        trial_rng = np.random.default_rng(spec.seed + int(round(rate * 1000)))
        record = runner._fit_and_evaluate(trial, context, spec.task, rate, spec.seed, trial_rng)
        seconds = time.perf_counter() - started
        row = {name: getattr(record, name) for name in _RECORD_FIELDS}
        row.update(record.extra)
        return seconds, row
