"""``python -m repro.experiments`` — see :mod:`repro.experiments.cli`."""

import sys

from .cli import main

sys.exit(main())
