"""Resumable experiment orchestration over the evaluation grid.

The subsystem turns the paper's figure/table grid into declarative,
cache-addressable work (see ``DESIGN.md`` for the architecture):

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec` (one grid cell)
  and its stage DAG (pretrain → evaluate@rate… → emit);
* :mod:`repro.experiments.cache` — content-addressed stage cache keyed on
  spec payload + stage + code version;
* :mod:`repro.experiments.checkpoint` — durable grid progress for resume;
* :mod:`repro.experiments.runner` — the :class:`Runner`: cached, resumable,
  serial or thread-fan-out execution of whole grids;
* :mod:`repro.experiments.grids` — named grids (``fig6`` … ``fig12``);
* :mod:`repro.experiments.bench` — the canonical ``BENCH_<name>.json``
  schema and the CI regression comparator;
* :mod:`repro.experiments.cli` — ``python -m repro.experiments``.
"""

from .bench import (
    BENCH_PROFILES,
    BENCH_SCHEMA_VERSION,
    BenchReport,
    Comparison,
    compare_reports,
    format_comparisons,
    iter_reports,
    load_report,
    regressions,
    resolve_bench_profile,
    write_report,
)
from .cache import CacheStats, StageCache, stage_key
from .checkpoint import GridCheckpoint
from .cli import report_from_grid
from .grids import available_grids, named_grid
from .runner import (
    DISPATCH_SERIAL,
    DISPATCH_THREAD,
    DISPATCHERS,
    GridResult,
    Runner,
    RunnerConfig,
    StageResult,
)
from .spec import ExperimentSpec, StageDef, expand_grid, grid_id

__all__ = [
    "ExperimentSpec",
    "StageDef",
    "expand_grid",
    "grid_id",
    "named_grid",
    "available_grids",
    "StageCache",
    "CacheStats",
    "stage_key",
    "GridCheckpoint",
    "Runner",
    "RunnerConfig",
    "GridResult",
    "StageResult",
    "DISPATCHERS",
    "DISPATCH_SERIAL",
    "DISPATCH_THREAD",
    "BenchReport",
    "BENCH_SCHEMA_VERSION",
    "BENCH_PROFILES",
    "resolve_bench_profile",
    "write_report",
    "load_report",
    "iter_reports",
    "compare_reports",
    "regressions",
    "format_comparisons",
    "report_from_grid",
    "Comparison",
]
