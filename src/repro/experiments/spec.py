"""Declarative experiment specifications and their stage DAGs.

An :class:`ExperimentSpec` names one cell of the paper's evaluation grid —
(method, task, dataset, labelling rates, seed) at a given
:class:`~repro.core.experiment.ExperimentProfile` — without running anything.
Each spec expands into a small DAG of :class:`StageDef` nodes::

    pretrain ──▶ evaluate@rate₁ ──┐
             ──▶ evaluate@rate₂ ──┤──▶ emit
             ──▶ ...              ┘

* ``pretrain`` runs the method's unsupervised stage once (it does not depend
  on the labelling rate);
* ``evaluate@rate`` fine-tunes a fresh copy of the pre-trained method on the
  labelled fraction and measures test metrics — one node per rate;
* ``emit`` aggregates the per-rate records into the spec's figure/table rows.

Specs are pure data: they hash stably (:attr:`ExperimentSpec.spec_id`), so
stage outputs can be cached content-addressed and a grid can be re-expanded
identically across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentProfile, get_profile
from ..evaluation.protocol import task_dataset_pairs, validate_pair
from ..exceptions import ConfigurationError

STAGE_PRETRAIN = "pretrain"
STAGE_EVALUATE = "evaluate"
STAGE_EMIT = "emit"
STAGE_KINDS = (STAGE_PRETRAIN, STAGE_EVALUATE, STAGE_EMIT)


def _canonical(payload: Dict[str, object]) -> str:
    """Deterministic JSON rendering used for hashing spec/stage identities."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _short_hash(payload: Dict[str, object], length: int = 16) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of a grid: method × task × dataset × rates × seed × profile."""

    method: str
    task: str
    dataset: str
    labelling_rates: Tuple[float, ...]
    seed: int
    profile: ExperimentProfile

    def __post_init__(self) -> None:
        if not self.labelling_rates:
            raise ConfigurationError("an ExperimentSpec needs at least one labelling rate")
        for rate in self.labelling_rates:
            if not 0.0 < rate <= 1.0:
                raise ConfigurationError(f"labelling rate must be in (0, 1], got {rate!r}")
        validate_pair(self.task, self.dataset)
        # Normalise the identity fields so equal grids hash equally.  Rates
        # dedupe order-preservingly: a duplicated rate would mint two evaluate
        # stages with the same name (and run the same evaluation twice).
        object.__setattr__(self, "method", self.method.lower())
        object.__setattr__(self, "task", self.task.upper())
        object.__setattr__(self, "dataset", self.dataset.lower())
        object.__setattr__(
            self, "labelling_rates", tuple(dict.fromkeys(float(r) for r in self.labelling_rates))
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        """Canonical JSON-serialisable identity of this spec (cache-key input)."""
        return {
            "method": self.method,
            "task": self.task,
            "dataset": self.dataset,
            "labelling_rates": list(self.labelling_rates),
            "seed": self.seed,
            "profile": asdict(self.profile),
        }

    @property
    def spec_id(self) -> str:
        """Short stable hash identifying this spec."""
        return _short_hash(self.payload())

    def describe(self) -> str:
        rates = "/".join(f"{rate:.0%}" for rate in self.labelling_rates)
        return f"{self.method} {self.task}/{self.dataset} rates={rates} seed={self.seed}"

    # ------------------------------------------------------------------
    # DAG expansion
    # ------------------------------------------------------------------
    def stages(self) -> List["StageDef"]:
        """Expand this spec into its stage DAG in topological order."""
        pretrain = StageDef(spec=self, kind=STAGE_PRETRAIN)
        evaluates = tuple(
            StageDef(spec=self, kind=STAGE_EVALUATE, rate=rate, depends=(pretrain.name,))
            for rate in self.labelling_rates
        )
        emit = StageDef(
            spec=self, kind=STAGE_EMIT, depends=tuple(stage.name for stage in evaluates)
        )
        return [pretrain, *evaluates, emit]


@dataclass(frozen=True)
class StageDef:
    """One node of a spec's DAG: a unit of cacheable, resumable work."""

    spec: ExperimentSpec
    kind: str
    rate: Optional[float] = None
    depends: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in STAGE_KINDS:
            raise ConfigurationError(f"unknown stage kind {self.kind!r}; choose from {STAGE_KINDS}")
        if (self.kind == STAGE_EVALUATE) != (self.rate is not None):
            raise ConfigurationError("exactly the evaluate stages carry a labelling rate")

    @property
    def name(self) -> str:
        """Stable human-readable stage name, unique within a grid."""
        suffix = self.kind if self.rate is None else f"{self.kind}@{self.rate:g}"
        return f"{self.spec.spec_id}/{suffix}"

    def identity(self) -> Dict[str, object]:
        """Cache-key input: the spec identity plus the stage coordinates.

        Pre-training does not depend on the labelling rates at all, and one
        evaluation depends only on its *own* rate, so both identities drop
        the spec's rate list — specs that differ only in how rates are
        grouped share those stages.  Only the ``emit`` stage (the aggregate
        over the whole rate list) keeps it.
        """
        payload = self.spec.payload()
        if self.kind in (STAGE_PRETRAIN, STAGE_EVALUATE):
            payload.pop("labelling_rates")
        return {"spec": payload, "stage": self.kind, "rate": self.rate}


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def expand_grid(
    methods: Sequence[str],
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    labelling_rates: Optional[Sequence[float]] = None,
    seeds: Sequence[int] = (0,),
    profile: Optional[ExperimentProfile] = None,
) -> List[ExperimentSpec]:
    """Expand a cartesian grid into one :class:`ExperimentSpec` per cell.

    ``pairs`` defaults to the paper's five (task, dataset) pairs and
    ``labelling_rates`` to the profile's rates.  Labelling rates stay grouped
    inside one spec (they share the pre-training stage), so the grid size is
    ``len(methods) × len(pairs) × len(seeds)``.
    """
    resolved = profile if profile is not None else get_profile()
    resolved_pairs = tuple(pairs) if pairs is not None else task_dataset_pairs()
    rates = tuple(labelling_rates) if labelling_rates is not None else resolved.labelling_rates
    if not methods:
        raise ConfigurationError("expand_grid needs at least one method")
    if not resolved_pairs:
        raise ConfigurationError("expand_grid needs at least one (task, dataset) pair")
    if not seeds:
        raise ConfigurationError("expand_grid needs at least one seed")
    specs = []
    for seed in seeds:
        for task, dataset in resolved_pairs:
            for method in methods:
                specs.append(
                    ExperimentSpec(
                        method=method,
                        task=task,
                        dataset=dataset,
                        labelling_rates=rates,
                        seed=int(seed),
                        profile=resolved,
                    )
                )
    return specs


def grid_id(specs: Iterable[ExperimentSpec]) -> str:
    """Stable identity of a whole grid (order-insensitive)."""
    return _short_hash({"grid": sorted(spec.spec_id for spec in specs)})
