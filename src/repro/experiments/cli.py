"""Command-line entry point: ``python -m repro.experiments``.

Three subcommands:

``run``
    Expand a named grid (``fig6`` … ``fig12``, ``full``), execute it through
    the resumable :class:`~repro.experiments.runner.Runner` and publish a
    ``BENCH_<grid>.json`` report.  Rerunning after an interruption resumes
    from the stage cache; rerunning a completed grid is a no-op.
``check``
    The CI benchmark-regression gate: compare the ``BENCH_*.json`` files of a
    run against the committed baselines and exit non-zero on any throughput
    regression beyond the threshold.
``update-baseline``
    Copy a run's ``BENCH_*.json`` files over the committed baselines.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..exceptions import ConfigurationError, ReproError
from ..logging_utils import configure_logging, get_logger
from .bench import (
    BENCH_PREFIX,
    DEFAULT_MIN_EXECUTED_SECONDS,
    DEFAULT_REGRESSION_THRESHOLD,
    BenchReport,
    compare_reports,
    format_comparisons,
    regressions,
    resolve_bench_profile,
    write_report,
)
from .grids import GRID_BENCH_NAMES, available_grids, named_grid
from .runner import DISPATCHERS, GridResult, Runner, RunnerConfig

logger = get_logger(__name__)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Resumable experiment orchestration and benchmark regression checks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a named experiment grid and publish BENCH json")
    run.add_argument("grid", choices=available_grids(), help="named grid to run")
    run.add_argument("--profile", default=None,
                     help="experiment profile (default: $REPRO_PROFILE or bench)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="stage cache root (default: $REPRO_CACHE_DIR or .repro_cache)")
    run.add_argument("--bench-dir", type=Path, default=None,
                     help="directory receiving BENCH_<name>.json "
                          "(default: $REPRO_BENCH_DIR or bench_out, like the pytest harness)")
    run.add_argument("--dispatch", choices=DISPATCHERS, default="thread")
    run.add_argument("--max-workers", type=int, default=4)

    check = sub.add_parser("check", help="compare BENCH json files against committed baselines")
    check.add_argument("--baseline", type=Path, required=True,
                       help="directory of committed BENCH baselines")
    check.add_argument("--current", type=Path, required=True,
                       help="directory of freshly produced BENCH files")
    check.add_argument("--threshold", type=float, default=DEFAULT_REGRESSION_THRESHOLD,
                       help="relative throughput drop that fails the gate (default 0.10)")
    check.add_argument("--min-executed", type=float, default=DEFAULT_MIN_EXECUTED_SECONDS,
                       help="skip benches with less executed compute than this many seconds")

    update = sub.add_parser("update-baseline", help="copy current BENCH json files over the baselines")
    update.add_argument("--current", type=Path, required=True)
    update.add_argument("--baseline", type=Path, required=True)
    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    profile = resolve_bench_profile(args.profile)
    specs = named_grid(args.grid, profile, seed=args.seed)
    runner = Runner(
        RunnerConfig(
            cache_dir=args.cache_dir,
            dispatch=args.dispatch,
            max_workers=args.max_workers,
        ),
        stage_callback=lambda stage: logger.info("stage %s", stage.name),
    )
    logger.info("grid %s: %d specs at profile %s", args.grid, len(specs), profile.name)
    result = runner.run(specs)
    bench_name = GRID_BENCH_NAMES.get(args.grid, args.grid)
    report = report_from_grid(bench_name, profile.name, result)
    bench_dir = args.bench_dir
    if bench_dir is None:
        bench_dir = Path(os.environ.get("REPRO_BENCH_DIR", "bench_out"))
    path = write_report(report, bench_dir)
    print(f"grid {args.grid}: {len(result.table)} records, "
          f"{result.cache_misses} stages executed ({result.cache_hits} cached), "
          f"{result.executed_seconds:.1f}s compute -> {path}")
    return 0


def report_from_grid(
    name: str,
    profile_name: str,
    result: GridResult,
    extra_metrics: Optional[Dict[str, float]] = None,
) -> BenchReport:
    """Build the canonical BENCH report for one grid run."""
    metrics = {
        f"mean_accuracy_{method}": value
        for method, value in result.table.mean_by_method("accuracy").items()
    }
    metrics.update(
        {f"mean_f1_{method}": value for method, value in result.table.mean_by_method("f1").items()}
    )
    if extra_metrics:
        metrics.update(extra_metrics)
    return BenchReport(
        name=name,
        profile=profile_name,
        duration_seconds=result.wall_seconds,
        executed_seconds=result.executed_seconds,
        throughput=result.throughput(),
        metrics=metrics,
        records=result.table.to_rows(),
        cache={"hits": result.cache_hits, "misses": result.cache_misses},
    )


def _cmd_check(args: argparse.Namespace) -> int:
    comparisons = compare_reports(
        args.baseline, args.current,
        threshold=args.threshold, min_executed_seconds=args.min_executed,
    )
    if not comparisons:
        print(f"no BENCH reports found under {args.current} / {args.baseline}")
        return 1
    print(format_comparisons(comparisons))
    failed = regressions(comparisons)
    if not failed and all(c.status == "skipped" for c in comparisons):
        print(
            "\nWARNING: every comparison was skipped — the regression gate is "
            "NOT armed on this hardware. Refresh the baselines from this "
            "machine's run (python -m repro.experiments update-baseline) to arm it."
        )
    if failed:
        print(f"\nFAIL: {len(failed)} throughput regression(s) beyond "
              f"{args.threshold:.0%} of baseline")
        return 1
    print(f"\nOK: no throughput regression beyond {args.threshold:.0%} "
          f"({len(comparisons)} comparisons)")
    return 0


def _cmd_update_baseline(args: argparse.Namespace) -> int:
    current, baseline = Path(args.current), Path(args.baseline)
    paths = sorted(current.glob(f"{BENCH_PREFIX}*.json"))
    if not paths:
        print(f"no {BENCH_PREFIX}*.json files under {current}")
        return 1
    baseline.mkdir(parents=True, exist_ok=True)
    for path in paths:
        shutil.copy2(path, baseline / path.name)
        print(f"updated {baseline / path.name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    configure_logging()
    args = _build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "check": _cmd_check, "update-baseline": _cmd_update_baseline}
    try:
        return handlers[args.command](args)
    except (ConfigurationError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
