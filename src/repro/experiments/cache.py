"""Content-addressed stage cache.

Every stage output is stored under a key derived from the *content* of the
work — the canonical spec payload, the stage coordinates, the library version
and the cache format version — never from wall-clock time or run order.  Two
consequences:

* re-running a completed grid touches only the cache (a no-op);
* an interrupted grid resumes exactly where it stopped, because each finished
  stage is durable the moment it completes.

Payloads are JSON files (``<key>.json``).  Stages whose output is a Python
object that JSON cannot carry (the pre-trained method of the ``pretrain``
stage) attach a pickle *artifact* (``<key>.pkl``) referenced from the
payload.  Writes are atomic (temp file + ``os.replace``), so a crash can
leave at most an orphaned temp file, never a truncated entry.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..logging_utils import get_logger
from .io_utils import atomic_write_bytes
from .spec import StageDef, _canonical

logger = get_logger(__name__)

CACHE_FORMAT_VERSION = 1
"""Bumped when the on-disk layout or payload schema changes (invalidates all)."""

ARTIFACT_KEY = "__artifact__"
"""Payload key under which the pickle artifact's file name is recorded."""


def stage_key(stage: StageDef, code_version: str) -> str:
    """Content hash of one stage: spec identity + stage coords + code version."""
    material = {
        "identity": stage.identity(),
        "code_version": code_version,
        "cache_format": CACHE_FORMAT_VERSION,
    }
    return hashlib.sha256(_canonical(material).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class StageCache:
    """Directory-backed content-addressed store for stage outputs."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def payload_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def artifact_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``key`` or ``None`` on a miss.

        A corrupted entry (unreadable JSON, or a payload referencing a missing
        artifact) counts as a miss: the stage simply recomputes and the entry
        is overwritten.
        """
        path = self.payload_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("discarding corrupted cache entry %s (%s)", path.name, exc)
            self.stats.misses += 1
            return None
        if payload.get(ARTIFACT_KEY) and not self.artifact_path(key).exists():
            logger.warning("cache entry %s lost its artifact; recomputing", path.name)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def load_artifact(self, key: str) -> Any:
        """Unpickle the artifact attached to a cached payload."""
        with self.artifact_path(key).open("rb") as handle:
            return pickle.load(handle)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def store(self, key: str, payload: Dict[str, Any], artifact: Any = None) -> None:
        """Persist a stage output (payload JSON plus optional pickle artifact)."""
        record = dict(payload)
        if artifact is not None:
            atomic_write_bytes(self.artifact_path(key), pickle.dumps(artifact))
            record[ARTIFACT_KEY] = self.artifact_path(key).name
        body = json.dumps(record, sort_keys=True, indent=2).encode("utf-8")
        atomic_write_bytes(self.payload_path(key), body)
        self.stats.stores += 1
