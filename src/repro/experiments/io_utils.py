"""Small shared I/O helpers for the orchestration subsystem."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write can leave at most an orphaned ``*.tmp`` file in the
    same directory, never a truncated target.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
