"""Named experiment grids: the paper's figures as declarative specs.

One place maps figure names to their grids so the benchmark harness, the
``python -m repro.experiments`` CLI and :mod:`repro.evaluation.figures` all
expand exactly the same specs (and therefore share the same cached stages).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.experiment import TOP3_METHOD_NAMES, ExperimentProfile, get_profile
from ..evaluation.protocol import experiment_grid
from ..exceptions import ConfigurationError
from .spec import ExperimentSpec, expand_grid

DETAIL_FIGURE_PAIRS: Dict[str, Tuple[str, str]] = {
    "fig7": ("AR", "hhar"),
    "fig8": ("AR", "motion"),
    "fig9": ("UA", "hhar"),
    "fig10": ("UA", "shoaib"),
    "fig11": ("DP", "shoaib"),
}
"""The (task, dataset) pair behind each per-task detail figure (Figs. 7–11)."""

ABLATION_GRID_METHODS: Tuple[str, ...] = (
    "saga_sensor", "saga_point", "saga_subperiod", "saga_period", "saga_random", "saga_search",
)
"""Fig. 12 variants (``saga_search`` makes the LWS column explicit)."""


def named_grid(
    name: str, profile: Optional[ExperimentProfile] = None, seed: int = 0
) -> List[ExperimentSpec]:
    """Expand one named grid (``fig6`` … ``fig12`` or ``full``) into specs."""
    resolved = profile if profile is not None else get_profile()
    key = name.lower()
    if key == "fig6":
        return experiment_grid(resolved, seeds=(seed,))
    if key in DETAIL_FIGURE_PAIRS:
        return expand_grid(
            TOP3_METHOD_NAMES, pairs=(DETAIL_FIGURE_PAIRS[key],), profile=resolved, seeds=(seed,)
        )
    if key == "fig12":
        rates = (resolved.labelling_rates[0], resolved.labelling_rates[-1])
        return expand_grid(
            ABLATION_GRID_METHODS,
            pairs=(("AR", "hhar"),),
            labelling_rates=rates,
            profile=resolved,
            seeds=(seed,),
        )
    if key == "full":
        specs = named_grid("fig6", resolved, seed)
        specs.extend(named_grid("fig12", resolved, seed))
        return specs
    raise ConfigurationError(
        f"unknown grid {name!r}; available: {sorted(available_grids())}"
    )


def available_grids() -> Tuple[str, ...]:
    return ("fig6", *DETAIL_FIGURE_PAIRS, "fig12", "full")


GRID_BENCH_NAMES: Dict[str, str] = {
    "fig6": "fig6_overall",
    "fig7": "fig7_ar_hhar",
    "fig8": "fig8_ar_motion",
    "fig9": "fig9_ua_hhar",
    "fig10": "fig10_ua_shoaib",
    "fig11": "fig11_dp_shoaib",
    "fig12": "fig12_ablation",
    "full": "full_grid",
}
"""BENCH report name per named grid.

The CLI ``run`` subcommand and the benchmark harness must publish the *same*
``BENCH_<name>.json`` file names, or CLI-produced reports would never match a
committed baseline.
"""
