"""Canonical ``BENCH_<name>.json`` schema and the regression comparator.

Every benchmark run publishes one machine-readable report per bench so CI
can keep the whole perf trajectory instead of throwing the numbers away:

.. code-block:: json

    {
      "schema_version": 1,
      "name": "fig6_overall",
      "profile": "bench",
      "code_version": "1.3.0",
      "created_unix": 1753776000.0,
      "duration_seconds": 312.4,
      "executed_seconds": 310.9,
      "cache": {"hits": 5, "misses": 120, "stores": 120},
      "throughput": {"records_per_second": 0.32},
      "metrics": {"mean_accuracy_saga": 0.61},
      "records": [{"method": "saga", "task": "AR", "...": "..."}],
      "environment": {"python": "3.11.8", "platform": "linux", "cpus": 8}
    }

* ``metrics`` carries scalar quality numbers (accuracy, latency, speedups);
* ``throughput`` carries the rate numbers the CI regression job compares —
  a ``null`` value marks a cache-dominated run whose rate is meaningless;
* ``records`` carries the raw per-run rows (the figure/table data).

:func:`compare_reports` implements the CI policy: any throughput key present
in both baseline and current whose current value drops more than
``threshold`` (default 10%) below the baseline is a regression.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from .._version import __version__ as code_version
from ..exceptions import ConfigurationError
from ..logging_utils import get_logger
from .io_utils import atomic_write_bytes

logger = get_logger(__name__)

BENCH_SCHEMA_VERSION = 1
BENCH_PREFIX = "BENCH_"
BENCH_PROFILES = ("ci", "bench")
"""Profiles the benchmark harness may run under.

``quick`` and ``paper`` are interactive profiles: their numbers are not
comparable to the committed baselines, so the harness refuses them instead of
silently publishing misleading reports.
"""

DEFAULT_REGRESSION_THRESHOLD = 0.10
DEFAULT_MIN_EXECUTED_SECONDS = 1.0

_REQUIRED_KEYS = (
    "schema_version", "name", "profile", "code_version", "created_unix",
    "duration_seconds", "throughput", "metrics",
)


def resolve_bench_profile(name: Optional[str] = None):
    """Resolve the benchmark-harness profile, accepting only ``ci``/``bench``.

    Honour ``REPRO_PROFILE`` like :func:`repro.core.experiment.get_profile`,
    but raise a :class:`~repro.exceptions.ConfigurationError` for any other
    profile (including the valid interactive ones) so a stray environment
    variable cannot silently produce baseline-incomparable numbers.
    """
    from ..core.experiment import get_profile

    if name is None:
        name = os.environ.get("REPRO_PROFILE", "bench")
    key = str(name).lower()
    if key not in BENCH_PROFILES:
        raise ConfigurationError(
            f"REPRO_PROFILE={name!r} is not a benchmark-harness profile; the "
            f"benchmark suite accepts only {BENCH_PROFILES} (its BENCH_*.json "
            "reports must stay comparable to the committed baselines). Use "
            "repro.core.experiment.get_profile for interactive quick/paper runs."
        )
    return get_profile(key)


def environment_info() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count() or 1,
    }


@dataclass
class BenchReport:
    """One bench run, ready to serialise as ``BENCH_<name>.json``."""

    name: str
    profile: str
    duration_seconds: float
    executed_seconds: Optional[float] = None
    throughput: Dict[str, Optional[float]] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    records: List[Dict[str, object]] = field(default_factory=list)
    cache: Dict[str, int] = field(default_factory=dict)
    environment: Dict[str, object] = field(default_factory=environment_info)
    deterministic: bool = False
    """True when the throughput numbers come from an analytic model (not a
    wall-clock measurement) and therefore compare across any hardware."""
    schema_version: int = BENCH_SCHEMA_VERSION
    code_version: str = code_version
    created_unix: float = field(default_factory=time.time)

    def file_name(self) -> str:
        return f"{BENCH_PREFIX}{self.name}.json"

    def cache_dominated(self, min_executed_seconds: float = DEFAULT_MIN_EXECUTED_SECONDS) -> bool:
        """True when the run mostly replayed cached stages instead of computing.

        Only cache-backed (grid) reports can be cache-dominated; a measurement
        bench's duration is real compute however small, so its rates stay
        comparable.
        """
        if not self.cache:
            return False
        executed = self.duration_seconds if self.executed_seconds is None else self.executed_seconds
        return executed < min_executed_seconds


def write_report(report: BenchReport, directory: Path) -> Path:
    """Atomically write ``BENCH_<name>.json`` into ``directory``."""
    directory = Path(directory)
    path = directory / report.file_name()
    body = json.dumps(asdict(report), sort_keys=True, indent=2).encode("utf-8")
    atomic_write_bytes(path, body)
    logger.info("wrote %s (%d records)", path, len(report.records))
    return path


def load_report(path: Path) -> BenchReport:
    """Load and validate one ``BENCH_*.json`` file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise ConfigurationError(f"{path.name} is not a valid BENCH report; missing {missing}")
    if int(payload["schema_version"]) > BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path.name} has schema_version {payload['schema_version']}, newer than "
            f"this library's {BENCH_SCHEMA_VERSION}; upgrade repro to compare it"
        )
    known = {f.name for f in BenchReport.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    return BenchReport(**{key: value for key, value in payload.items() if key in known})


def iter_reports(directory: Path) -> Iterator[BenchReport]:
    """Yield every valid BENCH report in ``directory`` (sorted by name)."""
    directory = Path(directory)
    for path in sorted(directory.glob(f"{BENCH_PREFIX}*.json")):
        yield load_report(path)


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one throughput metric against the baseline."""

    bench: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    status: str  # "ok" | "regression" | "skipped"
    reason: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline and self.current and self.baseline > 0:
            return self.current / self.baseline
        return None

    def describe(self) -> str:
        if self.ratio is not None:
            return (
                f"{self.bench}.{self.metric}: {self.current:.3f} vs baseline "
                f"{self.baseline:.3f} ({self.ratio:.2f}x) [{self.status}]"
            )
        return f"{self.bench}.{self.metric}: [{self.status}] {self.reason}"


def compare_reports(
    baseline_dir: Path,
    current_dir: Path,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_executed_seconds: float = DEFAULT_MIN_EXECUTED_SECONDS,
) -> List[Comparison]:
    """Compare every current BENCH report against its committed baseline.

    Policy (the CI benchmark-regression job):

    * benches present only on one side are skipped (new benches need a new
      baseline, retired benches need the baseline removed);
    * profiles must match — comparing a ``ci`` run against a ``bench``
      baseline would be apples to oranges, so it is skipped loudly;
    * host-dependent rates only compare between like machines: when the
      recorded ``environment.cpus`` differ, the bench is skipped with a
      pointer to refresh the baseline on the current hardware;
    * cache-dominated runs (executed compute below ``min_executed_seconds``)
      and ``null`` throughput values are skipped — a replayed cache says
      nothing about the hardware;
    * every remaining throughput key regresses when
      ``current < (1 - threshold) * baseline``.
    """
    baselines = {report.name: report for report in iter_reports(baseline_dir)}
    currents = {report.name: report for report in iter_reports(current_dir)}
    comparisons: List[Comparison] = []

    for name in sorted(set(baselines) | set(currents)):
        if name not in baselines:
            comparisons.append(
                Comparison(name, "*", None, None, "skipped", "no committed baseline")
            )
            continue
        if name not in currents:
            comparisons.append(
                Comparison(name, "*", None, None, "skipped", "bench did not run")
            )
            continue
        base, cur = baselines[name], currents[name]
        if base.profile != cur.profile:
            comparisons.append(
                Comparison(
                    name, "*", None, None, "skipped",
                    f"profile mismatch (baseline {base.profile!r} vs current {cur.profile!r})",
                )
            )
            continue
        base_cpus = base.environment.get("cpus")
        cur_cpus = cur.environment.get("cpus")
        hardware_bound = not (base.deterministic and cur.deterministic)
        if hardware_bound and base_cpus is not None and cur_cpus is not None and base_cpus != cur_cpus:
            comparisons.append(
                Comparison(
                    name, "*", None, None, "skipped",
                    f"environment mismatch (baseline {base_cpus} cpus vs current "
                    f"{cur_cpus}); refresh the baseline on this hardware "
                    "(python -m repro.experiments update-baseline)",
                )
            )
            continue
        if cur.cache_dominated(min_executed_seconds) or base.cache_dominated(min_executed_seconds):
            comparisons.append(
                Comparison(name, "*", None, None, "skipped", "cache-dominated run")
            )
            continue
        shared = sorted(set(base.throughput) & set(cur.throughput))
        if not shared:
            comparisons.append(
                Comparison(name, "*", None, None, "skipped", "no shared throughput metrics")
            )
            continue
        for metric in shared:
            base_value, cur_value = base.throughput[metric], cur.throughput[metric]
            if not _comparable(base_value) or not _comparable(cur_value):
                comparisons.append(
                    Comparison(name, metric, base_value, cur_value, "skipped", "null metric")
                )
                continue
            status = "regression" if cur_value < (1.0 - threshold) * base_value else "ok"
            comparisons.append(Comparison(name, metric, base_value, cur_value, status))
    return comparisons


def _comparable(value: Optional[float]) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def regressions(comparisons: Sequence[Comparison]) -> List[Comparison]:
    return [comparison for comparison in comparisons if comparison.status == "regression"]


def format_comparisons(comparisons: Sequence[Comparison]) -> str:
    return "\n".join(comparison.describe() for comparison in comparisons)
