"""Data-parallel gradient engine: worker pool + all-reduce + broadcast.

:class:`DataParallelEngine` owns ``num_workers`` replicas of a master
:class:`~repro.nn.Module` and turns one *global* batch into one aggregated
gradient on the master model:

1. the global batch is scattered into ``num_workers`` near-equal chunks
   (``np.array_split``), so the union of all chunks is exactly the global
   batch;
2. each worker runs ``step_fn(replica, chunk, rng)`` — a forward returning a
   mean-reduced loss tensor — and backpropagates on its private replica;
3. the flat local gradients are combined by a synchronous weighted all-reduce
   (weights = chunk sizes), which for mean losses equals the gradient of the
   global-batch loss;
4. the caller applies its usual optimizer step to the master model and then
   :meth:`~DataParallelEngine.broadcast`\\ s the updated parameters back to
   every replica.

Because aggregation happens *before* the (unmodified) optimizer step, one
logical update is numerically equivalent to large-batch single-process
training — the property the parity tests in ``tests/parallel`` verify.

Backends
--------
``process``
    Workers are forked OS processes; gradients travel through
    :class:`~repro.parallel.allreduce.SharedMemoryAllReduce` buffers and
    parameters are broadcast through a shared-memory vector guarded by a
    barrier.  Requires the ``fork`` start method (POSIX).
``thread``
    Workers are threads in a pool; numpy kernels release the GIL so compute
    still overlaps on multi-core hosts, and everything runs on platforms
    without ``fork``.  This is the default and the test backend.

``resolve_backend`` silently degrades ``process`` to ``thread`` when ``fork``
is unavailable so configuration written on Linux still runs anywhere.
"""

from __future__ import annotations

import copy
import gc
import itertools
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..datasets.loaders import Batch
from ..exceptions import ParallelError
from ..faults import disarm as _disarm_faults
from ..faults import site as _fault_site
from ..logging_utils import get_logger
from ..nn import Module, clip_grad_norm
from ..nn.tensor import Tensor
from ..nn.utils import (
    gradients_to_vector,
    parameters_to_vector,
    vector_to_gradients,
    vector_to_parameters,
)
from ..obs.aggregate import drain_worker_obs, merge_worker_obs
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.profiling import PHASE_SECONDS_BUCKETS, PhaseTimer
from ..obs.tracing import get_tracer
from .allreduce import AllReduce, InProcessAllReduce, SharedMemoryAllReduce

logger = get_logger(__name__)

_engine_ids = itertools.count(1)

StepResult = Union[Tensor, Tuple[Tensor, Dict[str, float]]]
StepFn = Callable[[Module, Batch, np.random.Generator], StepResult]

BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"
BACKENDS = (BACKEND_THREAD, BACKEND_PROCESS)


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(backend: str) -> str:
    """Validate ``backend`` and degrade ``process`` to ``thread`` without fork."""
    if backend not in BACKENDS:
        raise ParallelError(f"unknown parallel backend {backend!r}; choose from {BACKENDS}")
    if backend == BACKEND_PROCESS and not fork_available():
        logger.warning("fork start method unavailable; falling back to thread backend")
        return BACKEND_THREAD
    return backend


def split_batch(batch: Batch, num_chunks: int) -> List[Batch]:
    """Scatter a global batch into ``num_chunks`` near-equal sub-batches.

    Chunks preserve order (chunk ``w`` is the ``w``-th contiguous slice), may
    be empty when the batch is smaller than ``num_chunks``, and their union is
    exactly the input batch.
    """
    if num_chunks < 1:
        raise ParallelError(f"num_chunks must be >= 1, got {num_chunks}")
    window_chunks = np.array_split(batch.windows, num_chunks)
    label_chunks = (
        np.array_split(batch.labels, num_chunks) if batch.labels is not None else [None] * num_chunks
    )
    index_chunks = (
        np.array_split(batch.indices, num_chunks) if batch.indices is not None else [None] * num_chunks
    )
    return [
        Batch(windows=w, labels=l, indices=i)
        for w, l, i in zip(window_chunks, label_chunks, index_chunks)
    ]


def _step_rng(seed: int, step_index: int, rank: int) -> np.random.Generator:
    """Deterministic per-(step, worker) generator for stochastic step functions."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), int(step_index), int(rank)]))


class _WorkerMetrics:
    """Per-worker step counters and timers, identical series on both backends.

    Thread workers record straight into the shared process registry with an
    explicit ``worker=<rank>`` label.  Forked process workers record the same
    metrics *unlabelled* into their own post-fork registry; the parent applies
    ``worker=<rank>`` when merging the flushed snapshot
    (:func:`repro.obs.aggregate.merge_worker_obs`), so after a run both
    backends expose byte-for-byte the same family schemas and label sets —
    the merge-correctness property ``tests/parallel/test_parallel_obs.py``
    gates.
    """

    __slots__ = ("steps", "samples", "seconds")

    def __init__(
        self, rank: int, labelled: bool, registry: Optional[MetricsRegistry] = None
    ) -> None:
        registry = registry if registry is not None else get_registry()
        labelnames = ("worker",) if labelled else ()
        labels = {"worker": str(rank)} if labelled else {}
        self.steps = registry.counter(
            "parallel_worker_steps_total",
            "Training steps executed by each data-parallel worker",
            labels=labelnames,
        ).labels(**labels)
        self.samples = registry.counter(
            "parallel_worker_samples_total",
            "Windows consumed by each data-parallel worker",
            labels=labelnames,
        ).labels(**labels)
        self.seconds = registry.histogram(
            "parallel_worker_step_seconds",
            "Per-worker fused forward+backward time (seconds)",
            labels=labelnames,
            buckets=PHASE_SECONDS_BUCKETS,
        ).labels(**labels)

    def record(self, samples: int, seconds: float) -> None:
        self.steps.inc()
        if samples:
            self.samples.inc(samples)
        self.seconds.observe(seconds)


def _local_step(
    replica: Module,
    step_fn: StepFn,
    batch: Batch,
    allreduce: AllReduce,
    rank: int,
    seed: int,
    step_index: int,
    metrics: Optional[_WorkerMetrics] = None,
    trace_id: Optional[str] = None,
) -> Tuple[float, float, Dict[str, float]]:
    """One worker-side forward/backward; publishes the gradient, returns stats.

    ``trace_id`` is the parent's sampled trace for this step (``None`` when
    unsampled): the worker records its ``forward``/``backward`` fragments
    against it so one parallel step exports as one cross-process trace.
    """
    started = time.perf_counter()
    tracer = get_tracer()
    if len(batch) == 0:
        allreduce.contribute(rank, np.zeros(allreduce.size, dtype=np.float64), 0.0)
        if metrics is not None:
            metrics.record(0, time.perf_counter() - started)
        return 0.0, 0.0, {}
    replica.zero_grad()
    # The canonical worker-death fault site: an injected error here surfaces
    # as a failed future (thread backend) or an "error" reply (process
    # backend), an injected kill takes the forked worker down mid-step.
    # Either way the engine respawns the worker and replays this exact chunk;
    # the per-(seed, step, rank) RNG below makes the replay bit-identical.
    _fault_site("parallel.worker.step", rank=rank, step=step_index)
    with tracer.span("forward", trace_id, rank=rank, step=step_index):
        result = step_fn(replica, batch, _step_rng(seed, step_index, rank))
        if isinstance(result, tuple):
            loss, aux = result
        else:
            loss, aux = result, {}
    with tracer.span("backward", trace_id, rank=rank, step=step_index):
        loss.backward()
    weight = float(len(batch))
    allreduce.contribute(rank, gradients_to_vector(replica.parameters()), weight)
    if metrics is not None:
        metrics.record(len(batch), time.perf_counter() - started)
    return float(loss.data), weight, {key: float(value) for key, value in aux.items()}


def _weighted_mean_aux(
    results: List[Tuple[float, float, Dict[str, float]]]
) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    weights: Dict[str, float] = {}
    for _, weight, aux in results:
        if weight <= 0:
            continue
        for key, value in aux.items():
            totals[key] = totals.get(key, 0.0) + weight * value
            weights[key] = weights.get(key, 0.0) + weight
    return {key: totals[key] / weights[key] for key in totals}


def _process_worker_main(
    rank: int,
    conn,
    replica: Module,
    step_fn: StepFn,
    allreduce: SharedMemoryAllReduce,
    param_shm,
    seed: int,
    disarm_faults: bool = False,
) -> None:
    """Forked worker loop: step on request, then wait for the param broadcast.

    ``replica`` is the master model as inherited through ``fork`` — a private
    copy-on-write clone of the parent's parameters, which makes it exactly
    the replica the worker needs (in sync with the master at start time).

    Observability: the fork handler installed by ``repro.obs`` already gave
    this process a fresh registry and tracer, so everything recorded here is
    a clean delta.  Each ``step`` reply carries the drained delta + spans
    (``drain_worker_obs``); the parent merges them under ``worker=<rank>``.
    A final flush rides the ``bye`` reply at shutdown.
    """
    # Park the inherited heap in the GC's permanent generation: cyclic
    # collections triggered by the allocation-heavy autograd steps would
    # otherwise traverse (and copy-on-write fault) every object the parent
    # ever allocated, which measurably throttles the worker.
    gc.freeze()
    if disarm_faults:
        # A respawned worker must *replay* the chunk that killed its
        # predecessor, not re-trigger the same fault forever: the engine
        # respawns with the inherited plan disarmed.
        _disarm_faults()
    params = replica.parameters()
    param_view = np.frombuffer(param_shm, dtype=np.float64)
    # Unlabelled on purpose: the parent stamps worker=<rank> at merge time.
    metrics = _WorkerMetrics(rank, labelled=False)
    tracer = get_tracer()
    while True:
        try:
            message = conn.recv()
        except EOFError:  # repro: noqa[REP107] — parent gone; nothing to tell
            return
        kind = message[0]
        if kind == "step":
            _, step_index, windows, labels, trace_id = message
            data_started = time.perf_counter()
            batch = Batch(windows=windows, labels=labels)
            tracer.record(
                trace_id, "data", data_started, time.perf_counter(),
                args={"rank": rank, "step": step_index},
            )
            try:
                stats = _local_step(
                    replica, step_fn, batch, allreduce, rank, seed, step_index,
                    metrics=metrics, trace_id=trace_id,
                )
            except BaseException as exc:  # noqa: BLE001 — reported to the parent
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                return
            conn.send(("ok", stats, drain_worker_obs(tracer=tracer)))
            # Parent publishes updated parameters, then releases the barrier.
            allreduce.barrier_wait()
            vector_to_parameters(param_view, params)
        elif kind == "close":
            try:
                conn.send(("bye", drain_worker_obs(tracer=tracer)))
            except (BrokenPipeError, OSError):  # repro: noqa[REP107] — best-effort final flush
                pass
            conn.close()
            return


class DataParallelEngine:
    """Synchronous data-parallel gradient computation for one master model.

    Usage (per training step, with any optimizer over the master's params)::

        with DataParallelEngine(model, step_fn, num_workers=2) as engine:
            for batch in loader:
                loss, aux = engine.accumulate(batch)   # master grads are set
                clip_grad_norm(model.parameters(), ...)
                optimizer.step()
                engine.broadcast()                     # resync the replicas

    ``step_fn(replica, batch, rng)`` must run the forward pass on ``replica``
    and return a mean-reduced scalar loss tensor (optionally
    ``(loss, aux_dict)`` where the floats in ``aux_dict`` are weight-averaged
    across workers, e.g. per-level pre-training losses).
    """

    def __init__(
        self,
        model: Module,
        step_fn: StepFn,
        num_workers: int,
        backend: str = BACKEND_THREAD,
        seed: int = 0,
        timeout: float = 120.0,
        max_worker_restarts: int = 2,
    ) -> None:
        if num_workers < 1:
            raise ParallelError(f"num_workers must be >= 1, got {num_workers}")
        if max_worker_restarts < 0:
            raise ParallelError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        self.model = model
        self.step_fn = step_fn
        self.num_workers = num_workers
        self.backend = resolve_backend(backend)
        self.seed = int(seed)
        self.timeout = timeout
        # Self-healing budget: how many times one worker may be respawned
        # (and its chunk replayed) within a single step before the engine
        # falls back to fail-fast ParallelError.  0 disables recovery.
        self.max_worker_restarts = int(max_worker_restarts)
        self.grad_size = parameters_to_vector(model.parameters()).size
        # Opt-in phase attribution (workers / allreduce / optimizer /
        # broadcast); a no-op unless repro.obs.enable_phase_timing() ran.
        self.phase_timer = PhaseTimer("parallel")
        self._engine_name = f"engine-{next(_engine_ids)}"
        self._liveness = None
        self._respawns_total = None
        self._recovery_seconds = None
        self._step_index = 0
        self._pending_broadcast = False
        self._started = False
        self._hung = False
        # Sampled trace for the step currently in flight: drawn in
        # accumulate(), closed out (root "parallel.step" span) in broadcast().
        self._step_trace: Optional[str] = None
        self._step_started = 0.0
        # thread backend state
        self._executor: Optional[ThreadPoolExecutor] = None
        self._replicas: List[Module] = []
        self._worker_metrics: List[_WorkerMetrics] = []
        # process backend state
        self._ctx = None
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._connections: List = []
        self._param_shm = None
        self._allreduce: Optional[AllReduce] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DataParallelEngine":
        if self._started:
            return self
        if self.backend == BACKEND_THREAD:
            self._allreduce = InProcessAllReduce(self.num_workers, self.grad_size)
            self._replicas = [copy.deepcopy(self.model) for _ in range(self.num_workers)]
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="dp-worker"
            )
            # Thread workers share the process registry, so they label their
            # series worker=<rank> up front; process workers get the same
            # label applied by merge_worker_obs instead.
            self._worker_metrics = [
                _WorkerMetrics(rank, labelled=True) for rank in range(self.num_workers)
            ]
        else:
            self._ctx = multiprocessing.get_context("fork")
            self._allreduce = SharedMemoryAllReduce(
                self.num_workers, self.grad_size, ctx=self._ctx, timeout=self.timeout
            )
            self._param_shm = self._ctx.RawArray("d", self.grad_size)
            for rank in range(self.num_workers):
                process, parent_conn = self._spawn_process_worker(rank)
                self._processes.append(process)
                self._connections.append(parent_conn)
        self._liveness = get_registry().gauge(
            "parallel_workers_alive",
            "Live data-parallel workers, per engine",
            labels=("backend", "engine"),
        ).labels(backend=self.backend, engine=self._engine_name)
        if self.backend == BACKEND_THREAD:
            # Pool threads live for the engine's lifetime; no per-thread poll.
            self._liveness.set(float(self.num_workers))
        else:
            # Read self._processes live (not a captured copy) so the gauge
            # reflects respawned workers, not the original forks.
            self._liveness.set_function(
                lambda: float(sum(process.is_alive() for process in self._processes))
            )
        # Named outside the parallel_worker_* family namespace on purpose:
        # those series must be byte-identical across backends (the obs merge
        # gate), while respawn/recovery series carry a backend label.
        self._respawns_total = get_registry().counter(
            "parallel_respawns_total",
            "Workers respawned (and their chunk replayed) after a mid-step failure",
            labels=("backend",),
        ).labels(backend=self.backend)
        self._recovery_seconds = get_registry().histogram(
            "parallel_recovery_seconds",
            "Failure-detection to recovered-result time for respawned workers",
            labels=("backend",),
            buckets=PHASE_SECONDS_BUCKETS,
        ).labels(backend=self.backend)
        self._started = True
        return self

    def _spawn_process_worker(self, rank: int, disarm_faults: bool = False):
        """Fork one worker for ``rank``; returns ``(process, parent_conn)``.

        A fork inherits the master model as it stands *right now*, which is
        exactly the replica contract: at engine start and at any respawn
        point (pre-optimizer-step), the master parameters are what every
        in-sync replica holds.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(
                rank,
                child_conn,
                self.model,
                self.step_fn,
                self._allreduce,
                self._param_shm,
                self.seed,
            ),
            kwargs={"disarm_faults": disarm_faults},
            daemon=True,
            name=f"dp-worker-{rank}",
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _respawn_process_worker(self, rank: int) -> None:
        """Replace a dead/failed process worker with a fresh fork of the master.

        The new fork inherits the *current* master parameters (the engine is
        mid-``accumulate``, before any optimizer step, so the master is still
        what the dead worker's replica held) and starts with fault injection
        disarmed, so replaying the lost chunk cannot re-trigger the fault
        that killed its predecessor.
        """
        old_conn = self._connections[rank]
        try:
            old_conn.close()
        except OSError as exc:
            logger.debug("closing dead worker %d pipe failed: %s", rank, exc)
        old_process = self._processes[rank]
        if old_process.is_alive():
            # A worker that *replied* "error" and returned may still be mid-exit.
            old_process.terminate()
        old_process.join(timeout=5.0)
        process, parent_conn = self._spawn_process_worker(rank, disarm_faults=True)
        self._processes[rank] = process
        self._connections[rank] = parent_conn
        if self._respawns_total is not None:
            self._respawns_total.inc()
        logger.warning(
            "respawned process worker %d (pid %s -> %s)",
            rank, old_process.pid, process.pid,
        )

    def __enter__(self) -> "DataParallelEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if not self._started:
            return
        if self.backend == BACKEND_THREAD:
            if self._executor is not None:
                # After a worker timeout the stuck thread can never be joined;
                # abandon it instead of hanging close() (and the caller) too.
                self._executor.shutdown(wait=not self._hung, cancel_futures=self._hung)
                self._executor = None
            self._replicas = []
            self._worker_metrics = []
        else:
            if self._pending_broadcast:
                # Workers are parked at the barrier; release them so they can
                # reach their control pipe again before shutdown.
                try:
                    self.broadcast()
                except ParallelError as exc:
                    logger.debug("pre-shutdown broadcast failed: %s", exc)
            for rank, conn in enumerate(self._connections):
                try:
                    conn.send(("close",))
                    # Workers answer "close" with a final obs flush — anything
                    # recorded since the last step boundary (e.g. a data span
                    # for a step that errored out).  Best effort: a worker
                    # that died mid-run simply has nothing left to flush.
                    if conn.poll(1.0):
                        message = conn.recv()
                        if message and message[0] == "bye":
                            merge_worker_obs(message[1], worker=rank)
                except (BrokenPipeError, EOFError, OSError) as exc:
                    logger.debug("worker %d did not flush on close: %s", rank, exc)
                finally:
                    try:
                        conn.close()
                    except OSError as exc:
                        logger.debug("closing worker %d pipe failed: %s", rank, exc)
            for process in self._processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            self._processes = []
            self._connections = []
        if self._liveness is not None:
            self._liveness.set(0.0)  # also drops the is_alive poll closure
        self._started = False

    # ------------------------------------------------------------------
    # One logical step
    # ------------------------------------------------------------------
    def accumulate(self, batch: Batch) -> Tuple[float, Dict[str, float]]:
        """Compute the all-reduced gradient of ``batch`` onto the master model.

        Returns the weight-averaged loss and auxiliary metrics.  The caller
        must apply the optimizer step and then call :meth:`broadcast` before
        the next :meth:`accumulate`.
        """
        if not self._started:
            self.start()
        if self._pending_broadcast:
            raise ParallelError(
                "accumulate() called before broadcast() of the previous step — "
                "replicas would drift from the master parameters"
            )
        if len(batch) == 0:
            raise ParallelError("cannot accumulate gradients over an empty batch")
        chunks = split_batch(batch, self.num_workers)
        self._allreduce.reset()
        step_index = self._step_index
        self._step_index += 1
        # One sampled trace per parallel step: the id travels to every worker
        # (thread or forked process) so their forward/backward fragments and
        # this engine's workers/allreduce/broadcast phases export as a single
        # cross-process trace.  None (unsampled) keeps the zero-cost path.
        tracer = get_tracer()
        trace_id = tracer.sample()
        self._step_trace = trace_id
        self._step_started = time.perf_counter()

        # The fused forward+backward happens inside the workers, so phase
        # attribution can only split the step at this engine's boundaries:
        # `workers` (dispatch + replica compute + collect) and `allreduce`.
        obs_payloads: List[Tuple[int, Dict[str, object]]] = []
        with self.phase_timer.phase("workers"), tracer.span(
            "workers", trace_id, step=step_index, backend=self.backend
        ):
            if self.backend == BACKEND_THREAD:
                futures = [
                    self._executor.submit(
                        _local_step,
                        self._replicas[rank],
                        self.step_fn,
                        chunks[rank],
                        self._allreduce,
                        rank,
                        self.seed,
                        step_index,
                        self._worker_metrics[rank],
                        trace_id,
                    )
                    for rank in range(self.num_workers)
                ]
                results = []
                for rank in range(self.num_workers):
                    future = futures[rank]
                    restarts = 0
                    detected: Optional[float] = None
                    while True:
                        try:
                            result = future.result(timeout=self.timeout)
                        except FuturesTimeoutError:
                            # Hung is not dead: a stuck pool thread can be
                            # neither killed nor replayed, so timeouts stay
                            # fail-fast instead of entering the respawn path.
                            self._hung = True
                            raise ParallelError(
                                f"a thread worker did not finish within {self.timeout:.0f}s"
                            ) from None
                        except Exception as exc:
                            if detected is None:
                                detected = time.perf_counter()
                            restarts += 1
                            if restarts > self.max_worker_restarts:
                                raise ParallelError(
                                    f"worker {rank} failed {restarts} times in step "
                                    f"{step_index} (respawn budget "
                                    f"{self.max_worker_restarts} exhausted): {exc}"
                                ) from exc
                            logger.warning(
                                "thread worker %d failed in step %d (%s); rebuilding "
                                "replica and replaying its chunk (attempt %d/%d)",
                                rank, step_index, exc, restarts, self.max_worker_restarts,
                            )
                            # A fresh deepcopy of the master *is* the in-sync
                            # replica: accumulate() runs pre-optimizer-step, so
                            # the master still holds what the failed replica
                            # held.  Replaying the same chunk with the same
                            # per-(seed, step, rank) RNG is then bit-identical
                            # to the run that never failed; contribute()
                            # overwrites the rank's all-reduce slot, so a
                            # partial first attempt cannot double-count.
                            self._replicas[rank] = copy.deepcopy(self.model)
                            if self._respawns_total is not None:
                                self._respawns_total.inc()
                            future = self._executor.submit(
                                _local_step,
                                self._replicas[rank],
                                self.step_fn,
                                chunks[rank],
                                self._allreduce,
                                rank,
                                self.seed,
                                step_index,
                                self._worker_metrics[rank],
                                trace_id,
                            )
                            continue
                        if detected is not None and self._recovery_seconds is not None:
                            self._recovery_seconds.observe(time.perf_counter() - detected)
                        results.append(result)
                        break
            else:
                for rank, conn in enumerate(self._connections):
                    conn.send(
                        ("step", step_index, chunks[rank].windows, chunks[rank].labels, trace_id)
                    )
                rank_results: List[Optional[Tuple[float, float, Dict[str, float]]]] = (
                    [None] * self.num_workers
                )
                restarts_by_rank = [0] * self.num_workers
                recovery_started: Dict[int, float] = {}
                pending = list(range(self.num_workers))
                while pending:
                    still_pending: List[int] = []
                    for rank in pending:
                        conn = self._connections[rank]
                        if not conn.poll(self.timeout):
                            # Hung is not dead: no reply and no EOF means the
                            # worker is stuck, not gone — replaying could fork a
                            # second writer for the same all-reduce slot.  Break
                            # the barrier so workers already parked there exit
                            # through the broken-barrier error path instead of
                            # being SIGTERM-killed by close() after another
                            # full timeout.
                            self._allreduce.abort()
                            raise ParallelError(
                                f"worker {rank} did not answer within {self.timeout:.0f}s"
                            )
                        failure: Optional[str] = None
                        try:
                            message = conn.recv()
                        except (EOFError, OSError) as exc:
                            # Pipe EOF without a reply: the worker process died
                            # mid-step (SIGKILL, OOM kill, hard crash).
                            failure = f"worker process died mid-step ({type(exc).__name__})"
                        else:
                            if message[0] == "ok":
                                rank_results[rank] = message[1]
                                obs_payloads.append((rank, message[2]))
                                started = recovery_started.pop(rank, None)
                                if started is not None and self._recovery_seconds is not None:
                                    self._recovery_seconds.observe(
                                        time.perf_counter() - started
                                    )
                                continue
                            # The worker protocol exits after an "error" reply,
                            # so a clean failure report needs a respawn too.
                            failure = str(message[1])
                        recovery_started.setdefault(rank, time.perf_counter())
                        restarts_by_rank[rank] += 1
                        if restarts_by_rank[rank] > self.max_worker_restarts:
                            self._allreduce.abort()
                            raise ParallelError(
                                f"worker {rank} failed {restarts_by_rank[rank]} times in "
                                f"step {step_index} (respawn budget "
                                f"{self.max_worker_restarts} exhausted): {failure}"
                            )
                        logger.warning(
                            "worker %d failed in step %d (%s); respawning and replaying "
                            "its chunk (attempt %d/%d)",
                            rank, step_index, failure,
                            restarts_by_rank[rank], self.max_worker_restarts,
                        )
                        self._respawn_process_worker(rank)
                        self._connections[rank].send(
                            ("step", step_index, chunks[rank].windows,
                             chunks[rank].labels, trace_id)
                        )
                        still_pending.append(rank)
                    pending = still_pending
                results = [result for result in rank_results if result is not None]

        with self.phase_timer.phase("allreduce"), tracer.span(
            "allreduce", trace_id, step=step_index
        ):
            vector, total_weight = self._allreduce.reduce()
            if total_weight <= 0:
                raise ParallelError("all workers reported empty batches")
            vector_to_gradients(vector, self.model.parameters())
        # Fold each process worker's flushed registry delta + spans into this
        # process under worker=<rank> (thread workers recorded directly).
        for rank, payload in obs_payloads:
            merge_worker_obs(payload, worker=rank)
        self._pending_broadcast = True
        mean_loss = sum(loss * weight for loss, weight, _ in results) / total_weight
        return mean_loss, _weighted_mean_aux(results)

    def train_step(
        self,
        batch: Batch,
        optimizer,
        clip_parameters=None,
        grad_clip: float = 0.0,
    ) -> Tuple[float, Dict[str, float]]:
        """One full synchronous update: accumulate → clip → step → broadcast.

        ``clip_parameters`` restricts gradient clipping to a subset (e.g. a
        frozen-backbone fine-tune clips only the classifier head); the
        optimizer must already hold the master model's parameters.
        """
        loss, aux = self.accumulate(batch)
        with self.phase_timer.phase("optimizer"):
            if grad_clip > 0:
                params = clip_parameters if clip_parameters is not None else self.model.parameters()
                clip_grad_norm(params, grad_clip)
            optimizer.step()
        with self.phase_timer.phase("broadcast"):
            self.broadcast()
        return loss, aux

    def broadcast(self) -> None:
        """Publish the master parameters to every replica (post-optimizer sync)."""
        if not self._started:
            raise ParallelError("engine is not running")
        tracer = get_tracer()
        trace_id = self._step_trace
        vector = parameters_to_vector(self.model.parameters())
        with tracer.span("broadcast", trace_id, backend=self.backend):
            if self.backend == BACKEND_THREAD:
                for replica in self._replicas:
                    vector_to_parameters(vector, replica.parameters())
            else:
                np.frombuffer(self._param_shm, dtype=np.float64)[:] = vector
                self._allreduce.barrier_wait()
        self._pending_broadcast = False
        if trace_id is not None:
            # Root span closing the whole logical step (accumulate → optimizer
            # → broadcast); the per-phase and per-worker fragments nest inside.
            tracer.record(
                trace_id, "parallel.step", self._step_started, time.perf_counter(),
                args={"step": self._step_index - 1, "workers": self.num_workers},
            )
            self._step_trace = None
