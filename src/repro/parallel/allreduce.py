"""Synchronous gradient all-reduce over shared buffers.

Each of ``num_slots`` workers owns one row of a ``(num_slots, size)`` buffer.
A step proceeds as: every worker :meth:`~AllReduce.contribute`\\ s its flat
gradient vector and a weight (its local batch size), then the aggregator
calls :meth:`~AllReduce.reduce` to obtain the weight-averaged gradient

.. math:: g = \\frac{\\sum_i w_i g_i}{\\sum_i w_i}

which, for mean-reduced losses, equals the gradient of the loss over the
union of all local batches — the identity that makes data-parallel training
equivalent to large-batch single-process training.

Two implementations are provided:

* :class:`SharedMemoryAllReduce` — rows live in ``multiprocessing`` shared
  memory (``RawArray``) and a ``Barrier`` synchronises forked worker
  processes with the aggregator.  This is the production backend.
* :class:`InProcessAllReduce` — rows live in an ordinary numpy array; used by
  the in-process thread backend so the test-suite runs on any platform
  (no ``fork``, single CPU, ...).
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ParallelError

DEFAULT_TIMEOUT_SECONDS = 120.0


class AllReduce:
    """Interface shared by both all-reduce implementations."""

    num_slots: int
    size: int

    def _slots(self) -> np.ndarray:
        raise NotImplementedError

    def _weights(self) -> np.ndarray:
        raise NotImplementedError

    def contribute(self, rank: int, vector: np.ndarray, weight: float) -> None:
        """Publish worker ``rank``'s flat gradient vector with its weight."""
        if not 0 <= rank < self.num_slots:
            raise ParallelError(f"rank {rank} out of range for {self.num_slots} slots")
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.size != self.size:
            raise ParallelError(
                f"gradient vector has {vector.size} elements, expected {self.size}"
            )
        self._slots()[rank, :] = vector
        self._weights()[rank] = float(weight)

    def reduce(self) -> Tuple[np.ndarray, float]:
        """Weight-averaged gradient over all contributed slots.

        Returns ``(vector, total_weight)``; slots contributed with weight 0
        (e.g. a worker whose shard chunk was empty) do not influence the mean.
        """
        weights = np.asarray(self._weights(), dtype=np.float64)
        total = float(weights.sum())
        if total <= 0.0:
            return np.zeros(self.size, dtype=np.float64), 0.0
        mean = (weights[:, None] * self._slots()).sum(axis=0) / total
        return mean, total

    def reset(self) -> None:
        """Zero all slots and weights before the next step."""
        self._slots()[:, :] = 0.0
        self._weights()[:] = 0.0

    def barrier_wait(self, timeout: Optional[float] = None) -> None:
        """Block until every party reached the barrier (no-op in-process)."""


class InProcessAllReduce(AllReduce):
    """All-reduce over a plain numpy buffer for same-process (thread) workers.

    Rows are disjoint per worker, so concurrent :meth:`contribute` calls from
    different threads are safe without locking; the caller synchronises the
    contribute/reduce phases (e.g. by joining its thread pool futures).
    """

    def __init__(self, num_slots: int, size: int) -> None:
        if num_slots < 1 or size < 1:
            raise ParallelError("num_slots and size must be positive")
        self.num_slots = num_slots
        self.size = size
        self._grad_rows = np.zeros((num_slots, size), dtype=np.float64)
        self._weight_row = np.zeros(num_slots, dtype=np.float64)

    def _slots(self) -> np.ndarray:
        return self._grad_rows

    def _weights(self) -> np.ndarray:
        return self._weight_row


class SharedMemoryAllReduce(AllReduce):
    """All-reduce over ``multiprocessing`` shared memory for forked workers.

    The buffers are allocated *before* the workers fork, so parent and
    children address the same physical pages.  ``barrier_wait`` synchronises
    ``num_slots`` workers plus the aggregator (``num_slots + 1`` parties) and
    raises :class:`~repro.exceptions.ParallelError` on timeout instead of
    deadlocking, so a dead worker fails the step quickly.
    """

    def __init__(
        self,
        num_slots: int,
        size: int,
        ctx: Optional[multiprocessing.context.BaseContext] = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        if num_slots < 1 or size < 1:
            raise ParallelError("num_slots and size must be positive")
        self.num_slots = num_slots
        self.size = size
        self.timeout = timeout
        context = ctx if ctx is not None else multiprocessing.get_context()
        self._grad_shm = context.RawArray("d", num_slots * size)
        self._weight_shm = context.RawArray("d", num_slots)
        self._barrier = context.Barrier(num_slots + 1)

    def _slots(self) -> np.ndarray:
        return np.frombuffer(self._grad_shm, dtype=np.float64).reshape(
            self.num_slots, self.size
        )

    def _weights(self) -> np.ndarray:
        return np.frombuffer(self._weight_shm, dtype=np.float64)

    def barrier_wait(self, timeout: Optional[float] = None) -> None:
        try:
            self._barrier.wait(timeout=self.timeout if timeout is None else timeout)
        except threading.BrokenBarrierError as exc:
            raise ParallelError(
                "all-reduce barrier timed out or broke — a worker likely died "
                "or deadlocked"
            ) from exc

    def abort(self) -> None:
        """Break the barrier so any party blocked in ``barrier_wait`` errors out."""
        self._barrier.abort()
