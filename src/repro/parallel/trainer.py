"""Data-parallel drop-in for :class:`~repro.training.trainer.SupervisedTrainer`.

:class:`ParallelTrainer` consumes the same :class:`TrainerConfig`, the same
datasets and the same model types, and produces a :class:`TrainingHistory`,
but computes each step's gradient with a
:class:`~repro.parallel.engine.DataParallelEngine` over
``config.num_workers`` replicas.  Because the engine aggregates shard
gradients into the exact large-batch gradient *before* the unmodified
optimizer step, the trained parameters match single-process training on the
same seed to floating-point reordering error (see
``tests/parallel/test_parallel_trainer.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import ConfigurationError, TrainingError
from ..logging_utils import get_logger
from ..nn import Adam, CrossEntropyLoss, Module
from ..training.history import EpochRecord, TrainingHistory
from ..training.trainer import EarlyStopping, SupervisedTrainer, TrainerConfig
from .engine import DataParallelEngine
from .prefetch import PrefetchDataLoader

logger = get_logger(__name__)


@dataclass
class ParallelRunStats:
    """Throughput accounting for the most recent :meth:`ParallelTrainer.fit`."""

    samples: int
    seconds: float
    num_workers: int
    backend: str

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.seconds if self.seconds > 0 else 0.0


class ParallelTrainer:
    """Train a ``Module`` with synchronous data-parallel workers."""

    def __init__(self, config: Optional[TrainerConfig] = None) -> None:
        if config is None:
            config = TrainerConfig(num_workers=2)
        if config.num_workers < 1:
            raise ConfigurationError(
                "ParallelTrainer requires num_workers >= 1 "
                "(use SupervisedTrainer for single-process training)"
            )
        self.config = config
        self.last_run: Optional[ParallelRunStats] = None
        self.phase_timer = None  # the engine's PhaseTimer, exposed by fit()

    def fit(
        self,
        model: Module,
        train_dataset: IMUDataset,
        task: str,
        validation_dataset: Optional[IMUDataset] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``train_dataset``; mirrors ``SupervisedTrainer.fit``."""
        if len(train_dataset) == 0:
            raise TrainingError("cannot train on an empty dataset")
        cfg = self.config
        generator = rng if rng is not None else np.random.default_rng(cfg.seed)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(
            train_dataset, batch_size=cfg.batch_size, task=task, shuffle=True, rng=generator
        )
        batches = PrefetchDataLoader(loader, depth=cfg.prefetch_batches) if cfg.prefetch_batches else loader

        def supervised_step(replica, batch, _rng):
            logits = replica(batch.windows)
            return loss_fn(logits, batch.labels)

        history = TrainingHistory()
        early_stopping = EarlyStopping(cfg.early_stopping_patience)
        samples = 0
        started = time.perf_counter()
        model.train()
        engine = DataParallelEngine(
            model,
            supervised_step,
            num_workers=cfg.num_workers,
            backend=cfg.parallel_backend,
            seed=cfg.seed,
        )
        self.phase_timer = engine.phase_timer
        _END = object()
        with engine:
            for epoch in range(cfg.epochs):
                epoch_loss = 0.0
                step_count = 0
                iterator = iter(batches)
                while True:
                    # Explicit next() so loader/prefetch time lands in the
                    # `data` phase of the engine's timer (a no-op unless
                    # repro.obs.enable_phase_timing() ran).
                    with engine.phase_timer.phase("data"):
                        batch = next(iterator, _END)
                    if batch is _END:
                        break
                    loss, _ = engine.train_step(batch, optimizer, grad_clip=cfg.grad_clip)
                    epoch_loss += loss
                    step_count += 1
                    samples += len(batch)
                mean_loss = epoch_loss / max(step_count, 1)
                metrics = {}
                if validation_dataset is not None and len(validation_dataset) > 0:
                    metrics = SupervisedTrainer.evaluate(model, validation_dataset, task).as_dict()
                history.append(EpochRecord(epoch=epoch, train_loss=mean_loss, metrics=metrics))
                if cfg.log_every and epoch % cfg.log_every == 0:
                    logger.info(
                        "parallel-train[%s] epoch %d loss %.5f (%d workers, %s backend)",
                        task, epoch, mean_loss, cfg.num_workers, engine.backend,
                    )

                if early_stopping.should_stop(metrics):
                    logger.info("early stopping at epoch %d", epoch)
                    break
        model.eval()
        self.last_run = ParallelRunStats(
            samples=samples,
            seconds=time.perf_counter() - started,
            num_workers=cfg.num_workers,
            backend=engine.backend,
        )
        return history
