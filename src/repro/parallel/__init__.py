"""Data-parallel training: sharded loading, all-reduce, prefetch pipeline.

The subsystem has four layers (see ``DESIGN.md`` for the architecture):

* :mod:`repro.parallel.allreduce` — synchronous weighted gradient all-reduce
  over shared-memory buffers (process backend) or an in-process numpy buffer
  (thread backend, the run-anywhere fallback);
* :mod:`repro.parallel.engine` — the worker pool: one model replica per
  worker, batch scattering, gradient aggregation onto the master model and
  parameter broadcast back to the replicas;
* :mod:`repro.parallel.trainer` — :class:`ParallelTrainer`, a drop-in
  data-parallel equivalent of the supervised trainer;
* :mod:`repro.parallel.prefetch` — :class:`PrefetchDataLoader`, a
  background-thread batch pipeline used by both the parallel and the
  single-process training paths.

Sharded, seeded sampling itself lives with the data layer in
:class:`repro.datasets.loaders.DataLoader` (``seed`` / ``num_shards`` /
``shard_index`` / ``set_epoch``).
"""

from .allreduce import AllReduce, InProcessAllReduce, SharedMemoryAllReduce
from .engine import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    BACKENDS,
    DataParallelEngine,
    fork_available,
    resolve_backend,
    split_batch,
)
from .prefetch import PrefetchDataLoader
from .trainer import ParallelRunStats, ParallelTrainer

__all__ = [
    "AllReduce",
    "InProcessAllReduce",
    "SharedMemoryAllReduce",
    "DataParallelEngine",
    "split_batch",
    "fork_available",
    "resolve_backend",
    "BACKENDS",
    "BACKEND_THREAD",
    "BACKEND_PROCESS",
    "PrefetchDataLoader",
    "ParallelTrainer",
    "ParallelRunStats",
]
