"""Asynchronous batch prefetching on a background thread.

:class:`PrefetchDataLoader` wraps any re-iterable loader (normally a
:class:`~repro.datasets.loaders.DataLoader`) and assembles up to ``depth``
batches ahead of the consumer on a daemon thread, handing them over through a
bounded queue.  Batch assembly (fancy indexing + copies of the window array)
then overlaps with the consumer's forward/backward compute, which releases
the GIL inside numpy kernels.

The wrapper is careful about lifecycle:

* each ``__iter__`` starts a fresh producer thread, so the loader can be
  iterated once per epoch exactly like the eager loader it wraps;
* an exception raised by the underlying loader is re-raised in the consumer
  (not swallowed on the producer thread);
* abandoning iteration early (``break``) stops the producer promptly instead
  of leaving it blocked on a full queue.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ..exceptions import ParallelError

_DEFAULT_TIMEOUT_SECONDS = 120.0


class _EndOfEpoch:
    """Sentinel closing one epoch of prefetched batches."""


class _ProducerError:
    """Carries an exception from the producer thread to the consumer."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class PrefetchDataLoader:
    """Prefetch batches from ``loader`` on a background thread.

    Parameters
    ----------
    loader:
        Any object that is re-iterable over batches (and optionally has
        ``__len__`` / ``set_epoch``).
    depth:
        Maximum number of batches assembled ahead of the consumer.
    timeout:
        Seconds the consumer waits for the next batch before raising
        :class:`~repro.exceptions.ParallelError` (guards against a hung
        producer).
    """

    def __init__(self, loader, depth: int = 2, timeout: float = _DEFAULT_TIMEOUT_SECONDS) -> None:
        if depth < 1:
            raise ParallelError(f"prefetch depth must be >= 1, got {depth}")
        self.loader = loader
        self.depth = depth
        self.timeout = timeout

    def __len__(self) -> int:
        return len(self.loader)

    def set_epoch(self, epoch: int) -> None:
        """Forward epoch pinning to the underlying loader (if it supports it)."""
        set_epoch = getattr(self.loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)

    def __iter__(self) -> Iterator:
        batches: "queue.Queue" = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def produce() -> None:
            try:
                for batch in self.loader:
                    while not stop.is_set():
                        try:
                            batches.put(batch, timeout=0.1)
                            break
                        except queue.Full:  # repro: noqa[REP107] — bounded-put retry; Full is flow control
                            continue
                    if stop.is_set():
                        return
                item = _EndOfEpoch()
            except BaseException as exc:  # noqa: BLE001 — forwarded to consumer
                item = _ProducerError(exc)
            while not stop.is_set():
                try:
                    batches.put(item, timeout=0.1)
                    return
                except queue.Full:  # repro: noqa[REP107] — bounded-put retry; Full is flow control
                    continue

        producer = threading.Thread(target=produce, name="prefetch-producer", daemon=True)
        producer.start()
        try:
            while True:
                try:
                    item = batches.get(timeout=self.timeout)
                except queue.Empty:
                    raise ParallelError(
                        f"prefetch producer made no progress for {self.timeout:.0f}s"
                    ) from None
                if isinstance(item, _EndOfEpoch):
                    return
                if isinstance(item, _ProducerError):
                    raise item.exc
                yield item
        finally:
            stop.set()
            producer.join(timeout=5.0)

    def close(self) -> None:
        """Kept for symmetry with other pipeline stages; per-epoch threads
        terminate themselves, so there is no persistent state to release."""
