"""Request tracing: sampled spans with cross-thread propagation.

One serving request crosses three threads — the caller's (submit), a
micro-batcher worker's (queue wait, batch assembly, forward) and whichever
thread resolves the future (response).  The tracer ties those fragments into
one *trace*: the submitting side draws a trace id (:meth:`Tracer.sample`),
the id travels with the queued request, and every side records finished
spans against it with :meth:`Tracer.record`.  Spans land in a bounded ring
buffer and export as Chrome trace-event JSON
(:meth:`Tracer.export_chrome_trace`), loadable in ``chrome://tracing`` or
Perfetto.

Cost model
----------
Tracing is **off by default** (``sample_rate == 0``) and the disabled path
allocates nothing: :meth:`sample` is one attribute check returning ``None``,
every recording site is guarded by ``if trace_id is not None`` and
:meth:`span` returns a shared no-op context-manager singleton.  When
enabled, each root trace is sampled independently with probability
``sample_rate``; unsampled requests take the exact disabled path.

``REPRO_TRACE_SAMPLE`` (a float in ``[0, 1]``) configures the process-wide
tracer at import, mirroring how ``REPRO_DTYPE`` selects the precision
policy; :func:`configure_tracing` changes it at runtime.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from ..exceptions import ObservabilityError

__all__ = [
    "SpanRecord",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "set_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (times are ``time.perf_counter`` seconds).

    ``pid`` is stamped at *record* time, not export time: a span recorded
    before a ``fork`` must keep the recording process's pid even when the
    deque it lives in is exported by (or flushed from) the child, and spans
    ingested from a forked worker must keep the worker's pid so a merged
    Chrome export shows one lane per process.
    """

    trace_id: str
    name: str
    started: float
    finished: float
    pid: int
    thread_id: int
    thread_name: str
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return 1000.0 * (self.finished - self.started)


class _NullSpan:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_trace_id", "_name", "_args", "_started")

    def __init__(self, tracer: "Tracer", trace_id: str, name: str, args) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer.record(
            self._trace_id, self._name, self._started, time.perf_counter(), args=self._args
        )
        return False


class Tracer:
    """Span collector with bounded storage and probabilistic root sampling."""

    # The recording hot path (record/ingest) appends lock-free — a single
    # deque.append is atomic under the GIL — so only the compound
    # read-modify sequences (configure's resize, drain's copy-and-clear)
    # take the lock.  Lock-free sites carry inline REP104 exemptions.
    _GUARDED_BY = {"_lock": ("_spans",)}

    def __init__(self, sample_rate: float = 0.0, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        # Raw (trace_id, name, started, finished, pid, thread_id,
        # thread_name, args) tuples; SpanRecord materialisation is deferred
        # to spans().
        self._spans: Deque[tuple] = deque(maxlen=int(capacity))
        # threading.current_thread() is a dict lookup plus object traversal
        # per call — too slow for six records per request, and thread names
        # never change here, so resolve each ident once.
        self._thread_names: Dict[int, str] = {}
        # Sampling decisions are intentionally non-reproducible: the tracer
        # must not perturb (or depend on) the experiment's seeded RNG stream.
        self._rng = random.Random()  # repro: noqa[REP102]
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self.sample_rate = sample_rate  # property setter validates

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    @sample_rate.setter
    def sample_rate(self, rate: float) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ObservabilityError(f"sample_rate must be in [0, 1], got {rate}")
        self._sample_rate = rate

    @property
    def enabled(self) -> bool:
        return self._sample_rate > 0.0

    @property
    def capacity(self) -> int:
        # maxlen is only replaced wholesale by configure(); a stale read
        # here is benign.
        return self._spans.maxlen or 0  # repro: noqa[REP104]

    def configure(
        self, sample_rate: Optional[float] = None, capacity: Optional[int] = None
    ) -> "Tracer":
        if sample_rate is not None:
            self.sample_rate = sample_rate
        if capacity is not None:
            if capacity < 1:
                raise ObservabilityError("capacity must be >= 1")
            with self._lock:
                # record() appends lock-free, so a hot-path append can land in
                # the old deque between the copy below and the swap.  Swap
                # under the lock, then re-append anything that raced into the
                # old deque after the copy (record tuples are unique objects,
                # so identity is a safe membership test).
                old = self._spans
                copied = list(old)
                self._spans = deque(copied, maxlen=int(capacity))
                copied_ids = {id(record) for record in copied}
                raced = [record for record in old if id(record) not in copied_ids]
                self._spans.extend(raced)
        return self

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sample(self) -> Optional[str]:
        """Draw a new trace id, or ``None`` when this root is unsampled.

        ``None`` is the contract every instrumentation site relies on for
        the zero-cost disabled path: propagate the ``None`` and skip every
        :meth:`record` behind an ``is not None`` guard.
        """
        rate = self._sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0 and self._rng.random() >= rate:
            return None
        return f"t{next(self._ids):08x}"

    def record(
        self,
        trace_id: Optional[str],
        name: str,
        started: float,
        finished: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one finished span (no-op when ``trace_id`` is ``None``).

        The hot path stores a plain tuple: ``deque.append`` is atomic under
        the GIL, so no lock is taken, and the :class:`SpanRecord` (plus the
        defensive copy of ``args``) is materialised lazily by :meth:`spans`.
        Callers therefore must not mutate ``args`` after recording.  The
        recording process's pid is stamped into the tuple here — deferring it
        to export time misattributes pre-fork spans to whichever process
        happens to export them.
        """
        if trace_id is None:
            return
        ident = threading.get_ident()
        thread_name = self._thread_names.get(ident)
        if thread_name is None:
            thread_name = threading.current_thread().name
            self._thread_names[ident] = thread_name
        self._spans.append(  # repro: noqa[REP104] — GIL-atomic hot path
            (trace_id, name, started, finished, os.getpid(), ident, thread_name, args)
        )

    def span(self, name: str, trace_id: Optional[str], **args):
        """Context manager recording ``name`` under ``trace_id`` on exit."""
        if trace_id is None:
            return _NULL_SPAN
        return _Span(self, trace_id, name, args)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def spans(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        with self._lock:
            raw = list(self._spans)
        records = [
            SpanRecord(
                trace_id=tid,
                name=name,
                started=started,
                finished=finished,
                pid=pid,
                thread_id=thread_id,
                thread_name=thread_name,
                args=dict(args) if args else {},
            )
            for (tid, name, started, finished, pid, thread_id, thread_name, args) in raw
            if trace_id is None or tid == trace_id
        ]
        return sorted(records, key=lambda span: span.started)

    def drain(self) -> List[tuple]:
        """Atomically take (and clear) every raw span tuple.

        The worker-side flush primitive: a forked worker drains its tracer at
        step boundaries and ships the raw tuples to the parent, which
        re-appends them with :meth:`ingest`.  Tuples are
        ``(trace_id, name, started, finished, pid, thread_id, thread_name,
        args)`` — all JSON-safe when ``args`` is.
        """
        with self._lock:
            raw = list(self._spans)
            self._spans.clear()
        return raw

    def ingest(self, records: Iterable[Sequence]) -> int:
        """Append foreign span records (e.g. flushed from a forked worker).

        Accepts the 8-field sequences produced by :meth:`drain` (tuples or
        JSON-decoded lists).  The recorded pid/tid are preserved, so a merged
        Chrome export keeps one lane per originating process; on POSIX,
        ``time.perf_counter`` reads the machine-wide monotonic clock, so
        parent and worker fragments share a timeline.  Returns the number of
        records appended.
        """
        appended = 0
        for record in records:
            trace_id, name, started, finished, pid, thread_id, thread_name, args = record
            if trace_id is None:
                continue
            self._spans.append(  # repro: noqa[REP104] — GIL-atomic, like record()
                (
                    str(trace_id), str(name), float(started), float(finished),
                    int(pid), int(thread_id), str(thread_name),
                    dict(args) if args else None,
                )
            )
            appended += 1
        return appended

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def chrome_events(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        """Spans as Chrome trace-event dicts (``ph: "X"`` complete events).

        Timestamps are microseconds since the tracer's epoch; ``pid`` is the
        process that *recorded* the span (stamped at record time, so ingested
        worker fragments keep their own lane), ``tid`` the recording thread,
        and the trace id rides in ``args`` so one export holding many traces
        stays filterable.
        """
        events: List[Dict[str, object]] = []
        for span in self.spans(trace_id):
            args = dict(span.args)
            args["trace_id"] = span.trace_id
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": 1e6 * (span.started - self._epoch),
                    "dur": 1e6 * (span.finished - span.started),
                    "pid": span.pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return events

    def export_chrome_trace(
        self, path: Path, trace_id: Optional[str] = None
    ) -> Path:
        """Write Chrome trace-event JSON (Perfetto-loadable) to ``path``."""
        path = Path(path)
        payload = {
            "traceEvents": self.chrome_events(trace_id),
            "displayTimeUnit": "ms",
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return path

    def __repr__(self) -> str:
        return (
            f"Tracer(sample_rate={self._sample_rate}, "
            f"spans={len(self._spans)}, "  # repro: noqa[REP104] — debug repr
            f"capacity={self.capacity})"
        )


def _rate_from_env() -> float:
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"REPRO_TRACE_SAMPLE={raw!r} is not a float in [0, 1]"
        ) from exc
    if not 0.0 <= rate <= 1.0:
        raise ObservabilityError(f"REPRO_TRACE_SAMPLE={raw!r} is not in [0, 1]")
    return rate


_default_tracer = Tracer(sample_rate=_rate_from_env())


def get_tracer() -> Tracer:
    """The process-wide tracer (off unless configured or ``REPRO_TRACE_SAMPLE``)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests); returns the previous one."""
    global _default_tracer
    if not isinstance(tracer, Tracer):
        raise ObservabilityError("set_tracer expects a Tracer")
    previous, _default_tracer = _default_tracer, tracer
    return previous


def _fresh_tracer_after_fork() -> None:
    """Replace the inherited tracer in a freshly forked child.

    Called from the ``os.register_at_fork`` handler installed by
    :func:`repro.obs.aggregate.install_fork_handlers`.  The child keeps the
    parent's configuration (sample rate, capacity) but gets a fresh deque and
    lock: the inherited buffer is a frozen shadow copy of the parent's spans
    — anything recorded into it would be silently discarded at exit, and its
    lock may have been held by a parent thread that does not exist in the
    child.  No locking here: the child is single-threaded at this point.
    """
    global _default_tracer
    inherited = _default_tracer
    _default_tracer = Tracer(
        sample_rate=inherited._sample_rate, capacity=inherited.capacity or 4096
    )


def configure_tracing(
    sample_rate: Optional[float] = None, capacity: Optional[int] = None
) -> Tracer:
    """Configure the process-wide tracer; returns it for chaining."""
    return _default_tracer.configure(sample_rate=sample_rate, capacity=capacity)
