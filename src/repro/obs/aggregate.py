"""Cross-process observability: snapshot/merge wire format and fork safety.

``repro.obs`` is process-local by construction — every registry child owns a
lock and every tracer a deque, none of which survive a ``fork`` usefully.
This module makes the subsystem span processes:

* **Wire format** — :func:`snapshot_registry` serialises a whole
  :class:`~repro.obs.metrics.MetricsRegistry` into a JSON-safe
  ``RegistrySnapshot`` dict (family schema + per-label-set child state), and
  :func:`merge_snapshot` folds such a snapshot into a live registry with
  well-defined semantics: **counters sum**, **gauges resolve per label set**
  (callbacks are resolved to values at snapshot time; the incoming value wins
  for its label set), and **histograms merge running stats exactly** (count /
  sum / min / max, elementwise bucket counts) while **reservoirs merge by
  weighted subsampling** (:func:`~repro.obs.metrics.merge_reservoirs`), so
  merged quantiles stay uniform samples of the union stream.  ``extra_labels``
  lets the receiver re-label a source (``worker=<rank>``) so N workers land as
  N disjoint series.  Schema collisions — same metric name, different
  type / label names / buckets — raise
  :class:`~repro.exceptions.ObservabilityError` rather than merging garbage.

* **Fork safety** — :func:`install_fork_handlers` registers an
  ``os.register_at_fork`` child handler that swaps in a fresh registry and
  tracer (new locks, empty state) the moment a child exists.  Without it a
  forked worker records into a frozen shadow copy of the parent's state:
  nothing it writes is ever seen, and an inherited lock held by a parent
  thread at fork time deadlocks the child.  With it, everything a child
  records is a clean delta, flushable with :func:`drain_worker_obs` and
  mergeable with :func:`merge_worker_obs` — the protocol
  :class:`~repro.parallel.engine.DataParallelEngine` runs at step boundaries.

The handler is installed on ``import repro.obs`` (POSIX only; ``fork`` and
``register_at_fork`` do not exist elsewhere, and neither does the problem).
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional

from ..exceptions import ObservabilityError
from . import metrics as _metrics
from . import tracing as _tracing
from .metrics import (
    TYPE_COUNTER,
    TYPE_GAUGE,
    TYPE_HISTOGRAM,
    MetricsRegistry,
    get_registry,
)
from .tracing import Tracer, get_tracer

__all__ = [
    "WIRE_VERSION",
    "drain_worker_obs",
    "install_fork_handlers",
    "merge_snapshot",
    "merge_worker_obs",
    "snapshot_registry",
]

#: Version stamp of the RegistrySnapshot wire format.
WIRE_VERSION = 1


# ----------------------------------------------------------------------
# Bounds encoding: ±inf is not JSON-safe, so bucket bounds travel as the
# Prometheus-style strings "+Inf" / "-Inf".
# ----------------------------------------------------------------------
def _encode_bound(bound: float) -> object:
    if math.isinf(bound):
        return "+Inf" if bound > 0 else "-Inf"
    return float(bound)


def _decode_bound(bound: object) -> float:
    if bound == "+Inf":
        return math.inf
    if bound == "-Inf":
        return -math.inf
    return float(bound)


# ----------------------------------------------------------------------
# Snapshot (serialise)
# ----------------------------------------------------------------------
def snapshot_registry(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """Serialise ``registry`` (default: the process-wide one) to a JSON-safe dict.

    The snapshot carries everything :func:`merge_snapshot` needs to rebuild
    the families on the receiving side: name, type, description, label names,
    the histogram construction schema (bucket bounds, quantiles, reservoir
    size), and per-label-set mergeable state.  Gauge callbacks are resolved
    to their current value — a callable cannot cross a process boundary.
    """
    registry = registry if registry is not None else get_registry()
    families: List[Dict[str, object]] = []
    for family in registry.families():
        entry: Dict[str, object] = {
            "name": family.name,
            "type": family.type,
            "description": family.description,
            "labelnames": list(family.labelnames),
        }
        if family.type == TYPE_HISTOGRAM:
            kwargs = family.child_kwargs
            entry["buckets"] = [_encode_bound(b) for b in kwargs["buckets"]]
            entry["quantiles"] = [float(q) for q in kwargs["quantiles"]]
            entry["reservoir_size"] = int(kwargs["reservoir_size"])
        entry["children"] = [
            {"labels": [[name, value] for name, value in key], "state": child.dump()}
            for key, child in sorted(family.children(), key=lambda item: item[0])
        ]
        families.append(entry)
    return {"version": WIRE_VERSION, "pid": os.getpid(), "families": families}


# ----------------------------------------------------------------------
# Merge (deserialise + fold in)
# ----------------------------------------------------------------------
def _register_for_merge(registry: MetricsRegistry, entry: Dict[str, object], labelnames):
    """Get-or-create the target family for one snapshot entry.

    Reuses the registry's own schema check: a name already registered with a
    different type or label set raises ``ObservabilityError`` — that, not
    silent widening, is the defined label-collision semantics.
    """
    name = entry["name"]
    description = entry["description"]
    if entry["type"] == TYPE_COUNTER:
        return registry.counter(name, description, labels=labelnames)
    if entry["type"] == TYPE_GAUGE:
        return registry.gauge(name, description, labels=labelnames)
    if entry["type"] == TYPE_HISTOGRAM:
        buckets = tuple(_decode_bound(b) for b in entry["buckets"])
        family = registry.histogram(
            name,
            description,
            labels=labelnames,
            buckets=buckets,
            quantiles=tuple(entry["quantiles"]),
            reservoir_size=int(entry["reservoir_size"]),
        )
        existing = tuple(family.child_kwargs["buckets"])
        if existing != buckets:
            raise ObservabilityError(
                f"histogram {name!r} is registered with buckets {existing}; "
                f"cannot merge a snapshot with buckets {buckets}"
            )
        return family
    raise ObservabilityError(f"unknown metric type {entry['type']!r} in snapshot")


def merge_snapshot(
    snapshot: Dict[str, object],
    registry: Optional[MetricsRegistry] = None,
    extra_labels: Optional[Dict[str, object]] = None,
) -> None:
    """Fold a :func:`snapshot_registry` payload into a live registry.

    ``extra_labels`` are appended to every merged series' label set (the
    parallel engine passes ``{"worker": rank}``), which is how N sources stay
    N disjoint series instead of clobbering each other.  An extra label name
    that a snapshot family already declares is a collision and raises.
    """
    if int(snapshot.get("version", -1)) != WIRE_VERSION:
        raise ObservabilityError(
            f"unsupported RegistrySnapshot version {snapshot.get('version')!r} "
            f"(expected {WIRE_VERSION})"
        )
    registry = registry if registry is not None else get_registry()
    extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
    for entry in snapshot["families"]:
        source_names = tuple(entry["labelnames"])
        overlap = set(source_names) & set(extra)
        if overlap:
            raise ObservabilityError(
                f"metric {entry['name']!r} already has labels {sorted(overlap)}; "
                "cannot re-label them at merge time"
            )
        family = _register_for_merge(registry, entry, source_names + tuple(extra))
        for child_entry in entry["children"]:
            labels = {name: value for name, value in child_entry["labels"]}
            labels.update(extra)
            family.labels(**labels).merge_state(child_entry["state"])


# ----------------------------------------------------------------------
# Worker flush protocol (the parallel engine's step-boundary exchange)
# ----------------------------------------------------------------------
def drain_worker_obs(
    registry: Optional[MetricsRegistry] = None, tracer: Optional[Tracer] = None
) -> Dict[str, object]:
    """Snapshot-and-reset the process-local observability state.

    The worker side of the flush: returns ``{"registry": <snapshot>,
    "spans": [<8-field records>]}`` and leaves the registry zeroed and the
    tracer drained, so the next flush is again a pure delta.  The payload is
    JSON-safe whenever recorded span args are.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    snapshot = snapshot_registry(registry)
    registry.reset()
    spans = [
        [trace_id, name, started, finished, pid, thread_id, thread_name, args or {}]
        for (trace_id, name, started, finished, pid, thread_id, thread_name, args)
        in tracer.drain()
    ]
    return {"registry": snapshot, "spans": spans}


def merge_worker_obs(
    payload: Dict[str, object],
    worker: Optional[object] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> None:
    """The parent side of the flush: merge one worker's drained payload.

    Metrics merge under ``worker=<worker>`` (when given); spans are ingested
    verbatim, keeping the worker's pid so a Chrome export of the combined
    trace shows the parent and each worker as separate process lanes.
    """
    extra = {"worker": str(worker)} if worker is not None else None
    merge_snapshot(payload["registry"], registry=registry, extra_labels=extra)
    (tracer if tracer is not None else get_tracer()).ingest(payload["spans"])


# ----------------------------------------------------------------------
# Fork safety
# ----------------------------------------------------------------------
_fork_handlers_installed = False


def _reset_child_observability() -> None:  # pragma: no cover — runs post-fork
    _metrics._fresh_registry_after_fork()
    _tracing._fresh_tracer_after_fork()


def install_fork_handlers() -> bool:
    """Install the after-fork child reset for the whole obs subsystem.

    Idempotent; returns ``True`` when the handler is (already) installed and
    ``False`` on platforms without ``os.register_at_fork`` (no ``fork``, no
    inherited-state problem).  Runs automatically on ``import repro.obs``.
    """
    global _fork_handlers_installed
    if _fork_handlers_installed:
        return True
    if not hasattr(os, "register_at_fork"):
        return False
    os.register_at_fork(after_in_child=_reset_child_observability)
    _fork_handlers_installed = True
    return True
