"""Opt-in profiling hooks: JIT per-op timing and training phase timers.

Two profilers feed the metrics registry:

* **Op profiling** (:func:`enable_op_profiling`) times every node of a JIT
  tape replay and aggregates the durations *by op kind* before flushing one
  batch of observations per replay into the registry
  (``jit_op_seconds{op=...}`` histograms, ``jit_op_calls_total{op=...}``
  counters).  Aggregation happens in a local dict so a 3k-node replay costs
  3k timer reads, not 3k lock acquisitions.  The hook is a single
  module-global boolean read on the replay hot path when disabled.

* **Phase timing** (:class:`PhaseTimer`) splits a training step into its
  phases — data / forward / backward / optimizer (plus all-reduce and
  broadcast under the parallel engine) — and records per-phase durations
  into ``training_phase_seconds{scope=...,phase=...}``.  A timer built while
  phase timing is disabled hands out a shared no-op context manager, so the
  instrumented loops cost two attribute reads per phase when off.

Both are **off by default**: profiling at this granularity is for answering
"where did the step go?", not for always-on production telemetry.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "PhaseTimer",
    "enable_op_profiling",
    "enable_phase_timing",
    "op_profiling_enabled",
    "phase_timing_enabled",
    "record_op_timings",
]

#: Module-global fast-path flags.  Plain bool reads are atomic under the GIL;
#: writes go through the enable_* functions below.
_OP_PROFILING = False
_PHASE_TIMING = False

_state_lock = threading.Lock()

#: Buckets tuned for single-op replay costs (seconds): ~µs to ~100 ms.
OP_SECONDS_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, float("inf"),
)

PHASE_SECONDS_BUCKETS = (
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 30.0, float("inf"),
)


def enable_op_profiling(enabled: bool = True) -> bool:
    """Turn per-op JIT replay timing on or off; returns the previous state."""
    global _OP_PROFILING
    with _state_lock:
        previous, _OP_PROFILING = _OP_PROFILING, bool(enabled)
    return previous


def op_profiling_enabled() -> bool:
    return _OP_PROFILING


def enable_phase_timing(enabled: bool = True) -> bool:
    """Turn training phase timing on or off; returns the previous state."""
    global _PHASE_TIMING
    with _state_lock:
        previous, _PHASE_TIMING = _PHASE_TIMING, bool(enabled)
    return previous


def phase_timing_enabled() -> bool:
    return _PHASE_TIMING


def record_op_timings(
    totals: Dict[str, Tuple[int, float]], registry: Optional[MetricsRegistry] = None
) -> None:
    """Flush one replay's per-op-kind aggregates into the registry.

    ``totals`` maps op kind to ``(calls, total_seconds)`` — the aggregation
    the executor's profiled loop builds locally.  Each op kind contributes
    one histogram observation (the summed seconds of that kind in this
    replay) so histogram counts stay proportional to replays, not nodes.
    """
    registry = registry if registry is not None else get_registry()
    seconds = registry.histogram(
        "jit_op_seconds",
        "Per-replay time spent in each tape op kind (seconds)",
        labels=("op",),
        buckets=OP_SECONDS_BUCKETS,
    )
    calls = registry.counter(
        "jit_op_calls_total", "Tape nodes executed, by op kind", labels=("op",)
    )
    for op, (count, total) in totals.items():
        calls.labels(op=op).inc(count)
        seconds.labels(op=op).observe(total)


class _NullPhase:
    """Shared no-op context manager: the disabled phase-timer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("_timer", "_name", "_started")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Phase":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._timer._record(self._name, time.perf_counter() - self._started)
        return False


class PhaseTimer:
    """Training-step phase timer feeding ``training_phase_seconds``.

    The canonical phases are ``data`` / ``forward`` / ``backward`` /
    ``optimizer`` for the single-process trainer; the parallel engine adds
    ``workers`` (fused forward+backward on the replicas), ``allreduce`` and
    ``broadcast``.  ``scope`` names the owning loop (``supervised``,
    ``parallel``, …) so concurrent trainers publish distinct series.

    When phase timing is globally disabled (the default) — or the timer is
    constructed with ``enabled=False`` — :meth:`phase` returns a shared
    no-op context manager and nothing is recorded.
    """

    def __init__(
        self,
        scope: str,
        registry: Optional[MetricsRegistry] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        self.scope = scope
        self.enabled = _PHASE_TIMING if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._histogram = None
        if self.enabled:
            registry = registry if registry is not None else get_registry()
            self._histogram = registry.histogram(
                "training_phase_seconds",
                "Per-phase training-step durations (seconds)",
                labels=("scope", "phase"),
                buckets=PHASE_SECONDS_BUCKETS,
            )

    def phase(self, name: str):
        """Context manager timing one phase occurrence."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def _record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1
        if self._histogram is not None:
            self._histogram.labels(scope=self.scope, phase=name).observe(seconds)

    def totals(self) -> Dict[str, float]:
        """Cumulative seconds per phase for this timer instance."""
        with self._lock:
            return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)
