"""Live observability exposition: a stdlib HTTP server over the registry.

:class:`ObsHTTPServer` is the wire surface of ``repro.obs`` — the first half
of the "network front door" (see ROADMAP).  It serves four endpoints off a
:class:`http.server.ThreadingHTTPServer` running in a daemon thread:

``/metrics``
    Prometheus text exposition (format 0.0.4), rendered by the registry's
    existing :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`.
``/metrics.json``
    The registry's JSON snapshot (same payload as ``OBS_metrics.json``).
``/healthz``
    Liveness plus pluggable health checks (:meth:`ObsHTTPServer.add_health_check`);
    ``200`` when every check passes, ``503`` otherwise, JSON body either way.
``/traces``
    Chrome trace-event JSON of the tracer's current spans (Perfetto-loadable;
    ``?trace_id=`` filters to one trace).

The registry and tracer are resolved *per request* (late-bound to the
process-wide instances unless pinned in the constructor), so the server keeps
exporting the right state across ``set_registry`` swaps and post-fork resets.
Construction with ``port=0`` binds an ephemeral port (tests); :attr:`port`
reports the bound one.  :meth:`start`/:meth:`stop` are idempotent and the
instance is a context manager.

:func:`parse_prometheus_text` is the matching strict parser — the CI smoke
test and the overhead benchmark round-trip a live ``/metrics`` scrape through
it, so a formatting regression fails loudly instead of breaking a real
Prometheus scraper in the field.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ObservabilityError
from ..logging_utils import get_logger
from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

logger = get_logger(__name__)

__all__ = [
    "ObsHTTPServer",
    "parse_prometheus_text",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class _ObsRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        owner: "ObsHTTPServer" = self.server.owner  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        try:
            status, content_type, body = owner._respond(split.path, parse_qs(split.query))
        except Exception as exc:  # noqa: BLE001 — a broken endpoint must answer, not hang
            logger.exception("obs endpoint %s failed", split.path)
            status, content_type, body = (
                500, JSON_CONTENT_TYPE,
                json.dumps({"error": f"{type(exc).__name__}: {exc}"}).encode("utf-8"),
            )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — http.server API
        logger.debug("obs-http %s", format % args)


class ObsHTTPServer:
    """Threaded HTTP server exposing the metrics registry and tracer.

    >>> server = ObsHTTPServer(port=0).start()   # ephemeral port
    >>> urllib.request.urlopen(f"{server.url}/metrics").read()
    >>> server.stop()

    ``registry``/``tracer`` default to the process-wide instances *at request
    time*; pass explicit ones to export a private registry (tests).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not 0 <= int(port) <= 65535:
            raise ObservabilityError(f"port must be in [0, 65535], got {port}")
        self.host = host
        self._requested_port = int(port)
        self._pinned_registry = registry
        self._pinned_tracer = tracer
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._checks_lock = threading.Lock()
        self._health_checks: Dict[str, Callable[[], bool]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        return self._pinned_registry if self._pinned_registry is not None else get_registry()

    @property
    def tracer(self) -> Tracer:
        return self._pinned_tracer if self._pinned_tracer is not None else get_tracer()

    def add_health_check(self, name: str, check: Callable[[], bool]) -> "ObsHTTPServer":
        """Register a named liveness predicate polled by ``/healthz``.

        A check that returns falsy *or raises* marks the service unhealthy —
        a dead dependency must not take the health endpoint down with it.
        """
        if not callable(check):
            raise ObservabilityError(f"health check {name!r} must be callable")
        with self._checks_lock:
            self._health_checks[str(name)] = check
        return self

    def health(self) -> Tuple[bool, Dict[str, bool]]:
        """Evaluate every health check; ``(all_passed, per_check_results)``."""
        with self._checks_lock:
            checks = list(self._health_checks.items())
        results: Dict[str, bool] = {}
        for name, check in checks:
            try:
                results[name] = bool(check())
            except Exception:  # noqa: BLE001 — an unhealthy check is a result, not a crash
                results[name] = False
        return all(results.values()), results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ObsHTTPServer":
        if self._httpd is not None:
            return self
        try:
            httpd = ThreadingHTTPServer((self.host, self._requested_port), _ObsRequestHandler)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot bind obs endpoint to {self.host}:{self._requested_port}: {exc}"
            ) from exc
        httpd.owner = self  # type: ignore[attr-defined]
        httpd.daemon_threads = True
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="obs-http", daemon=True,
        )
        self._thread.start()
        logger.info("obs endpoint listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral assignment)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _respond(
        self, path: str, query: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes]:
        if path == "/metrics":
            return 200, PROMETHEUS_CONTENT_TYPE, self.registry.render_prometheus().encode("utf-8")
        if path == "/metrics.json":
            body = json.dumps(self.registry.snapshot(), sort_keys=True).encode("utf-8")
            return 200, JSON_CONTENT_TYPE, body
        if path == "/healthz":
            healthy, checks = self.health()
            body = json.dumps(
                {"status": "ok" if healthy else "unhealthy", "checks": checks, "pid": os.getpid()}
            ).encode("utf-8")
            return (200 if healthy else 503), JSON_CONTENT_TYPE, body
        if path == "/traces":
            trace_id = query.get("trace_id", [None])[0]
            payload = {
                "traceEvents": self.tracer.chrome_events(trace_id),
                "displayTimeUnit": "ms",
            }
            return 200, JSON_CONTENT_TYPE, json.dumps(payload).encode("utf-8")
        body = json.dumps(
            {"error": f"unknown path {path!r}",
             "endpoints": ["/metrics", "/metrics.json", "/healthz", "/traces"]}
        ).encode("utf-8")
        return 404, JSON_CONTENT_TYPE, body


# ----------------------------------------------------------------------
# Prometheus text-format parser (the scrape round-trip check)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape_label_value(value: str) -> str:
    # One left-to-right pass: \\ -> \, \" -> ", \n -> newline.  Sequential
    # str.replace calls would double-decode strings like '\\\\n'.
    return _ESCAPE_RE.sub(lambda match: {"n": "\n"}.get(match.group(1), match.group(1)), value)


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(body):
        match = _LABEL_RE.match(body, position)
        if match is None:
            raise ObservabilityError(f"malformed label body {body!r} at offset {position}")
        labels[match.group("name")] = _unescape_label_value(match.group("value"))
        position = match.end()
    return labels


def parse_prometheus_text(text: str) -> Dict[str, object]:
    """Strictly parse Prometheus text exposition (format 0.0.4).

    Returns ``{"types": {name: type}, "help": {name: text}, "samples":
    [(name, labels_dict, value), ...]}`` and raises
    :class:`~repro.exceptions.ObservabilityError` on any malformed line —
    this is the acceptance check a live ``/metrics`` scrape must round-trip
    through, so it refuses rather than guesses.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ObservabilityError(f"malformed TYPE line {line_number}: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ObservabilityError(f"malformed HELP line {line_number}: {line!r}")
            helps[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"malformed sample line {line_number}: {line!r}")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ObservabilityError(
                f"malformed sample value {raw_value!r} on line {line_number}"
            ) from exc
        labels = _parse_labels(match.group("labels") or "")
        samples.append((match.group("name"), labels, value))
    return {"types": types, "help": helps, "samples": samples}
