"""Unified observability: metrics registry, request tracing, profiling.

``repro.obs`` is the process-wide observability layer the rest of the stack
records into (see ``DESIGN.md`` → "Observability"):

* :mod:`repro.obs.metrics` — thread-safe ``Counter`` / ``Gauge`` /
  ``Histogram`` families with label sets, bounded-memory streaming quantiles,
  Prometheus text exposition and a JSON snapshot exporter;
* :mod:`repro.obs.tracing` — sampled span tracing with cross-thread trace-id
  propagation (one serving request = one trace across the batcher boundary)
  and Chrome trace-event export;
* :mod:`repro.obs.aggregate` — the cross-*process* layer: a JSON-safe
  registry snapshot/merge wire format (counters sum, gauges resolve per
  label set, histograms merge exactly with weighted reservoir subsampling)
  and the after-fork reset that gives forked children a fresh registry and
  tracer (installed at import, below);
* :mod:`repro.obs.exporter` — the wire surface: a stdlib-threaded HTTP
  server exposing ``/metrics`` (Prometheus), ``/metrics.json``, ``/healthz``
  and ``/traces``;
* :mod:`repro.obs.profiling` — opt-in per-op JIT replay timing and the
  training-step :class:`PhaseTimer`.

The consumers: :mod:`repro.serving.telemetry` backs its collector with
registry primitives, the micro-batcher and server emit request spans (and an
:class:`~repro.serving.server.InferenceServer` exposes the registry over HTTP
via ``ServerConfig(metrics_port=...)``), the JIT executor flushes per-op
timings, the trainers and the parallel engine time step phases, the parallel
engine's forked workers flush registry deltas and spans back to the parent at
step boundaries, and the experiments runner publishes stage costs.
Everything is bounded-memory and near-free when the opt-in layers are off —
the overhead budget is gated by ``benchmarks/test_observability_overhead.py``
(instrumented serving throughput must stay ≥ 0.95× uninstrumented, now with
the HTTP exporter attached and scraped).
"""

from .aggregate import (
    WIRE_VERSION,
    drain_worker_obs,
    install_fork_handlers,
    merge_snapshot,
    merge_worker_obs,
    snapshot_registry,
)
from .exporter import ObsHTTPServer, parse_prometheus_text
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    DEFAULT_RESERVOIR_SIZE,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    merge_reservoirs,
    set_registry,
)
from .profiling import (
    PhaseTimer,
    enable_op_profiling,
    enable_phase_timing,
    op_profiling_enabled,
    phase_timing_enabled,
    record_op_timings,
)
from .tracing import SpanRecord, Tracer, configure_tracing, get_tracer, set_tracer

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_RESERVOIR_SIZE",
    "get_registry",
    "set_registry",
    "merge_reservoirs",
    "WIRE_VERSION",
    "snapshot_registry",
    "merge_snapshot",
    "drain_worker_obs",
    "merge_worker_obs",
    "install_fork_handlers",
    "ObsHTTPServer",
    "parse_prometheus_text",
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "set_tracer",
    "configure_tracing",
    "PhaseTimer",
    "enable_op_profiling",
    "enable_phase_timing",
    "op_profiling_enabled",
    "phase_timing_enabled",
    "record_op_timings",
]

# Fork safety for the whole subsystem: from the moment repro.obs is imported,
# any forked child (the parallel engine's process backend, a user's own
# multiprocessing) starts with a fresh registry and tracer instead of a
# frozen, possibly lock-poisoned shadow copy of the parent's.  No-op on
# platforms without os.register_at_fork.
install_fork_handlers()
