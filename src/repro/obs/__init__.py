"""Unified observability: metrics registry, request tracing, profiling.

``repro.obs`` is the process-wide observability layer the rest of the stack
records into (see ``DESIGN.md`` → "Observability"):

* :mod:`repro.obs.metrics` — thread-safe ``Counter`` / ``Gauge`` /
  ``Histogram`` families with label sets, bounded-memory streaming quantiles,
  Prometheus text exposition and a JSON snapshot exporter;
* :mod:`repro.obs.tracing` — sampled span tracing with cross-thread trace-id
  propagation (one serving request = one trace across the batcher boundary)
  and Chrome trace-event export;
* :mod:`repro.obs.profiling` — opt-in per-op JIT replay timing and the
  training-step :class:`PhaseTimer`.

The consumers: :mod:`repro.serving.telemetry` backs its collector with
registry primitives, the micro-batcher and server emit request spans, the
JIT executor flushes per-op timings, the trainers and the parallel engine
time step phases, the parallel engine publishes worker liveness and the
experiments runner publishes stage costs.  Everything is bounded-memory and
near-free when the opt-in layers are off — the overhead budget is gated by
``benchmarks/test_observability_overhead.py`` (instrumented serving
throughput must stay ≥ 0.95× uninstrumented).
"""

from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    DEFAULT_RESERVOIR_SIZE,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiling import (
    PhaseTimer,
    enable_op_profiling,
    enable_phase_timing,
    op_profiling_enabled,
    phase_timing_enabled,
    record_op_timings,
)
from .tracing import SpanRecord, Tracer, configure_tracing, get_tracer

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_RESERVOIR_SIZE",
    "get_registry",
    "set_registry",
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "configure_tracing",
    "PhaseTimer",
    "enable_op_profiling",
    "enable_phase_timing",
    "op_profiling_enabled",
    "phase_timing_enabled",
    "record_op_timings",
]
