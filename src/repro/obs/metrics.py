"""Process-wide metrics registry: counters, gauges, histograms with labels.

The registry is the shared substrate every subsystem's telemetry lands on
(serving latencies, JIT op timings, parallel worker liveness, experiment
stage costs).  Design constraints, in order:

* **thread-safe** — the serving worker pool, the parallel trainer and the
  experiments thread dispatcher all record concurrently; every child metric
  owns one small lock and updates are plain ``+=`` under it, so a snapshot
  taken mid-traffic is internally consistent per metric;
* **bounded memory** — no metric stores per-event state.  A histogram keeps
  fixed bucket counts, running ``count``/``sum``/``min``/``max`` and a
  fixed-capacity uniform reservoir (Vitter's algorithm R with a
  deterministic per-child stream) for streaming quantile estimation:
  quantiles are *exact* while ``count <= reservoir_size`` and carry sampling
  error beyond (see :meth:`HistogramChild.quantile`);
* **two exporters** — Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`) and a JSON snapshot writable
  into ``$REPRO_BENCH_DIR`` (:meth:`MetricsRegistry.write_json_snapshot`;
  the file is *not* ``BENCH_``-prefixed so the benchmark-regression
  comparator never mistakes it for a bench report).

Metric *families* are registered by name; label sets select children
(``registry.counter("requests_total", labels=("route",)).labels(route="/p")``).
Re-registering a name with a different type or label schema raises
:class:`~repro.exceptions.ObservabilityError` — silent schema drift is how
two subsystems end up publishing incompatible series under one name.
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_RESERVOIR_SIZE",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "merge_reservoirs",
    "set_registry",
]

#: Default histogram buckets, tuned for millisecond-scale latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, float("inf"),
)

DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Reservoir capacity: quantiles are exact up to this many observations and
#: uniformly-sampled estimates beyond.  4096 float64 samples = 32 KiB per
#: histogram child, the whole memory story of a collector under any traffic.
DEFAULT_RESERVOIR_SIZE = 4096

TYPE_COUNTER = "counter"
TYPE_GAUGE = "gauge"
TYPE_HISTOGRAM = "histogram"

LabelValues = Tuple[Tuple[str, str], ...]


def _normalise_labels(labelnames: Sequence[str], labels: Dict[str, object]) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ObservabilityError(
            f"label set {sorted(labels)} does not match the registered "
            f"label names {sorted(labelnames)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise ObservabilityError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_:] (Prometheus exposition)"
        )
    return name


class CounterChild:
    """Monotonically increasing count for one label set."""

    __slots__ = ("_lock", "_value")
    _GUARDED_BY = {"_lock": ("_value",)}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def export(self) -> Dict[str, object]:
        return {"value": self.value}

    def dump(self) -> Dict[str, object]:
        """Mergeable wire state (see :mod:`repro.obs.aggregate`)."""
        return {"value": self.value}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Counters merge by summation: add another child's dumped total."""
        self.inc(float(state["value"]))


class GaugeChild:
    """Point-in-time value for one label set.

    A gauge either holds an explicitly :meth:`set` value or polls a callback
    installed with :meth:`set_function` (used for liveness: the value is read
    at snapshot time, so it is current even if nobody pushed an update).
    """

    __slots__ = ("_lock", "_value", "_fn")
    _GUARDED_BY = {"_lock": ("_value", "_fn")}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._fn = None
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Poll ``fn`` at read time instead of storing a pushed value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 — a dead callback must not break snapshots
            return float("nan")

    def reset(self) -> None:
        with self._lock:
            self._fn = None
            self._value = 0.0

    def export(self) -> Dict[str, object]:
        return {"value": self.value}

    def dump(self) -> Dict[str, object]:
        """Mergeable wire state; callback gauges resolve to their value here
        (a callable cannot cross a process boundary)."""
        return {"value": self.value}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Gauges resolve per label set: the incoming value wins.

        Distinct sources are expected to merge under distinct label sets
        (e.g. ``worker=<rank>``); merging two sources into *one* label set is
        last-write-wins, matching gauge point-in-time semantics.
        """
        self.set(float(state["value"]))


class HistogramChild:
    """Fixed-bucket histogram plus a bounded quantile reservoir."""

    __slots__ = (
        "_lock", "_bounds", "_bucket_counts", "_count", "_sum", "_min", "_max",
        "_reservoir", "_reservoir_size", "_rng", "_quantiles",
    )
    # _bounds/_reservoir_size/_quantiles are immutable after __init__ and
    # deliberately read lock-free by export().
    _GUARDED_BY = {
        "_lock": (
            "_count", "_sum", "_min", "_max", "_bucket_counts",
            "_reservoir", "_rng",
        )
    }

    def __init__(
        self,
        buckets: Sequence[float],
        quantiles: Sequence[float],
        reservoir_size: int,
        seed: int,
    ) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(buckets)
        self._bucket_counts = [0] * len(self._bounds)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._quantiles = tuple(quantiles)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._bucket_counts[bisect_left(self._bounds, value)] += 1
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                # Vitter's algorithm R: every observation ends up in the
                # reservoir with probability reservoir_size / count.
                slot = self._rng.randrange(self._count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def state_size(self) -> int:
        """Floats held by this child — constant once the reservoir fills."""
        with self._lock:
            return len(self._reservoir) + len(self._bucket_counts) + 4

    def samples(self) -> List[float]:
        """A consistent copy of the quantile reservoir."""
        with self._lock:
            return list(self._reservoir)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate.

        Exact while ``count <= reservoir_size`` (the reservoir holds every
        observation); beyond that the reservoir is a uniform sample, so the
        estimate carries the usual order-statistic sampling error
        (~``1/sqrt(reservoir_size)`` of the local density scale).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        samples = self.samples()
        if not samples:
            return 0.0
        import numpy as np

        return float(np.percentile(np.asarray(samples, dtype=float), 100.0 * q))

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * len(self._bounds)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf
            self._reservoir = []

    def export(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._bucket_counts)
            count, total = self._count, self._sum
            low = self._min if self._count else 0.0
            high = self._max if self._count else 0.0
        payload: Dict[str, object] = {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "buckets": {
                ("+Inf" if math.isinf(bound) else repr(bound)): n
                for bound, n in zip(self._bounds, counts)
            },
        }
        payload["quantiles"] = {f"p{100 * q:g}": self.quantile(q) for q in self._quantiles}
        return payload

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def dump(self) -> Dict[str, object]:
        """Mergeable wire state: exact running stats, per-bucket (non-
        cumulative) counts aligned to :attr:`bounds`, and the reservoir.

        ``min``/``max`` are ``None`` while empty (infinities are not
        JSON-safe); bucket bounds travel separately with the family schema.
        """
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "bucket_counts": list(self._bucket_counts),
                "reservoir": list(self._reservoir),
            }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Merge another child's dumped state into this one.

        Running stats and bucket counts merge *exactly* (sums of sums, elementwise
        bucket addition, min/max of extrema); the reservoirs merge by weighted
        subsampling (:func:`merge_reservoirs`), so the merged reservoir is a
        uniform sample of the union stream and quantile estimates keep their
        usual sampling error.  The caller is responsible for only merging
        children with identical bucket bounds (the registry schema check in
        :func:`repro.obs.aggregate.merge_snapshot`).
        """
        other_count = int(state["count"])
        counts = [int(n) for n in state["bucket_counts"]]
        if len(counts) != len(self._bounds):
            raise ObservabilityError(
                f"cannot merge a histogram with {len(counts)} buckets into one "
                f"with {len(self._bounds)}"
            )
        if other_count == 0:
            return
        with self._lock:
            self._reservoir = merge_reservoirs(
                self._reservoir,
                self._count,
                [float(value) for value in state["reservoir"]],
                other_count,
                self._reservoir_size,
                self._rng,
            )
            self._count += other_count
            self._sum += float(state["sum"])
            if state["min"] is not None:
                self._min = min(self._min, float(state["min"]))
            if state["max"] is not None:
                self._max = max(self._max, float(state["max"]))
            for index, n in enumerate(counts):
                self._bucket_counts[index] += n


def merge_reservoirs(
    samples_a: Sequence[float],
    count_a: int,
    samples_b: Sequence[float],
    count_b: int,
    size: int,
    rng: random.Random,
) -> List[float]:
    """Merge two uniform reservoirs into one uniform reservoir of ``size``.

    ``samples_x`` is a uniform sample of a stream of ``count_x`` observations
    (``count_x >= len(samples_x)``).  When everything fits, the merge is the
    exact concatenation (quantiles stay exact in the sub-capacity regime).
    Otherwise each output slot draws its source with probability proportional
    to the *remaining represented mass* — each element of reservoir ``x``
    stands for ``count_x / len(samples_x)`` stream observations — and removes
    a uniform element from that source, which makes every merged element a
    uniform draw from the union stream.
    """
    if len(samples_a) + len(samples_b) <= size:
        return list(samples_a) + list(samples_b)
    pool_a, pool_b = list(samples_a), list(samples_b)
    weight_a = count_a / len(pool_a) if pool_a else 0.0
    weight_b = count_b / len(pool_b) if pool_b else 0.0
    merged: List[float] = []
    while len(merged) < size and (pool_a or pool_b):
        mass_a = weight_a * len(pool_a)
        mass_b = weight_b * len(pool_b)
        take_a = bool(pool_a) and (
            not pool_b or rng.random() < mass_a / (mass_a + mass_b)
        )
        pool = pool_a if take_a else pool_b
        index = rng.randrange(len(pool))
        pool[index], pool[-1] = pool[-1], pool[index]
        merged.append(pool.pop())
    return merged


_CHILD_TYPES = {
    TYPE_COUNTER: CounterChild,
    TYPE_GAUGE: GaugeChild,
    TYPE_HISTOGRAM: HistogramChild,
}


class MetricFamily:
    """One named metric and its per-label-set children.

    Calling recording methods (``inc``/``set``/``observe``…) directly on the
    family operates on the *unlabelled* child, which keeps the common
    no-labels case one call shorter.
    """

    # name/labelnames/_child_kwargs are immutable after __init__; only the
    # child map mutates.
    _GUARDED_BY = {"_lock": ("_children",)}

    def __init__(
        self,
        name: str,
        description: str,
        metric_type: str,
        labelnames: Sequence[str],
        child_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = _validate_name(name)
        self.description = description
        self.type = metric_type
        self.labelnames = tuple(labelnames)
        self._child_kwargs = dict(child_kwargs or {})
        self._children: Dict[LabelValues, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object):
        """Get or create the child for one label set."""
        key = _normalise_labels(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.type == TYPE_HISTOGRAM:
                    # Distinct deterministic reservoir stream per child.
                    seed = hash((self.name, key)) & 0xFFFFFFFF
                    child = HistogramChild(seed=seed, **self._child_kwargs)
                else:
                    child = _CHILD_TYPES[self.type]()
                self._children[key] = child
            return child

    def _default_child(self):
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "select a child with .labels(...) first"
            )
        return self.labels()

    # Unlabelled convenience surface -----------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        self._default_child().set_function(fn)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    # Introspection ----------------------------------------------------
    @property
    def child_kwargs(self) -> Dict[str, object]:
        """Construction schema of this family's children (histogram buckets,
        quantiles, reservoir size) — part of the snapshot wire format."""
        return dict(self._child_kwargs)

    def children(self) -> List[Tuple[LabelValues, object]]:
        with self._lock:
            return list(self._children.items())

    def reset(self) -> None:
        for _, child in self.children():
            child.reset()

    def export(self) -> Dict[str, object]:
        return {
            "type": self.type,
            "description": self.description,
            "values": [
                {"labels": dict(key), **child.export()}
                for key, child in sorted(self.children(), key=lambda item: item[0])
            ],
        }


class MetricsRegistry:
    """Thread-safe, process-wide collection of metric families."""

    _GUARDED_BY = {"_lock": ("_families",)}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration (get-or-create; schema conflicts are errors)
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        description: str,
        metric_type: str,
        labelnames: Sequence[str],
        child_kwargs: Optional[Dict[str, object]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.type != metric_type or family.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} is already registered as a "
                        f"{family.type} with labels {family.labelnames}; "
                        f"cannot re-register as a {metric_type} with labels "
                        f"{tuple(labelnames)}"
                    )
                return family
            family = MetricFamily(name, description, metric_type, labelnames, child_kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, description: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, description, TYPE_COUNTER, labels)

    def gauge(
        self, name: str, description: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, description, TYPE_GAUGE, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> MetricFamily:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or not math.isinf(bounds[-1]):
            bounds = bounds + (float("inf"),)
        if reservoir_size < 1:
            raise ObservabilityError("reservoir_size must be >= 1")
        return self._register(
            name,
            description,
            TYPE_HISTOGRAM,
            labels,
            child_kwargs={
                "buckets": bounds,
                "quantiles": tuple(quantiles),
                "reservoir_size": int(reservoir_size),
            },
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Zero every child (counts, reservoirs, gauge callbacks)."""
        for family in self.families():
            family.reset()

    def clear(self) -> None:
        """Drop every family (tests building a registry from scratch)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view of every family and child."""
        return {
            "created_unix": time.time(),
            "metrics": {family.name: family.export() for family in self.families()},
        }

    def write_json_snapshot(
        self, directory: Optional[Path] = None, name: str = "OBS_metrics.json"
    ) -> Path:
        """Write the JSON snapshot into ``directory`` (default
        ``$REPRO_BENCH_DIR`` / ``bench_out``).

        Deliberately not ``BENCH_``-prefixed: the benchmark comparator globs
        ``BENCH_*.json`` and would reject a metrics snapshot as malformed.
        """
        if directory is None:
            directory = Path(os.environ.get("REPRO_BENCH_DIR", "bench_out"))
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.snapshot(), sort_keys=True, indent=2), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.description:
                lines.append(f"# HELP {family.name} {family.description}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for key, child in sorted(family.children(), key=lambda item: item[0]):
                if family.type == TYPE_HISTOGRAM:
                    lines.extend(_render_histogram(family.name, key, child))
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} {_render_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(key: LabelValues, extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in pairs
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _render_histogram(name: str, key: LabelValues, child: HistogramChild) -> List[str]:
    exported = child.export()
    lines = []
    cumulative = 0
    for bound, count in exported["buckets"].items():
        cumulative += count
        lines.append(f"{name}_bucket{_render_labels(key, [('le', bound)])} {cumulative}")
    lines.append(f"{name}_sum{_render_labels(key)} {_render_value(exported['sum'])}")
    lines.append(f"{name}_count{_render_labels(key)} {exported['count']}")
    return lines


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into by default."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError("set_registry expects a MetricsRegistry")
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous


def _fresh_registry_after_fork() -> None:
    """Replace the inherited registry in a freshly forked child.

    Called from the ``os.register_at_fork`` handler installed by
    :func:`repro.obs.aggregate.install_fork_handlers`.  The inherited
    registry is a frozen shadow copy of the parent's — recording into it is
    silently discarded at exit, and its per-child locks may have been held by
    parent threads that do not exist in the child.  The child starts from an
    empty registry with fresh locks, so everything it records is a clean
    delta that can be flushed to and merged by the parent.  No locking here:
    the child is single-threaded at this point, and taking the inherited
    ``_default_lock`` could deadlock if a parent thread held it at fork time.
    """
    global _default_registry, _default_lock
    _default_lock = threading.Lock()
    _default_registry = MetricsRegistry()
