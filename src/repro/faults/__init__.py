"""repro.faults — deterministic, seeded fault injection for the whole stack.

The robustness harness behind the chaos suite (``tests/faults/``,
``tests/serving/test_gateway_chaos.py``) and the recovery benchmark
(``BENCH_fault_recovery.json``).  Fault-tolerant code declares named *sites*
on its failure-prone paths::

    from repro import faults
    faults.site("parallel.worker.step", rank=rank, step=step_index)

and a :class:`FaultPlan` — armed via :func:`arm`, the :func:`injected`
context manager, or the ``REPRO_FAULTS`` environment variable — decides
deterministically which hits inject latency, raise
:class:`~repro.exceptions.FaultInjectedError`, or ``SIGKILL`` the worker
process.  Disarmed sites are near-zero-cost no-ops, so the sites stay in
production code permanently (the observability-overhead benchmark gates
this).  The site catalog and the full ``REPRO_FAULTS`` grammar live in
``docs/FAULTS.md``.
"""

from __future__ import annotations

from ..exceptions import FaultError, FaultInjectedError
from .injector import (
    active_plan,
    arm,
    arm_from_env,
    asite,
    disarm,
    injected,
    is_armed,
    site,
)
from .plan import (
    KIND_ERROR,
    KIND_KILL,
    KIND_LATENCY,
    KINDS,
    FaultPlan,
    FaultRule,
    parse_fault_plan,
)

__all__ = [
    "FaultError",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRule",
    "KINDS",
    "KIND_ERROR",
    "KIND_KILL",
    "KIND_LATENCY",
    "active_plan",
    "arm",
    "arm_from_env",
    "asite",
    "disarm",
    "injected",
    "is_armed",
    "parse_fault_plan",
    "site",
]

# Arm from the environment at import: REPRO_FAULTS reaches every entry point
# (CLI, tests, benchmarks, the CI chaos leg) without code changes.
arm_from_env()
