"""Fault plans: which sites fail, how, and on which deterministic schedule.

A :class:`FaultPlan` is a set of :class:`FaultRule`\\ s, each binding one
named fault site (``"parallel.worker.step"``, ``"serving.forward"``, …) to a
fault *kind* and a seeded schedule.  Plans are deterministic by construction:
probability draws come from per-rule generators seeded from
``(plan seed, rule index)``, and the counting schedules (``every``/``times``/
``after``) are plain counters — so the same plan against the same workload
injects the same faults, which is what makes chaos tests and the recovery
benchmark reproducible.

Kinds
-----
``error``
    Raise :class:`~repro.exceptions.FaultInjectedError` at the site.
``latency``
    Sleep ``ms`` milliseconds at the site (``await asyncio.sleep`` at async
    sites, so the event loop is never blocked).
``kill``
    ``SIGKILL`` the *current process* at the site — the worker-death fault.
    In the process that armed the plan the kill downgrades to an ``error``
    fault instead, so arming a kill schedule can never take out the test or
    training driver itself; only forked workers (whose pid differs from the
    arming pid) actually die.

Schedule parameters (all composable on one rule)
------------------------------------------------
``p``      probability per matched hit (default 1.0), drawn from the rule's
           seeded generator;
``every``  fire on every Nth eligible hit (default: every one);
``times``  stop after N injections (``times=1`` is a one-shot);
``after``  skip the first N matched hits;
``ms``     injected latency in milliseconds (``latency`` rules);
``seed``   per-rule seed override (default derives from the plan seed).

Any other ``key=value`` parameter is a *match constraint*: the rule only
applies when the site call's context kwarg of that name stringifies to the
value (``faults.site("parallel.worker.step", rank=1, step=3)`` matches
``rank=1,step=3``).  Counters are per-process state: forked workers inherit
a copy-on-write snapshot and count their own hits from there.

``REPRO_FAULTS`` grammar
------------------------
``site:kind[:param=value[,param=value...]][;site:kind...]``, e.g.::

    REPRO_FAULTS="serving.forward:error:times=2;serving.gateway.read:latency:ms=5,p=0.1"
    REPRO_FAULTS="parallel.worker.step:kill:rank=1,step=3,times=1"

``REPRO_FAULTS_SEED`` sets the plan seed (default 0).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import FaultError

__all__ = [
    "FaultPlan",
    "FaultRule",
    "KIND_ERROR",
    "KIND_KILL",
    "KIND_LATENCY",
    "KINDS",
    "parse_fault_plan",
]

KIND_ERROR = "error"
KIND_LATENCY = "latency"
KIND_KILL = "kill"
KINDS = (KIND_ERROR, KIND_LATENCY, KIND_KILL)

#: Recognised schedule parameters of the env grammar; anything else is a
#: match constraint on the site call's context kwargs.
_SCHEDULE_PARAMS = ("p", "every", "times", "after", "ms", "seed")


@dataclass(frozen=True)
class FaultRule:
    """One site → fault binding with its deterministic schedule."""

    site: str
    kind: str
    probability: float = 1.0
    every: int = 0
    times: int = 0
    after: int = 0
    latency_ms: float = 0.0
    match: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    seed: Optional[int] = None

    def validate(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise FaultError(f"fault rule needs a non-empty site name, got {self.site!r}")
        if self.kind not in KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"fault probability must be in [0, 1], got {self.probability}")
        for name in ("every", "times", "after"):
            if int(getattr(self, name)) < 0:
                raise FaultError(f"fault {name} must be >= 0, got {getattr(self, name)}")
        if self.latency_ms < 0:
            raise FaultError(f"fault latency must be >= 0 ms, got {self.latency_ms}")
        if self.kind == KIND_LATENCY and self.latency_ms == 0:
            raise FaultError(f"latency rule on {self.site!r} needs ms=<milliseconds>")

    def describe(self) -> str:
        """The rule in (re-parseable) ``REPRO_FAULTS`` grammar."""
        params = []
        if self.probability < 1.0:
            params.append(f"p={self.probability:g}")
        for name in ("every", "times", "after"):
            value = getattr(self, name)
            if value:
                params.append(f"{name}={value}")
        if self.latency_ms:
            params.append(f"ms={self.latency_ms:g}")
        if self.seed is not None:
            params.append(f"seed={self.seed}")
        params.extend(f"{key}={value}" for key, value in self.match)
        head = f"{self.site}:{self.kind}"
        return f"{head}:{','.join(params)}" if params else head


def _matches(match: Tuple[Tuple[str, str], ...], context: Mapping[str, Any]) -> bool:
    for key, expected in match:
        if key not in context or str(context[key]) != expected:
            return False
    return True


class FaultPlan:
    """An armed set of fault rules with per-rule deterministic runtime state.

    The plan carries its own counters and seeded generators; arming the same
    plan object twice resumes where it left off, while building a fresh plan
    from the same spec replays the identical injection sequence.  State is
    guarded by ``_lock`` so thread-backend workers and serving threads can
    share one armed plan.
    """

    _GUARDED_BY = {"_lock": ("_hits", "_injections", "_rngs")}

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        if not self.rules:
            raise FaultError("a fault plan needs at least one rule")
        self.seed = int(seed)
        for rule in self.rules:
            rule.validate()
        self._by_site: Dict[str, List[int]] = {}
        for index, rule in enumerate(self.rules):
            self._by_site.setdefault(rule.site, []).append(index)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.rules)
        self._injections = [0] * len(self.rules)
        self._rngs = [
            np.random.default_rng(
                np.random.SeedSequence(
                    [self.seed, index] if rule.seed is None else [int(rule.seed)]
                )
            )
            for index, rule in enumerate(self.rules)
        ]
        # Stamped by faults.arm(): kill rules in this pid downgrade to error.
        self.armed_pid: Optional[int] = None

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(self._by_site)

    def fire(self, site: str, context: Mapping[str, Any]) -> Optional[FaultRule]:
        """The rule injecting at this hit of ``site``, or ``None``.

        First matching rule wins per hit; every matching rule's hit counter
        advances whether or not it fires, so ``every``/``after`` schedules on
        one site stay independent of each other.
        """
        indexes = self._by_site.get(site)
        if not indexes:
            return None
        fired: Optional[FaultRule] = None
        with self._lock:
            for index in indexes:
                rule = self.rules[index]
                if rule.match and not _matches(rule.match, context):
                    continue
                hit = self._hits[index]
                self._hits[index] = hit + 1
                if fired is not None:
                    continue
                if rule.times and self._injections[index] >= rule.times:
                    continue
                if hit < rule.after:
                    continue
                if rule.every > 1 and (hit - rule.after) % rule.every != rule.every - 1:
                    continue
                if rule.probability < 1.0 and self._rngs[index].random() >= rule.probability:
                    continue
                self._injections[index] += 1
                fired = rule
        return fired

    def stats(self) -> List[Dict[str, Union[str, int]]]:
        """Per-rule hit/injection counters (test and debugging introspection)."""
        with self._lock:
            return [
                {
                    "site": rule.site,
                    "kind": rule.kind,
                    "hits": self._hits[index],
                    "injections": self._injections[index],
                }
                for index, rule in enumerate(self.rules)
            ]

    def injected(self, site: Optional[str] = None) -> int:
        """Total injections so far (optionally restricted to one site)."""
        with self._lock:
            return sum(
                count
                for rule, count in zip(self.rules, self._injections)
                if site is None or rule.site == site
            )

    def describe(self) -> str:
        return "; ".join(rule.describe() for rule in self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r}, seed={self.seed})"


def _parse_rule(part: str) -> FaultRule:
    fields = part.split(":", 2)
    if len(fields) < 2 or not fields[0].strip() or not fields[1].strip():
        raise FaultError(
            f"bad fault rule {part!r}: expected site:kind[:param=value,...]"
        )
    site, kind = fields[0].strip(), fields[1].strip().lower()
    kwargs: Dict[str, Any] = {"site": site, "kind": kind}
    match: List[Tuple[str, str]] = []
    if len(fields) == 3:
        for pair in fields[2].split(","):
            key, sep, value = pair.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise FaultError(f"bad fault parameter {pair!r} in rule {part!r}")
            try:
                if key == "p":
                    kwargs["probability"] = float(value)
                elif key in ("every", "times", "after"):
                    kwargs[key] = int(value)
                elif key == "ms":
                    kwargs["latency_ms"] = float(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                else:
                    match.append((key, value))
            except ValueError:
                raise FaultError(
                    f"fault parameter {key}={value!r} in rule {part!r} is not numeric"
                ) from None
    rule = FaultRule(match=tuple(match), **kwargs)
    rule.validate()
    return rule


def parse_fault_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from the ``REPRO_FAULTS`` grammar."""
    if not isinstance(spec, str) or not spec.strip():
        raise FaultError("empty fault plan spec")
    rules = [_parse_rule(part.strip()) for part in spec.split(";") if part.strip()]
    return FaultPlan(rules, seed=seed)
