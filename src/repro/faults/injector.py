"""The site primitive: near-zero-cost when disarmed, deterministic when armed.

``site(name, **context)`` is the only thing fault-tolerant code sprinkles on
its paths.  Disarmed (the default, and the only production state) it is one
module-global load and a ``None`` check — cheap enough for serving and
training hot paths, which is what keeps the observability-overhead gate
honest with the faults module imported.  Armed, it consults the active
:class:`~repro.faults.plan.FaultPlan` and applies whatever fault fires:
sleep, raise :class:`~repro.exceptions.FaultInjectedError`, or ``SIGKILL``
the current process.

``asite`` is the coroutine-safe twin for asyncio code (the gateway): injected
latency awaits ``asyncio.sleep`` so the event loop never blocks — the same
invariant REP103 enforces on the rest of :mod:`repro.serving`.

Fork semantics
--------------
The armed plan is plain module state, so forked workers inherit a snapshot
of it (rules *and* counters) and count their own hits from there.  ``kill``
rules only deliver a real ``SIGKILL`` when ``os.getpid()`` differs from the
pid that armed the plan; in the arming process they downgrade to an
``error`` fault, so a kill schedule can never take out the driver process
that armed it.  The parallel engine respawns workers with faults disarmed
(`disarm()` runs in the fresh fork), so a deterministic chunk replay cannot
re-trigger the fault that killed its predecessor.

Every injection is counted in ``faults_injected_total{site,kind}`` in the
process metrics registry (looked up at injection time, so post-fork registry
resets are respected).
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Union

from ..exceptions import FaultInjectedError
from ..logging_utils import get_logger
from .plan import KIND_ERROR, KIND_LATENCY, FaultPlan, FaultRule, parse_fault_plan

logger = get_logger(__name__)

__all__ = [
    "active_plan",
    "arm",
    "arm_from_env",
    "asite",
    "disarm",
    "injected",
    "is_armed",
    "site",
]

#: The armed plan; ``None`` (disarmed) keeps every site a no-op.
_plan: Optional[FaultPlan] = None
_arm_lock = threading.Lock()


def arm(plan: Union[FaultPlan, str], seed: int = 0) -> FaultPlan:
    """Arm ``plan`` (a :class:`FaultPlan` or ``REPRO_FAULTS`` spec string)."""
    global _plan
    if isinstance(plan, str):
        plan = parse_fault_plan(plan, seed=seed)
    with _arm_lock:
        plan.armed_pid = os.getpid()
        _plan = plan
    logger.warning("fault injection armed: %s", plan.describe())
    return plan


def disarm() -> Optional[FaultPlan]:
    """Disarm fault injection; returns the previously armed plan, if any."""
    global _plan
    with _arm_lock:
        previous, _plan = _plan, None
    if previous is not None:
        logger.info("fault injection disarmed")
    return previous


def is_armed() -> bool:
    return _plan is not None


def active_plan() -> Optional[FaultPlan]:
    return _plan


@contextmanager
def injected(plan: Union[FaultPlan, str], seed: int = 0) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (tests), restoring
    whatever was armed before on exit."""
    global _plan
    previous = _plan
    armed = arm(plan, seed=seed)
    try:
        yield armed
    finally:
        with _arm_lock:
            _plan = previous


def arm_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Arm from ``REPRO_FAULTS`` (+ ``REPRO_FAULTS_SEED``) when set.

    Called once at :mod:`repro.faults` import, so exporting the variable arms
    every entry point (tests, benchmarks, the CI chaos leg) without code
    changes.  A malformed spec raises :class:`~repro.exceptions.FaultError`
    at import — loud, because a typo that silently disarmed the chaos suite
    would pass CI while testing nothing.
    """
    environ = os.environ if environ is None else environ
    spec = str(environ.get("REPRO_FAULTS", "")).strip()
    if not spec:
        return None
    seed_text = str(environ.get("REPRO_FAULTS_SEED", "")).strip()
    seed = int(seed_text) if seed_text else 0
    return arm(parse_fault_plan(spec, seed=seed))


def _count_injection(name: str, kind: str) -> None:
    # Lazy imports on the (rare) injection path: the faults module must be
    # importable before repro.obs during partial-package initialisation, and
    # the registry must be re-looked-up after fork resets.
    from ..obs.metrics import get_registry

    get_registry().counter(
        "faults_injected_total",
        "Faults injected by repro.faults, by site and kind",
        labels=("site", "kind"),
    ).labels(site=name, kind=kind).inc()


def _apply(plan: FaultPlan, rule: FaultRule, name: str) -> Optional[FaultRule]:
    """Count and apply a fired rule; returns it for latency handling upstream.

    ``error`` raises here; ``kill`` never returns (or raises, downgraded);
    ``latency`` is returned to the caller so sync and async sites can sleep
    in their own way.
    """
    _count_injection(name, rule.kind)
    if rule.kind == KIND_LATENCY:
        logger.debug("fault injected at %s: +%gms latency", name, rule.latency_ms)
        return rule
    if rule.kind == KIND_ERROR:
        logger.warning("fault injected at %s: error", name)
        raise FaultInjectedError(f"injected fault at site {name!r}")
    # kill
    if plan.armed_pid is not None and os.getpid() == plan.armed_pid:
        logger.warning(
            "fault injected at %s: kill downgraded to error in the arming process "
            "(pid %d)", name, os.getpid(),
        )
        raise FaultInjectedError(
            f"injected kill at site {name!r} (downgraded to an exception: "
            "this process armed the plan)"
        )
    logger.warning("fault injected at %s: SIGKILL pid %d", name, os.getpid())
    os.kill(os.getpid(), signal.SIGKILL)
    return None  # pragma: no cover — unreachable past SIGKILL


def site(name: str, **context: object) -> None:
    """Hit the named fault site; a no-op unless an armed rule fires here."""
    plan = _plan
    if plan is None:
        return
    rule = plan.fire(name, context)
    if rule is None:
        return
    if _apply(plan, rule, name) is not None:
        time.sleep(rule.latency_ms / 1000.0)


async def asite(name: str, **context: object) -> None:
    """`site` for coroutines: injected latency awaits instead of blocking."""
    plan = _plan
    if plan is None:
        return
    rule = plan.fire(name, context)
    if rule is None:
        return
    if _apply(plan, rule, name) is not None:
        await asyncio.sleep(rule.latency_ms / 1000.0)
