"""Training loops: masked pre-training, downstream fine-tuning, metrics."""

from .finetune import FinetuneConfig, FinetuneResult, Finetuner, evaluate_model, finetune_classifier
from .history import EpochRecord, TrainingHistory
from .metrics import (
    ClassificationMetrics,
    accuracy,
    confusion_matrix,
    evaluate_predictions,
    macro_f1,
    precision_recall_per_class,
    relative_metric,
)
from .pretrain import (
    DEFAULT_WEIGHTS,
    PretrainConfig,
    PretrainResult,
    Pretrainer,
    normalize_weights,
    pretrain_backbone,
)
from .trainer import SupervisedTrainer, TrainerConfig

__all__ = [
    "accuracy",
    "macro_f1",
    "confusion_matrix",
    "precision_recall_per_class",
    "evaluate_predictions",
    "relative_metric",
    "ClassificationMetrics",
    "EpochRecord",
    "TrainingHistory",
    "PretrainConfig",
    "PretrainResult",
    "Pretrainer",
    "pretrain_backbone",
    "normalize_weights",
    "DEFAULT_WEIGHTS",
    "FinetuneConfig",
    "FinetuneResult",
    "Finetuner",
    "finetune_classifier",
    "evaluate_model",
    "SupervisedTrainer",
    "TrainerConfig",
]
