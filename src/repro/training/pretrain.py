"""Masked multi-level pre-training of the Saga backbone (paper Section V-A).

Each pre-training step:

1. draws a mini-batch of unlabelled windows;
2. produces one masked copy per active semantic level (MM module);
3. reconstructs every masked copy with the shared backbone + decoder;
4. computes the per-level masked-MSE losses and combines them with the
   task weights ``w = {w_se, w_po, w_sp, w_pe}`` (Eq. 7);
5. takes an Adam step on the combined loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import ConfigurationError, TrainingError
from ..logging_utils import get_logger
from ..masking.multi import MASK_LEVELS, MultiLevelMasker, MultiLevelMaskingConfig
from ..models.backbone import BackboneConfig
from ..models.composite import MaskedReconstructionModel, build_pretraining_model
from ..nn import Adam, WeightedReconstructionLoss, clip_grad_norm
from .history import EpochRecord, TrainingHistory
from .trainer import validate_parallel_fields

logger = get_logger(__name__)

DEFAULT_WEIGHTS: Dict[str, float] = {level: 0.25 for level in MASK_LEVELS}
"""Uniform default weights over the four pre-training tasks."""


def normalize_weights(weights: Mapping[str, float], levels=MASK_LEVELS) -> Dict[str, float]:
    """Clip to non-negative and renormalise so active weights sum to one.

    The LWS search operates on the weight simplex; normalising here makes the
    loss scale comparable across searched configurations.
    """
    clipped = {level: max(0.0, float(weights.get(level, 0.0))) for level in levels}
    total = sum(clipped.values())
    if total <= 0:
        raise ConfigurationError("at least one pre-training weight must be positive")
    return {level: value / total for level, value in clipped.items()}


@dataclass
class PretrainConfig:
    """Hyper-parameters of backbone pre-training."""

    epochs: int = 50
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    masking: MultiLevelMaskingConfig = field(default_factory=MultiLevelMaskingConfig)
    log_every: int = 10
    seed: int = 0
    num_workers: int = 0
    parallel_backend: str = "thread"
    prefetch_batches: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        validate_parallel_fields(self)


@dataclass
class PretrainResult:
    """Outcome of one pre-training run."""

    model: MaskedReconstructionModel
    history: TrainingHistory
    weights: Dict[str, float]
    per_level_losses: Dict[str, float]


class Pretrainer:
    """Run weighted multi-level masked pre-training on unlabelled windows."""

    def __init__(
        self,
        config: Optional[PretrainConfig] = None,
        backbone_config: Optional[BackboneConfig] = None,
    ) -> None:
        self.config = config if config is not None else PretrainConfig()
        self.backbone_config = backbone_config

    def pretrain(
        self,
        dataset: IMUDataset,
        weights: Optional[Mapping[str, float]] = None,
        model: Optional[MaskedReconstructionModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> PretrainResult:
        """Pre-train a backbone on the (unlabelled) windows of ``dataset``.

        Parameters
        ----------
        dataset:
            Source of unlabelled windows (labels, if any, are ignored).
        weights:
            Pre-training task weights; defaults to uniform.  Only the levels
            active in the masking configuration receive gradient signal.
        model:
            Optional existing model to continue training; a fresh model is
            created when omitted.
        rng:
            Generator for masking, shuffling and (when ``model`` is None)
            weight initialisation.
        """
        if len(dataset) == 0:
            raise TrainingError("cannot pre-train on an empty dataset")
        cfg = self.config
        generator = rng if rng is not None else np.random.default_rng(cfg.seed)

        backbone_config = self.backbone_config
        if backbone_config is None:
            backbone_config = BackboneConfig(
                input_channels=dataset.num_channels,
                window_length=dataset.window_length,
            )
        if model is None:
            model = build_pretraining_model(backbone_config, rng=generator)

        masker = MultiLevelMasker(cfg.masking)
        active_levels = masker.levels
        task_weights = normalize_weights(
            weights if weights is not None else DEFAULT_WEIGHTS, levels=active_levels
        )

        loss_fn = WeightedReconstructionLoss(level_names=active_levels)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        loader = DataLoader(
            dataset, batch_size=cfg.batch_size, shuffle=True, rng=generator
        )
        if cfg.prefetch_batches:
            from ..parallel.prefetch import PrefetchDataLoader

            loader = PrefetchDataLoader(loader, depth=cfg.prefetch_batches)

        from ..nn.tensor import Tensor  # local import to avoid cycle at module load

        def masked_reconstruction_loss(replica, batch, step_rng):
            """Forward one (sub-)batch through every masking level on ``replica``.

            Returns the weighted total loss plus the per-level losses as
            auxiliary metrics; used directly by the single-process loop and as
            the worker step function of the data-parallel engine.
            """
            masked_by_level = masker.mask_all_levels(batch.windows, step_rng)
            reconstructions = replica.reconstruct_all_levels(
                {level: result.masked for level, result in masked_by_level.items()}
            )
            losses = loss_fn.compute(
                reconstructions,
                Tensor(batch.windows),
                {level: result.mask for level, result in masked_by_level.items()},
                task_weights,
            )
            aux = {level: float(losses[level].data) for level in active_levels}
            return losses["total"], aux

        history = TrainingHistory()
        last_per_level: Dict[str, float] = {}
        # train() must precede engine.start(): replicas inherit the master's
        # train/eval mode at clone/fork time and broadcast() only syncs
        # parameters, so a model that was eval()ed by a previous run would
        # otherwise pre-train with dropout disabled in every worker.
        model.train()
        engine = None
        if cfg.num_workers > 0:
            from ..parallel.engine import DataParallelEngine

            engine = DataParallelEngine(
                model,
                masked_reconstruction_loss,
                num_workers=cfg.num_workers,
                backend=cfg.parallel_backend,
                seed=cfg.seed,
            )
            engine.start()
        try:
            for epoch in range(cfg.epochs):
                epoch_loss = 0.0
                per_level_sums = {level: 0.0 for level in active_levels}
                batches = 0
                for batch in loader:
                    if engine is not None:
                        loss_value, aux = engine.train_step(
                            batch, optimizer, grad_clip=cfg.grad_clip
                        )
                    else:
                        total, aux = masked_reconstruction_loss(model, batch, generator)
                        optimizer.zero_grad()
                        total.backward()
                        if cfg.grad_clip > 0:
                            clip_grad_norm(model.parameters(), cfg.grad_clip)
                        optimizer.step()
                        loss_value = float(total.data)

                    epoch_loss += loss_value
                    for level in active_levels:
                        per_level_sums[level] += aux.get(level, 0.0)
                    batches += 1

                mean_loss = epoch_loss / max(batches, 1)
                last_per_level = {
                    level: value / max(batches, 1) for level, value in per_level_sums.items()
                }
                history.append(
                    EpochRecord(epoch=epoch, train_loss=mean_loss, metrics=dict(last_per_level))
                )
                if cfg.log_every and epoch % cfg.log_every == 0:
                    logger.info("pretrain epoch %d loss %.5f", epoch, mean_loss)
        finally:
            if engine is not None:
                engine.close()

        model.eval()
        return PretrainResult(
            model=model,
            history=history,
            weights=dict(task_weights),
            per_level_losses=last_per_level,
        )


def pretrain_backbone(
    dataset: IMUDataset,
    weights: Optional[Mapping[str, float]] = None,
    config: Optional[PretrainConfig] = None,
    backbone_config: Optional[BackboneConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> PretrainResult:
    """Functional convenience wrapper around :class:`Pretrainer`."""
    return Pretrainer(config, backbone_config).pretrain(dataset, weights=weights, rng=rng)
