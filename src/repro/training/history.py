"""Training history: per-epoch records of losses and metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import TrainingError


@dataclass
class EpochRecord:
    """Quantities logged at the end of one epoch."""

    epoch: int
    train_loss: float
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Chronological list of :class:`EpochRecord` objects with helpers."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def losses(self) -> List[float]:
        """Per-epoch training losses."""
        return [record.train_loss for record in self.records]

    def metric(self, name: str) -> List[float]:
        """Per-epoch values of the metric ``name`` (epochs missing it are skipped)."""
        return [record.metrics[name] for record in self.records if name in record.metrics]

    def best(self, name: str, maximize: bool = True) -> Optional[EpochRecord]:
        """Record with the best value of metric ``name`` (None when never logged)."""
        candidates = [record for record in self.records if name in record.metrics]
        if not candidates:
            return None
        key = lambda record: record.metrics[name]  # noqa: E731
        return max(candidates, key=key) if maximize else min(candidates, key=key)

    def final_loss(self) -> float:
        if not self.records:
            raise TrainingError("history is empty")
        return self.records[-1].train_loss

    def improved(self, window: int = 5, tolerance: float = 1e-4) -> bool:
        """True if the loss improved by more than ``tolerance`` over the last ``window`` epochs."""
        losses = self.losses()
        if len(losses) <= window:
            return True
        return (min(losses[:-window]) - min(losses[-window:])) > tolerance
