"""Downstream fine-tuning of a pre-trained backbone with a GRU classifier.

Implements paper Section V-B: the backbone and the classifier are trained
end-to-end with cross-entropy (Eq. 8) on the small labelled subset; all
parameters remain trainable.  The resulting validation accuracy is the
performance signal ``p_n`` consumed by the LWS weight search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import ConfigurationError, TrainingError
from ..logging_utils import get_logger
from ..models.backbone import SagaBackbone
from ..models.composite import ClassificationModel, build_classification_model
from ..nn import Adam, CrossEntropyLoss, clip_grad_norm, no_grad
from .history import EpochRecord, TrainingHistory
from .metrics import ClassificationMetrics, evaluate_predictions
from .trainer import validate_parallel_fields

logger = get_logger(__name__)


@dataclass
class FinetuneConfig:
    """Hyper-parameters of downstream fine-tuning."""

    epochs: int = 50
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    classifier_hidden_dim: int = 32
    freeze_backbone: bool = False
    log_every: int = 10
    seed: int = 0
    num_workers: int = 0
    parallel_backend: str = "thread"
    prefetch_batches: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        validate_parallel_fields(self)


@dataclass
class FinetuneResult:
    """Outcome of one fine-tuning run."""

    model: ClassificationModel
    history: TrainingHistory
    validation_metrics: Optional[ClassificationMetrics]
    task: str


def evaluate_model(model: ClassificationModel, dataset: IMUDataset, task: str,
                   batch_size: int = 128) -> ClassificationMetrics:
    """Evaluate a classification model on every window of ``dataset``."""
    if len(dataset) == 0:
        raise TrainingError("cannot evaluate on an empty dataset")
    num_classes = dataset.num_classes(task)
    labels = dataset.task_labels(task)
    predictions = np.empty(len(dataset), dtype=np.int64)
    loader = DataLoader(dataset, batch_size=batch_size, task=task, shuffle=False)
    with no_grad():
        for batch in loader:
            predictions[batch.indices] = model.predict(batch.windows)
    return evaluate_predictions(predictions, labels, num_classes)


class Finetuner:
    """Fine-tune a backbone + GRU classifier on a labelled dataset."""

    def __init__(self, config: Optional[FinetuneConfig] = None) -> None:
        self.config = config if config is not None else FinetuneConfig()

    def finetune(
        self,
        backbone: SagaBackbone,
        train_dataset: IMUDataset,
        task: str,
        validation_dataset: Optional[IMUDataset] = None,
        num_classes: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> FinetuneResult:
        """Train the classifier (and backbone) on ``train_dataset`` for ``task``."""
        if len(train_dataset) == 0:
            raise TrainingError("cannot fine-tune on an empty dataset")
        cfg = self.config
        generator = rng if rng is not None else np.random.default_rng(cfg.seed)
        if num_classes is None:
            num_classes = train_dataset.num_classes(task)

        model = build_classification_model(
            backbone, num_classes, classifier_hidden_dim=cfg.classifier_hidden_dim, rng=generator
        )
        if cfg.freeze_backbone:
            trainable = model.classifier.parameters()
        else:
            trainable = model.parameters()
        optimizer = Adam(trainable, lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(
            train_dataset, batch_size=cfg.batch_size, task=task, shuffle=True, rng=generator
        )
        if cfg.prefetch_batches:
            from ..parallel.prefetch import PrefetchDataLoader

            loader = PrefetchDataLoader(loader, depth=cfg.prefetch_batches)

        history = TrainingHistory()
        # train() must precede engine.start(): replicas are cloned (or forked)
        # from the master, so they inherit its train/eval mode, and broadcast()
        # only syncs parameters — a replica created in eval mode would silently
        # fine-tune with dropout disabled.
        model.train()
        engine = None
        if cfg.num_workers > 0:
            from ..parallel.engine import DataParallelEngine

            def classification_step(replica, batch, _rng):
                return loss_fn(replica(batch.windows), batch.labels)

            engine = DataParallelEngine(
                model,
                classification_step,
                num_workers=cfg.num_workers,
                backend=cfg.parallel_backend,
                seed=cfg.seed,
            )
            engine.start()
        try:
            for epoch in range(cfg.epochs):
                epoch_loss = 0.0
                batches = 0
                for batch in loader:
                    if engine is not None:
                        loss_value, _ = engine.train_step(
                            batch, optimizer, clip_parameters=trainable, grad_clip=cfg.grad_clip
                        )
                    else:
                        logits = model(batch.windows)
                        loss = loss_fn(logits, batch.labels)
                        optimizer.zero_grad()
                        loss.backward()
                        if cfg.grad_clip > 0:
                            clip_grad_norm(trainable, cfg.grad_clip)
                        optimizer.step()
                        loss_value = float(loss.data)
                    epoch_loss += loss_value
                    batches += 1
                mean_loss = epoch_loss / max(batches, 1)
                history.append(EpochRecord(epoch=epoch, train_loss=mean_loss))
                if cfg.log_every and epoch % cfg.log_every == 0:
                    logger.info("finetune[%s] epoch %d loss %.5f", task, epoch, mean_loss)
        finally:
            if engine is not None:
                engine.close()

        model.eval()
        validation_metrics = None
        if validation_dataset is not None and len(validation_dataset) > 0:
            validation_metrics = evaluate_model(model, validation_dataset, task)
            history.append(
                EpochRecord(
                    epoch=cfg.epochs,
                    train_loss=history.final_loss(),
                    metrics=validation_metrics.as_dict(),
                )
            )
        return FinetuneResult(
            model=model, history=history, validation_metrics=validation_metrics, task=task
        )


def finetune_classifier(
    backbone: SagaBackbone,
    train_dataset: IMUDataset,
    task: str,
    validation_dataset: Optional[IMUDataset] = None,
    config: Optional[FinetuneConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> FinetuneResult:
    """Functional convenience wrapper around :class:`Finetuner`."""
    return Finetuner(config).finetune(
        backbone, train_dataset, task, validation_dataset=validation_dataset, rng=rng
    )
