"""Generic supervised training loop used by the baselines.

The Saga-specific loops live in :mod:`repro.training.pretrain` and
:mod:`repro.training.finetune`; this module provides a small reusable
trainer for plain supervised models (the "no pre-training" baseline and the
contrastive baselines' classifier stages) with optional early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import ConfigurationError, TrainingError
from ..logging_utils import get_logger
from ..nn import Adam, CrossEntropyLoss, Module, clip_grad_norm
from ..obs.profiling import PhaseTimer
from .history import EpochRecord, TrainingHistory
from .metrics import evaluate_predictions

logger = get_logger(__name__)

_END_OF_EPOCH = object()


def validate_parallel_fields(config) -> None:
    """Shared validation of the data-parallel knobs on a training config.

    ``num_workers`` is the number of data-parallel workers (0 = single
    process), ``parallel_backend`` selects the worker implementation and
    ``prefetch_batches`` the depth of the background batch pipeline
    (0 = eager loading).
    """
    for field_name in ("num_workers", "prefetch_batches"):
        value = getattr(config, field_name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(
                f"{field_name} must be an integer, got {value!r} "
                f"({type(value).__name__})"
            )
        if value < 0:
            raise ConfigurationError(
                f"{field_name} must be >= 0 (0 disables it), got {value}"
            )
    from ..parallel.engine import BACKENDS  # local import to avoid a cycle

    if config.parallel_backend not in BACKENDS:
        raise ConfigurationError(
            f"parallel_backend must be one of {BACKENDS}, "
            f"got {config.parallel_backend!r}"
        )


@dataclass
class TrainerConfig:
    """Hyper-parameters of the generic supervised trainer."""

    epochs: int = 50
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    early_stopping_patience: int = 0
    log_every: int = 10
    seed: int = 0
    num_workers: int = 0
    parallel_backend: str = "thread"
    prefetch_batches: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.early_stopping_patience < 0:
            raise ConfigurationError("early_stopping_patience must be non-negative")
        validate_parallel_fields(self)


class EarlyStopping:
    """Accuracy-based early-stopping state shared by the supervised trainers."""

    def __init__(self, patience: int) -> None:
        self.patience = patience
        self.best = -np.inf
        self.stale_epochs = 0

    def should_stop(self, metrics: Mapping[str, float]) -> bool:
        """Record this epoch's validation metrics; True when patience ran out."""
        if not self.patience or not metrics:
            return False
        if metrics["accuracy"] > self.best + 1e-6:
            self.best = metrics["accuracy"]
            self.stale_epochs = 0
            return False
        self.stale_epochs += 1
        return self.stale_epochs >= self.patience


class SupervisedTrainer:
    """Train any ``Module`` mapping windows to class logits with cross-entropy."""

    def __init__(self, config: Optional[TrainerConfig] = None) -> None:
        self.config = config if config is not None else TrainerConfig()

    def fit(
        self,
        model: Module,
        train_dataset: IMUDataset,
        task: str,
        validation_dataset: Optional[IMUDataset] = None,
        forward: Optional[Callable] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``train_dataset`` and return the training history.

        ``forward`` may override how logits are obtained from a batch of
        windows (default: ``model(windows)``).
        """
        if len(train_dataset) == 0:
            raise TrainingError("cannot train on an empty dataset")
        cfg = self.config
        if cfg.num_workers > 0:
            if forward is not None:
                raise ConfigurationError(
                    "a custom forward override is not supported with "
                    "num_workers > 0 (it cannot be bound to worker replicas)"
                )
            from ..parallel.trainer import ParallelTrainer  # local import to avoid a cycle

            return ParallelTrainer(cfg).fit(
                model, train_dataset, task, validation_dataset=validation_dataset, rng=rng
            )
        generator = rng if rng is not None else np.random.default_rng(cfg.seed)
        forward_fn = forward if forward is not None else model
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(
            train_dataset, batch_size=cfg.batch_size, task=task, shuffle=True, rng=generator
        )
        if cfg.prefetch_batches:
            from ..parallel.prefetch import PrefetchDataLoader

            loader = PrefetchDataLoader(loader, depth=cfg.prefetch_batches)

        history = TrainingHistory()
        early_stopping = EarlyStopping(cfg.early_stopping_patience)
        # Phase attribution is opt-in (repro.obs.enable_phase_timing); when
        # off, each `with phase(...)` is a shared no-op context manager.
        self.phase_timer = PhaseTimer("supervised")
        model.train()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            batches = 0
            iterator = iter(loader)
            while True:
                # The explicit next() keeps loader time (including prefetch
                # stalls) attributed to the `data` phase rather than smeared
                # over the for-statement.
                with self.phase_timer.phase("data"):
                    batch = next(iterator, _END_OF_EPOCH)
                if batch is _END_OF_EPOCH:
                    break
                with self.phase_timer.phase("forward"):
                    logits = forward_fn(batch.windows)
                    loss = loss_fn(logits, batch.labels)
                with self.phase_timer.phase("backward"):
                    optimizer.zero_grad()
                    loss.backward()
                with self.phase_timer.phase("optimizer"):
                    if cfg.grad_clip > 0:
                        clip_grad_norm(model.parameters(), cfg.grad_clip)
                    optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            metrics = {}
            if validation_dataset is not None and len(validation_dataset) > 0:
                metrics = self.evaluate(model, validation_dataset, task, forward=forward_fn).as_dict()
            history.append(EpochRecord(epoch=epoch, train_loss=mean_loss, metrics=metrics))
            if cfg.log_every and epoch % cfg.log_every == 0:
                logger.info("train[%s] epoch %d loss %.5f", task, epoch, mean_loss)

            if early_stopping.should_stop(metrics):
                logger.info("early stopping at epoch %d", epoch)
                break
        model.eval()
        return history

    @staticmethod
    def evaluate(model: Module, dataset: IMUDataset, task: str, forward: Optional[Callable] = None,
                 batch_size: int = 128):
        """Evaluate accuracy / macro-F1 of ``model`` on ``dataset``."""
        forward_fn = forward if forward is not None else model
        was_training = model.training
        model.eval()
        try:
            labels = dataset.task_labels(task)
            predictions = np.empty(len(dataset), dtype=np.int64)
            loader = DataLoader(dataset, batch_size=batch_size, task=task, shuffle=False)
            for batch in loader:
                logits = forward_fn(batch.windows)
                predictions[batch.indices] = logits.data.argmax(axis=-1)
        finally:
            model.train(was_training)
        return evaluate_predictions(predictions, labels, dataset.num_classes(task))
