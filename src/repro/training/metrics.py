"""Classification metrics: accuracy, macro-F1, confusion matrix (paper Section VII-A-4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..exceptions import TrainingError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Proportion of correctly predicted samples."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise TrainingError(
            f"predictions shape {predictions.shape} does not match labels shape {labels.shape}"
        )
    if predictions.size == 0:
        raise TrainingError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = number of samples of class i predicted as j."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise TrainingError("predictions and labels must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def precision_recall_per_class(matrix: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-class precision and recall from a confusion matrix (0 when undefined)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    true_positive = np.diag(matrix)
    predicted_positive = matrix.sum(axis=0)
    actual_positive = matrix.sum(axis=1)
    precision = np.divide(
        true_positive, predicted_positive,
        out=np.zeros_like(true_positive), where=predicted_positive > 0,
    )
    recall = np.divide(
        true_positive, actual_positive,
        out=np.zeros_like(true_positive), where=actual_positive > 0,
    )
    return {"precision": precision, "recall": recall}


def macro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Macro-averaged F1 score as defined in the paper:

    ``F1 = (1 / N_c) * sum_i 2 p_i r_i / (p_i + r_i)``.
    """
    matrix = confusion_matrix(predictions, labels, num_classes)
    stats = precision_recall_per_class(matrix)
    precision, recall = stats["precision"], stats["recall"]
    denominator = precision + recall
    f1_per_class = np.divide(
        2 * precision * recall, denominator,
        out=np.zeros_like(precision), where=denominator > 0,
    )
    return float(f1_per_class.mean())


@dataclass(frozen=True)
class ClassificationMetrics:
    """Accuracy and macro-F1 of one evaluation."""

    accuracy: float
    f1: float
    num_samples: int

    def as_dict(self) -> Dict[str, float]:
        return {"accuracy": self.accuracy, "f1": self.f1, "num_samples": float(self.num_samples)}


def evaluate_predictions(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> ClassificationMetrics:
    """Compute accuracy and macro-F1 in one call."""
    return ClassificationMetrics(
        accuracy=accuracy(predictions, labels),
        f1=macro_f1(predictions, labels, num_classes),
        num_samples=int(np.asarray(labels).shape[0]),
    )


def relative_metric(value: float, reference: float) -> float:
    """Relative performance (in %) against a reference value.

    The paper reports accuracy/F1 *relative to the SOTA method trained with
    all labelled data* (Figure 6); this helper implements that normalisation.
    """
    if reference <= 0:
        raise TrainingError("reference must be positive")
    return 100.0 * value / reference
