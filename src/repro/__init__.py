"""repro — reproduction of "Saga: Capturing Multi-granularity Semantics from
Massive Unlabelled IMU Data" (ICDCS 2025).

The package is organised as a small stack of subsystems (see ``DESIGN.md``):

* :mod:`repro.nn` — from-scratch autograd / neural-network framework, with a
  trace-and-replay compiled executor for inference (:mod:`repro.nn.jit`);
* :mod:`repro.signal` — IMU signal processing (energy, key points, periods);
* :mod:`repro.datasets` — synthetic HHAR / Motion / Shoaib-shaped datasets;
* :mod:`repro.masking` — the four semantic masking levels (MM module);
* :mod:`repro.models` — LIMU-BERT backbone, decoder, GRU classifier;
* :mod:`repro.training` — masked pre-training and downstream fine-tuning;
* :mod:`repro.bayesopt` — Gaussian Process + Expected Improvement (LWS);
* :mod:`repro.baselines` — LIMU, CL-HAR, TPN, no-pre-training;
* :mod:`repro.deployment` — phone cost model and latency simulation;
* :mod:`repro.serving` — online inference: model registry, micro-batching,
  streaming ingestion and telemetry on the ``no_grad`` fast path, fronted by
  an asyncio HTTP/1.1 gateway with admission control (``docs/PROTOCOL.md``);
* :mod:`repro.parallel` — data-parallel training: worker replicas, gradient
  all-reduce over shared memory, and the prefetching batch pipeline;
* :mod:`repro.obs` — observability: process-wide metrics registry
  (Prometheus text + JSON snapshot exporters), sampled request tracing with
  Chrome trace-event export, opt-in JIT/training profiling hooks, a
  cross-process snapshot/merge wire format with fork-safe state, and a live
  HTTP exposition endpoint (``/metrics``, ``/healthz``, ``/traces``);
* :mod:`repro.experiments` — resumable experiment orchestration: declarative
  grid specs, content-addressed stage caching, checkpoint/resume and the
  ``BENCH_*.json`` regression pipeline;
* :mod:`repro.analysis` — project-specific static analysis: an AST framework
  plus invariant checkers (dtype policy, determinism, asyncio hygiene, lock
  discipline, exception policy, annotation integrity) gating CI
  (``python -m repro.analysis check``, catalog in ``docs/ANALYSIS.md``);
* :mod:`repro.core` / :mod:`repro.evaluation` — pipeline, experiments, figures.

Quick start
-----------
>>> from repro import SagaPipeline, load_dataset
>>> dataset = load_dataset("hhar", scale=0.02)
>>> splits = dataset.split(stratify_task="activity")
>>> pipeline = SagaPipeline()
>>> pipeline.fit(splits.train, splits.train.few_shot("activity", 10),
...              "activity", splits.validation, weights="uniform")
>>> pipeline.evaluate(splits.test, "activity")
"""

from ._version import __version__
from .core.experiment import ExperimentProfile, ExperimentRunner, get_profile
from .core.saga import SagaConfig, SagaMethod, SagaPipeline
from .datasets.base import IMUDataset
from .datasets.registry import load_dataset
from .exceptions import (
    ConfigurationError,
    DataError,
    DeploymentError,
    MaskingError,
    ReproError,
    SearchError,
    TrainingError,
)
from .exceptions import (
    GatewayError,
    ObservabilityError,
    ParallelError,
    QueueFullError,
    ServingError,
)
from .experiments import (
    BenchReport,
    ExperimentSpec,
    GridResult,
    Runner,
    RunnerConfig,
    expand_grid,
    named_grid,
)
from .logging_utils import configure_logging, get_logger
from .obs import (
    MetricsRegistry,
    ObsHTTPServer,
    configure_tracing,
    get_registry,
    get_tracer,
    merge_snapshot,
    parse_prometheus_text,
    snapshot_registry,
)
from .parallel import DataParallelEngine, ParallelTrainer, PrefetchDataLoader
from .rng import RNGRegistry, make_rng
from .serving import (
    GatewayConfig,
    InferenceGateway,
    InferenceServer,
    ModelRegistry,
    ServerConfig,
    serve,
    serve_gateway,
)

__all__ = [
    "__version__",
    "ExperimentSpec",
    "expand_grid",
    "named_grid",
    "Runner",
    "RunnerConfig",
    "GridResult",
    "BenchReport",
    "serve",
    "serve_gateway",
    "InferenceServer",
    "InferenceGateway",
    "GatewayConfig",
    "ModelRegistry",
    "ServerConfig",
    "SagaPipeline",
    "SagaConfig",
    "SagaMethod",
    "ExperimentRunner",
    "ExperimentProfile",
    "get_profile",
    "IMUDataset",
    "load_dataset",
    "RNGRegistry",
    "make_rng",
    "configure_logging",
    "get_logger",
    "ReproError",
    "ConfigurationError",
    "DataError",
    "MaskingError",
    "TrainingError",
    "SearchError",
    "DeploymentError",
    "ServingError",
    "QueueFullError",
    "GatewayError",
    "ParallelError",
    "ObservabilityError",
    "ParallelTrainer",
    "DataParallelEngine",
    "PrefetchDataLoader",
    "MetricsRegistry",
    "get_registry",
    "get_tracer",
    "configure_tracing",
    "ObsHTTPServer",
    "parse_prometheus_text",
    "snapshot_registry",
    "merge_snapshot",
]
