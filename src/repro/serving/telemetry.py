"""Serving telemetry: latency percentiles, throughput, queue depth.

Collects per-request and per-batch measurements from the serving stack and
summarises them into a :class:`TelemetrySnapshot`.  The snapshot can be
cross-checked against the analytic latency model of
:mod:`repro.deployment.latency` (paper Fig. 13): the analytic model predicts
per-window compute latency from FLOPs, so observed serving latency should
track the prediction up to queueing/batching overhead.  A large divergence is
a regression signal for either the model or the server.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..deployment.devices import PhoneSpec
from ..deployment.latency import model_latency
from ..exceptions import ServingError
from ..nn.module import Module

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Aggregated view of the serving stack at one instant.

    ``window_seconds`` spans the *first recorded request* to the snapshot
    (0.0 before any traffic), so ``throughput_rps`` measures the traffic
    window rather than being deflated by idle time before serving began.
    """

    requests: int
    batches: int
    window_seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    mean_batch_size: float
    max_queue_depth: int
    mean_queue_wait_ms: float
    mean_compute_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "window_seconds": self.window_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "mean_compute_ms": self.mean_compute_ms,
        }


@dataclass(frozen=True)
class LatencyCrossCheck:
    """Observed serving latency versus the analytic deployment prediction."""

    phone: str
    predicted_ms: float
    observed_p50_ms: float
    ratio: float

    @property
    def within(self) -> bool:
        """True when observation and prediction agree within one order of magnitude."""
        return 0.1 <= self.ratio <= 10.0


class TelemetryCollector:
    """Thread-safe accumulator for request latencies and batch statistics."""

    def __init__(self, percentiles: tuple = DEFAULT_PERCENTILES) -> None:
        self.percentiles = tuple(percentiles)
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._batch_sizes: List[int] = []
        self._queue_waits_ms: List[float] = []
        self._compute_ms: List[float] = []
        self._max_queue_depth = 0
        # The throughput window opens at the *first recorded request*, not at
        # construction: a collector built long before traffic arrives (server
        # start-up, an idle canary) would otherwise divide by dead air and
        # deflate throughput_rps arbitrarily.
        self._first_request_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, latency_ms: float) -> None:
        """Record one request's end-to-end latency (submit → result)."""
        if latency_ms < 0:
            raise ServingError("latency_ms must be non-negative")
        with self._lock:
            if self._first_request_at is None:
                self._first_request_at = time.perf_counter()
            self._latencies_ms.append(float(latency_ms))

    def record_batch(
        self,
        batch_size: int,
        queue_depth: int,
        wait_ms: float,
        compute_ms: float,
    ) -> None:
        """Record one executed batch (typically via the MicroBatcher hook)."""
        with self._lock:
            self._batch_sizes.append(int(batch_size))
            self._queue_waits_ms.append(float(wait_ms))
            self._compute_ms.append(float(compute_ms))
            if queue_depth > self._max_queue_depth:
                self._max_queue_depth = int(queue_depth)

    def reset(self) -> None:
        with self._lock:
            self._latencies_ms.clear()
            self._batch_sizes.clear()
            self._queue_waits_ms.clear()
            self._compute_ms.clear()
            self._max_queue_depth = 0
            self._first_request_at = None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        with self._lock:
            latencies = np.asarray(self._latencies_ms, dtype=np.float64)
            batch_sizes = self._batch_sizes[:]
            queue_waits = self._queue_waits_ms[:]
            compute = self._compute_ms[:]
            max_depth = self._max_queue_depth
            if self._first_request_at is None:
                elapsed = 0.0
            else:
                elapsed = max(time.perf_counter() - self._first_request_at, 1e-9)
        latency_ms: Dict[str, float] = {}
        if latencies.size:
            for pct in self.percentiles:
                latency_ms[f"p{pct:g}"] = float(np.percentile(latencies, pct))
            latency_ms["mean"] = float(latencies.mean())
            latency_ms["max"] = float(latencies.max())
        return TelemetrySnapshot(
            requests=int(latencies.size),
            batches=len(batch_sizes),
            window_seconds=float(elapsed),
            throughput_rps=float(latencies.size / elapsed) if elapsed > 0 else 0.0,
            latency_ms=latency_ms,
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            max_queue_depth=max_depth,
            mean_queue_wait_ms=float(np.mean(queue_waits)) if queue_waits else 0.0,
            mean_compute_ms=float(np.mean(compute)) if compute else 0.0,
        )


def cross_check_latency(
    snapshot: TelemetrySnapshot,
    model: Module,
    window_length: int,
    phone: PhoneSpec,
) -> LatencyCrossCheck:
    """Compare observed p50 serving latency with the Fig.-13 analytic prediction.

    The analytic model targets single-window on-device inference, so the
    comparison uses the p50 end-to-end latency; ``ratio`` > 1 means serving is
    slower than the idealised device model (queueing, python dispatch), < 1
    means faster (micro-batching amortisation, faster host CPU).
    """
    if snapshot.requests == 0:
        raise ServingError("cannot cross-check an empty telemetry snapshot")
    predicted = model_latency(model, window_length, phone)
    observed = snapshot.latency_ms.get("p50", snapshot.latency_ms.get("mean", 0.0))
    return LatencyCrossCheck(
        phone=phone.name,
        predicted_ms=predicted,
        observed_p50_ms=observed,
        ratio=observed / max(predicted, 1e-9),
    )
