"""Serving telemetry: latency percentiles, throughput, queue depth.

Collects per-request and per-batch measurements from the serving stack and
summarises them into a :class:`TelemetrySnapshot`.  The snapshot can be
cross-checked against the analytic latency model of
:mod:`repro.deployment.latency` (paper Fig. 13): the analytic model predicts
per-window compute latency from FLOPs, so observed serving latency should
track the prediction up to queueing/batching overhead.  A large divergence is
a regression signal for either the model or the server.

Since the :mod:`repro.obs` layer landed, the collector is backed by the
process-wide metrics registry: every recording feeds bounded
:class:`~repro.obs.metrics.HistogramChild` / counter / gauge series labelled
``{collector="<name>"}``, so the same numbers surface through the Prometheus
and JSON exporters that the rest of the stack uses.  Memory is **bounded**
regardless of traffic — histograms keep fixed bucket counts plus a
fixed-capacity quantile reservoir, so collector state size is independent of
request count.  Percentiles are exact while a series has at most
``reservoir_size`` observations (the reservoir still holds every sample) and
are uniform-subsample estimates beyond, with the usual order-statistic
sampling error of ~``1/sqrt(reservoir_size)`` of the local density scale.
Counts, sums, means, and maxima stay exact at any volume.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..deployment.devices import PhoneSpec
from ..deployment.latency import model_latency
from ..exceptions import ServingError
from ..nn.module import Module
from ..obs.metrics import MetricsRegistry, get_registry

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)

#: Reservoir capacity of each telemetry histogram: percentile estimates are
#: exact up to this many recordings per series, sampled beyond (see module
#: docstring), and the collector's memory stays constant either way.
TELEMETRY_RESERVOIR_SIZE = 4096

#: Bucket bounds (milliseconds) for the latency/wait/compute series.
LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 5000.0, float("inf"),
)

BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, float("inf"))

_collector_ids = itertools.count(1)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Aggregated view of the serving stack at one instant.

    ``window_seconds`` spans the *first recorded request* to the snapshot
    (0.0 before any traffic), so ``throughput_rps`` measures the traffic
    window rather than being deflated by idle time before serving began.
    """

    requests: int
    batches: int
    window_seconds: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    mean_batch_size: float
    max_queue_depth: int
    mean_queue_wait_ms: float
    mean_compute_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "window_seconds": self.window_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "mean_compute_ms": self.mean_compute_ms,
        }


@dataclass(frozen=True)
class LatencyCrossCheck:
    """Observed serving latency versus the analytic deployment prediction."""

    phone: str
    predicted_ms: float
    observed_p50_ms: float
    ratio: float

    @property
    def within(self) -> bool:
        """True when observation and prediction agree within one order of magnitude."""
        return 0.1 <= self.ratio <= 10.0


class TelemetryCollector:
    """Thread-safe, bounded-memory accumulator for request/batch statistics.

    Each collector owns its own label set (``collector=<name>``) inside the
    shared registry, so several servers in one process publish distinct
    series while the snapshot API stays per-collector.
    """

    # The metric children (_requests, _latency, …) are internally locked;
    # only the cross-field max/first-seen state needs this collector's lock.
    _GUARDED_BY = {"_lock": ("_max_queue_depth", "_first_request_at")}

    def __init__(
        self,
        percentiles: tuple = DEFAULT_PERCENTILES,
        registry: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
    ) -> None:
        self.percentiles = tuple(percentiles)
        self.registry = registry if registry is not None else get_registry()
        self.name = name if name is not None else f"collector-{next(_collector_ids)}"
        labels = {"collector": self.name}
        quantiles = tuple(pct / 100.0 for pct in self.percentiles)
        registry_ = self.registry
        self._requests = registry_.counter(
            "serving_requests_total", "Requests recorded by the serving telemetry",
            labels=("collector",),
        ).labels(**labels)
        self._latency = registry_.histogram(
            "serving_request_latency_ms", "End-to-end request latency (submit → result)",
            labels=("collector",), buckets=LATENCY_BUCKETS_MS, quantiles=quantiles,
            reservoir_size=TELEMETRY_RESERVOIR_SIZE,
        ).labels(**labels)
        self._batches = registry_.counter(
            "serving_batches_total", "Micro-batches executed",
            labels=("collector",),
        ).labels(**labels)
        self._batch_size = registry_.histogram(
            "serving_batch_size", "Windows per executed micro-batch",
            labels=("collector",), buckets=BATCH_SIZE_BUCKETS,
            reservoir_size=TELEMETRY_RESERVOIR_SIZE,
        ).labels(**labels)
        self._queue_wait = registry_.histogram(
            "serving_queue_wait_ms", "Oldest-request queue wait per batch",
            labels=("collector",), buckets=LATENCY_BUCKETS_MS,
            reservoir_size=TELEMETRY_RESERVOIR_SIZE,
        ).labels(**labels)
        self._compute = registry_.histogram(
            "serving_batch_compute_ms", "Handler compute time per batch",
            labels=("collector",), buckets=LATENCY_BUCKETS_MS,
            reservoir_size=TELEMETRY_RESERVOIR_SIZE,
        ).labels(**labels)
        self._queue_depth = registry_.gauge(
            "serving_max_queue_depth", "Deepest queue observed after any batch",
            labels=("collector",),
        ).labels(**labels)
        self._lock = threading.Lock()
        self._max_queue_depth = 0
        # The throughput window opens at the *first recorded request*, not at
        # construction: a collector built long before traffic arrives (server
        # start-up, an idle canary) would otherwise divide by dead air and
        # deflate throughput_rps arbitrarily.
        self._first_request_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, latency_ms: float) -> None:
        """Record one request's end-to-end latency (submit → result)."""
        if latency_ms < 0:
            raise ServingError("latency_ms must be non-negative")
        with self._lock:
            if self._first_request_at is None:
                self._first_request_at = time.perf_counter()
        self._requests.inc()
        self._latency.observe(float(latency_ms))

    def record_batch(
        self,
        batch_size: int,
        queue_depth: int,
        wait_ms: float,
        compute_ms: float,
    ) -> None:
        """Record one executed batch (typically via the MicroBatcher hook)."""
        if batch_size < 1:
            raise ServingError(f"batch_size must be >= 1, got {batch_size}")
        if queue_depth < 0:
            raise ServingError(f"queue_depth must be non-negative, got {queue_depth}")
        if wait_ms < 0:
            raise ServingError(f"wait_ms must be non-negative, got {wait_ms}")
        if compute_ms < 0:
            raise ServingError(f"compute_ms must be non-negative, got {compute_ms}")
        self._batches.inc()
        self._batch_size.observe(int(batch_size))
        self._queue_wait.observe(float(wait_ms))
        self._compute.observe(float(compute_ms))
        with self._lock:
            if queue_depth > self._max_queue_depth:
                self._max_queue_depth = int(queue_depth)
                self._queue_depth.set(self._max_queue_depth)

    def reset(self) -> None:
        for child in (
            self._requests, self._latency, self._batches, self._batch_size,
            self._queue_wait, self._compute, self._queue_depth,
        ):
            child.reset()
        with self._lock:
            self._max_queue_depth = 0
            self._first_request_at = None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        with self._lock:
            max_depth = self._max_queue_depth
            if self._first_request_at is None:
                elapsed = 0.0
            else:
                elapsed = max(time.perf_counter() - self._first_request_at, 1e-9)
        requests = self._latency.count
        latency_ms: Dict[str, float] = {}
        if requests:
            samples = np.asarray(self._latency.samples(), dtype=np.float64)
            for pct in self.percentiles:
                latency_ms[f"p{pct:g}"] = float(np.percentile(samples, pct))
            latency_ms["mean"] = self._latency.mean
            latency_ms["max"] = self._latency.max
        batches = self._batch_size.count
        return TelemetrySnapshot(
            requests=int(requests),
            batches=int(batches),
            window_seconds=float(elapsed),
            throughput_rps=float(requests / elapsed) if elapsed > 0 else 0.0,
            latency_ms=latency_ms,
            mean_batch_size=self._batch_size.mean if batches else 0.0,
            max_queue_depth=max_depth,
            mean_queue_wait_ms=self._queue_wait.mean if batches else 0.0,
            mean_compute_ms=self._compute.mean if batches else 0.0,
        )

    def state_size(self) -> int:
        """Floats held across all series — constant once reservoirs fill.

        The bound the observability benchmark asserts: recording twice the
        traffic must not grow this number once every reservoir reached its
        fixed capacity.
        """
        return sum(
            histogram.state_size()
            for histogram in (self._latency, self._batch_size, self._queue_wait, self._compute)
        )


def cross_check_latency(
    snapshot: TelemetrySnapshot,
    model: Module,
    window_length: int,
    phone: PhoneSpec,
) -> LatencyCrossCheck:
    """Compare observed p50 serving latency with the Fig.-13 analytic prediction.

    The analytic model targets single-window on-device inference, so the
    comparison uses the p50 end-to-end latency; ``ratio`` > 1 means serving is
    slower than the idealised device model (queueing, python dispatch), < 1
    means faster (micro-batching amortisation, faster host CPU).
    """
    if snapshot.requests == 0:
        raise ServingError("cannot cross-check an empty telemetry snapshot")
    predicted = model_latency(model, window_length, phone)
    observed = snapshot.latency_ms.get("p50", snapshot.latency_ms.get("mean", 0.0))
    return LatencyCrossCheck(
        phone=phone.name,
        predicted_ms=predicted,
        observed_p50_ms=observed,
        ratio=observed / max(predicted, 1e-9),
    )
