"""Streaming ingestion: raw IMU sample streams → model-ready windows.

Phones push raw sensor samples at their native rate (50–200 Hz); the models
consume 20 Hz windows of fixed length, normalised as in the paper
(Section VII-A-2).  :class:`StreamIngestor` performs that conversion
incrementally: it buffers arbitrary-size chunks of ``(n, channels)`` samples,
downsamples them by block averaging, and emits every complete (possibly
overlapping) window as soon as enough samples have accumulated, reusing the
batch preprocessing from :mod:`repro.signal.preprocessing` so offline training
and online serving share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import ServingError
from ..signal.preprocessing import downsample, normalize_imu, slice_windows


@dataclass
class IngestionConfig:
    """Shape and rate conversion applied to one device stream."""

    window_length: int = 120
    num_channels: int = 6
    source_rate_hz: float = 20.0
    target_rate_hz: float = 20.0
    stride: Optional[int] = None  # defaults to non-overlapping windows
    accel_axes: Tuple[int, ...] = (0, 1, 2)
    magnetometer_axes: Tuple[int, ...] = ()
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.window_length <= 0 or self.num_channels <= 0:
            raise ServingError("window_length and num_channels must be positive")
        if self.source_rate_hz <= 0 or self.target_rate_hz <= 0:
            raise ServingError("sample rates must be positive")
        if self.target_rate_hz > self.source_rate_hz:
            raise ServingError("target_rate_hz must not exceed source_rate_hz")
        ratio = self.source_rate_hz / self.target_rate_hz
        if abs(ratio - round(ratio)) > 1e-6 * ratio:
            # Block-average decimation can only divide the rate by an integer;
            # accepting 50 -> 20 Hz would silently emit 25 Hz windows.
            raise ServingError(
                f"source/target rate ratio must be an integer for decimation, "
                f"got {self.source_rate_hz}/{self.target_rate_hz} = {ratio:g}"
            )
        if self.stride is not None and self.stride <= 0:
            raise ServingError("stride must be positive")

    @property
    def decimation_factor(self) -> int:
        return max(1, int(round(self.source_rate_hz / self.target_rate_hz)))

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride is not None else self.window_length


class StreamIngestor:
    """Stateful adapter from a raw sample stream to preprocessed windows.

    Not thread-safe by design: one ingestor belongs to one device stream.
    Use one instance per connected client and share the downstream batcher.
    """

    def __init__(self, config: Optional[IngestionConfig] = None) -> None:
        self.config = config if config is not None else IngestionConfig()
        factor = self.config.decimation_factor
        self._raw_buffer = np.empty((0, self.config.num_channels), dtype=np.float64)
        self._window_buffer = np.empty((0, self.config.num_channels), dtype=np.float64)
        self._factor = factor
        self._samples_seen = 0
        self._windows_emitted = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def push(self, samples: np.ndarray) -> np.ndarray:
        """Feed a chunk of raw samples; return every newly completed window.

        Parameters
        ----------
        samples:
            ``(n, channels)`` chunk at the source rate (a single ``(channels,)``
            sample is also accepted).

        Returns
        -------
        ``(k, window_length, channels)`` array of normalised windows
        (``k`` may be 0 while the buffers fill up).
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.ndim != 2 or samples.shape[1] != self.config.num_channels:
            raise ServingError(
                f"expected (n, {self.config.num_channels}) samples, got shape {samples.shape}"
            )
        self._samples_seen += samples.shape[0]
        self._raw_buffer = np.concatenate([self._raw_buffer, samples], axis=0)

        # 1. Downsample complete decimation blocks to the target rate.
        usable = (self._raw_buffer.shape[0] // self._factor) * self._factor
        if usable:
            decimated = downsample(
                self._raw_buffer[:usable],
                source_rate=self.config.source_rate_hz,
                target_rate=self.config.target_rate_hz,
            )
            self._raw_buffer = self._raw_buffer[usable:]
            self._window_buffer = np.concatenate([self._window_buffer, decimated], axis=0)

        # 2. Slice every complete window out of the target-rate buffer.
        cfg = self.config
        if self._window_buffer.shape[0] < cfg.window_length:
            return np.empty((0, cfg.window_length, cfg.num_channels))
        windows = slice_windows(
            self._window_buffer, cfg.window_length, stride=cfg.effective_stride
        )
        consumed = windows.shape[0] * cfg.effective_stride
        # Overlapping windows (stride < window_length) keep a tail for reuse.
        self._window_buffer = self._window_buffer[consumed:]
        self._windows_emitted += windows.shape[0]

        # 3. Normalise exactly like the offline pipeline.
        if cfg.normalize:
            windows = normalize_imu(
                windows,
                accel_axes=cfg.accel_axes,
                magnetometer_axes=cfg.magnetometer_axes,
            )
        return windows

    def stream(self, chunks: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Iterate over ``chunks``, yielding each completed window individually."""
        for chunk in chunks:
            for window in self.push(chunk):
                yield window

    def flush(self, pad: bool = False) -> np.ndarray:
        """Emit any trailing partial window (zero-padded when ``pad=True``).

        Without padding the remainder is simply discarded, matching the
        offline ``drop_last=True`` windowing.
        """
        cfg = self.config
        remainder = self._window_buffer
        self._window_buffer = np.empty((0, cfg.num_channels), dtype=np.float64)
        self._raw_buffer = np.empty((0, cfg.num_channels), dtype=np.float64)
        if not pad or remainder.shape[0] == 0:
            return np.empty((0, cfg.window_length, cfg.num_channels))
        padded = np.zeros((cfg.window_length, cfg.num_channels), dtype=np.float64)
        padded[: remainder.shape[0]] = remainder[: cfg.window_length]
        window = padded[None]
        if cfg.normalize:
            window = normalize_imu(
                window, accel_axes=cfg.accel_axes, magnetometer_axes=cfg.magnetometer_axes
            )
        self._windows_emitted += 1
        return window

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    @property
    def windows_emitted(self) -> int:
        return self._windows_emitted

    @property
    def pending_samples(self) -> int:
        """Samples buffered (at the target rate) not yet emitted as a window."""
        return int(self._window_buffer.shape[0])
