"""Micro-batching scheduler for online inference.

Single-window requests arrive one at a time; batched forwards through the
numpy models are far cheaper per window than one forward per request.  The
:class:`MicroBatcher` bridges the two: requests are pushed onto a thread-safe
queue and worker threads drain it in coalesced batches, bounded by a maximum
batch size (flush immediately when full) and a maximum wait (flush a partial
batch once the oldest request has waited long enough).  Results are delivered
through per-request :class:`concurrent.futures.Future` objects, so completion
order is decoupled from submission order — with several workers, batches may
finish out of order without mixing up replies.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np

from ..exceptions import QueueFullError, ServingError
from ..logging_utils import get_logger
from ..obs.tracing import get_tracer

logger = get_logger(__name__)

BatchHandler = Callable[[np.ndarray], np.ndarray]
"""Maps a batch of windows ``(B, L, C)`` to per-window outputs ``(B, ...)``."""


@dataclass
class MicroBatcherConfig:
    """Tuning knobs of the micro-batching scheduler."""

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    num_workers: int = 1
    queue_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ServingError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ServingError("max_wait_ms must be non-negative")
        if self.num_workers <= 0:
            raise ServingError("num_workers must be positive")
        if self.queue_capacity <= 0:
            raise ServingError("queue_capacity must be positive")


@dataclass
class _PendingRequest:
    """One queued window together with its reply future.

    ``trace_id`` carries the request's sampled trace across the batcher
    boundary: the submitting thread draws it, the worker thread records the
    queue-wait / batch-assembly / forward spans against it.  ``None`` (the
    overwhelmingly common case) means the request is untraced and every
    recording site short-circuits.
    """

    window: np.ndarray
    future: "Future[np.ndarray]"
    enqueued_at: float = field(default_factory=time.perf_counter)
    trace_id: Optional[str] = None


@dataclass
class BatchRecord:
    """Bookkeeping for one executed batch (consumed by telemetry)."""

    batch_size: int
    queue_depth_after: int
    wait_ms: float
    compute_ms: float


class MicroBatcher:
    """Coalesce single-window requests into batched forwards.

    Parameters
    ----------
    handler:
        Callable executing one batched forward.  It receives a stacked
        ``(B, L, C)`` array and must return an array whose leading dimension
        is ``B``; row ``i`` resolves request ``i``'s future.
    config:
        Batch-size / wait / worker-pool configuration.
    on_batch:
        Optional callback invoked with a :class:`BatchRecord` after every
        batch (the telemetry hook).
    """

    # _not_empty is a Condition over _lock, so holding either name is
    # holding the same mutex.
    _GUARDED_BY = {
        "_lock": ("_queue", "_closed", "_batches_processed", "_requests_processed"),
        "_not_empty": ("_queue", "_closed", "_batches_processed", "_requests_processed"),
    }

    def __init__(
        self,
        handler: BatchHandler,
        config: Optional[MicroBatcherConfig] = None,
        on_batch: Optional[Callable[[BatchRecord], None]] = None,
    ) -> None:
        self.handler = handler
        self.config = config if config is not None else MicroBatcherConfig()
        self.on_batch = on_batch
        self._queue: Deque[_PendingRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._batches_processed = 0
        self._requests_processed = 0
        self._workers: List[threading.Thread] = [
            threading.Thread(target=self._worker_loop, name=f"microbatch-worker-{i}", daemon=True)
            for i in range(self.config.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(
        self, window: np.ndarray, trace_id: Optional[str] = None
    ) -> "Future[np.ndarray]":
        """Enqueue one window; the returned future resolves to its output row."""
        # Preserve the caller's floating precision: the server casts windows
        # to the served model's dtype before they reach the batcher, and a
        # float64 re-cast here would throw that work away.
        window = np.asarray(window)
        if window.dtype.kind != "f":
            window = window.astype(np.float64)
        if window.ndim != 2:
            raise ServingError(
                f"submit() expects a single (window_length, channels) window, got {window.shape}"
            )
        request = _PendingRequest(window=window, future=Future(), trace_id=trace_id)
        with self._not_empty:
            if self._closed:
                raise ServingError("cannot submit to a closed MicroBatcher")
            if len(self._queue) >= self.config.queue_capacity:
                raise QueueFullError(
                    f"queue capacity {self.config.queue_capacity} exceeded; shed load upstream"
                )
            self._queue.append(request)
            self._not_empty.notify()
        return request.future

    def submit_many(self, windows: Sequence[np.ndarray]) -> List["Future[np.ndarray]"]:
        """Enqueue several windows at once (a burst of requests)."""
        return [self.submit(window) for window in windows]

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting to be batched."""
        with self._lock:
            return len(self._queue)

    @property
    def batches_processed(self) -> int:
        with self._lock:
            return self._batches_processed

    @property
    def requests_processed(self) -> int:
        with self._lock:
            return self._requests_processed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _collect_batch(self) -> Optional[List[_PendingRequest]]:
        """Block until a batch is ready (or the batcher closes; then ``None``).

        A batch is released as soon as either (a) ``max_batch_size`` requests
        are queued, or (b) at least one request is queued and the oldest has
        waited ``max_wait_ms`` — an idle queue costs no CPU because workers
        sleep on the condition variable.
        """
        cfg = self.config
        max_wait_s = cfg.max_wait_ms / 1000.0
        with self._not_empty:
            while True:
                if self._closed and not self._queue:
                    return None
                if self._queue:
                    if len(self._queue) >= cfg.max_batch_size or self._closed:
                        break
                    oldest_wait = time.perf_counter() - self._queue[0].enqueued_at
                    remaining = max_wait_s - oldest_wait
                    if remaining <= 0:
                        break
                    self._not_empty.wait(timeout=remaining)
                else:
                    # Both submit() and close() notify, so idle workers can
                    # block indefinitely without burning CPU.
                    self._not_empty.wait()
            batch = [
                self._queue.popleft()
                for _ in range(min(cfg.max_batch_size, len(self._queue)))
            ]
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            started = time.perf_counter()
            forward_started = started
            try:
                # Inside the try: mixed window shapes must fail the batch's
                # futures, not kill the worker thread.
                windows = np.stack([request.window for request in batch], axis=0)
                forward_started = time.perf_counter()
                outputs = np.asarray(self.handler(windows))
                if outputs.shape[0] != len(batch):
                    raise ServingError(
                        f"handler returned leading dimension {outputs.shape[0]} "
                        f"for a batch of {len(batch)}"
                    )
            except BaseException as exc:  # propagate to every waiting client
                for request in batch:
                    request.future.set_exception(exc)
                logger.exception("micro-batch handler failed for batch of %d", len(batch))
                continue
            finished = time.perf_counter()
            for row, request in enumerate(batch):
                request.future.set_result(outputs[row])
            # One shared args dict per batch: the tracer never mutates args,
            # so every sampled request's forward span can point at it.
            forward_args = {"batch_size": len(batch)}
            tracer = get_tracer()
            for request in batch:
                if request.trace_id is not None:
                    tracer.record(request.trace_id, "queue.wait", request.enqueued_at, started)
                    tracer.record(request.trace_id, "batch.assemble", started, forward_started)
                    tracer.record(
                        request.trace_id, "forward", forward_started, finished,
                        args=forward_args,
                    )
            record = BatchRecord(
                batch_size=len(batch),
                queue_depth_after=self.queue_depth,
                wait_ms=1000.0 * (started - batch[0].enqueued_at),
                compute_ms=1000.0 * (finished - started),
            )
            with self._lock:
                self._batches_processed += 1
                self._requests_processed += len(batch)
            if self.on_batch is not None:
                self.on_batch(record)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests; optionally wait for queued work to finish."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        if drain:
            for worker in self._workers:
                worker.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
