"""Versioned on-disk registry of trained classification models.

The registry is the deployment boundary between training and serving: a
fine-tuned :class:`~repro.models.composite.ClassificationModel` is *published*
once (snapshotting its parameters through :mod:`repro.nn.serialization`) and
then *loaded* by any number of serving processes.  Checkpoints are versioned
by ``(dataset, task, profile)`` so a server can pin a version or follow the
latest one, and every checkpoint carries enough metadata (backbone
architecture, number of classes) to rebuild the model without importing the
training code that produced it.

Layout on disk::

    <root>/<dataset>/<task>/<profile>/v<NNN>.npz

Each ``.npz`` stores the flat state dict plus a JSON metadata blob with the
architecture, so a registry directory is fully self-describing and portable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import ServingError
from ..faults import site as _fault_site
from ..logging_utils import get_logger
from ..models.backbone import BackboneConfig, SagaBackbone
from ..models.composite import ClassificationModel
from ..nn.jit import CompiledModule
from ..nn.jit.compiled import power_of_two_buckets
from ..nn.tensor import DTypeLike
from ..nn.serialization import checkpoint_dtype, load_metadata, load_state_dict, save_module
from ..obs.metrics import get_registry

logger = get_logger(__name__)

PathLike = Union[str, Path]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ModelVersion:
    """One published checkpoint in the registry."""

    dataset: str
    task: str
    profile: str
    version: int
    path: Path
    metadata: Dict[str, Any]

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.dataset, self.task, self.profile)

    @property
    def name(self) -> str:
        """Human-readable identifier, e.g. ``hhar/activity/bench@v3``."""
        return f"{self.dataset}/{self.task}/{self.profile}@v{self.version}"


def _sanitise(component: str, field: str) -> str:
    component = str(component).strip().lower()
    if not component or any(ch in component for ch in "/\\.@"):
        raise ServingError(f"invalid registry {field} component: {component!r}")
    return component


class ModelRegistry:
    """Load, snapshot and version trained classification models.

    The registry is thread-safe: publishing and loading may happen
    concurrently from the serving worker threads and a training thread.
    Loaded models are cached per version, so repeated :meth:`load` calls are
    cheap and every server process sharing a registry shares the weights.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # Keyed on (checkpoint path, serving dtype): the same version may be
        # served at several precisions, each with its own cached instance.
        self._cache: Dict[Tuple[Path, Optional[str]], ClassificationModel] = {}
        # Shared compiled wrappers (same key): all servers loading a version
        # at one precision replay the same traced tapes.
        self._compiled_cache: Dict[Tuple[Path, Optional[str]], CompiledModule] = {}
        # Checkpoints that failed to load (corrupt/truncated/bad metadata).
        # Discovery skips them — so latest() and an unpinned load() roll back
        # to the newest *loadable* version — but _version_files still counts
        # them, so publish() never reuses a bad file's version number.
        self._bad_paths: set = set()

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        model: ClassificationModel,
        dataset: str,
        task: str,
        profile: str = "bench",
        extra_metadata: Optional[Dict[str, Any]] = None,
    ) -> ModelVersion:
        """Snapshot ``model`` as the next version for ``(dataset, task, profile)``."""
        if not isinstance(model, ClassificationModel):
            raise ServingError(
                f"registry can only publish ClassificationModel, got {type(model).__name__}"
            )
        dataset = _sanitise(dataset, "dataset")
        task = _sanitise(task, "task")
        profile = _sanitise(profile, "profile")
        backbone_config = model.backbone.config
        metadata: Dict[str, Any] = {
            "schema_version": _SCHEMA_VERSION,
            "dataset": dataset,
            "task": task,
            "profile": profile,
            "dtype": str(model.dtype),
            "num_classes": model.num_classes,
            "classifier_hidden_dim": model.classifier.gru.hidden_dim,
            "backbone_config": dict(backbone_config.__dict__),
            "num_parameters": model.num_parameters(),
        }
        if extra_metadata:
            metadata["extra"] = dict(extra_metadata)
        with self._lock:
            version = self._next_version(dataset, task, profile)
            metadata["version"] = version
            directory = self.root / dataset / task / profile
            directory.mkdir(parents=True, exist_ok=True)
            path = save_module(model, directory / f"v{version:03d}.npz", metadata=metadata)
            return ModelVersion(
                dataset=dataset, task=task, profile=profile,
                version=version, path=path, metadata=metadata,
            )

    def _next_version(self, dataset: str, task: str, profile: str) -> int:
        existing = self._version_files(dataset, task, profile)
        return (max(existing) + 1) if existing else 1

    def _version_files(self, dataset: str, task: str, profile: str) -> Dict[int, Path]:
        directory = self.root / dataset / task / profile
        if not directory.is_dir():
            return {}
        files: Dict[int, Path] = {}
        for entry in directory.glob("v*.npz"):
            stem = entry.name[1:].split(".", 1)[0]
            if stem.isdigit():
                files[int(stem)] = entry
        return files

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def versions(self, dataset: str, task: str, profile: str = "bench") -> List[ModelVersion]:
        """All published versions for one key, oldest first."""
        dataset, task, profile = (
            _sanitise(dataset, "dataset"), _sanitise(task, "task"), _sanitise(profile, "profile"),
        )
        with self._lock:
            files = self._version_files(dataset, task, profile)
            versions = []
            for number in sorted(files):
                if files[number] in self._bad_paths:
                    continue
                try:
                    metadata = load_metadata(files[number])
                except Exception as exc:
                    # Unreadable at the metadata level (truncated upload,
                    # corrupt zip): quarantine the file so latest() keeps
                    # resolving to the newest version that actually loads.
                    self._mark_bad(files[number], exc)
                    continue
                versions.append(
                    ModelVersion(
                        dataset=dataset, task=task, profile=profile,
                        version=number, path=files[number], metadata=metadata,
                    )
                )
            return versions

    def latest(self, dataset: str, task: str, profile: str = "bench") -> ModelVersion:
        """The newest published version for one key."""
        versions = self.versions(dataset, task, profile)
        if not versions:
            raise ServingError(
                f"no model published for {dataset}/{task}/{profile} under {self.root}"
            )
        return versions[-1]

    def list_all(self) -> List[ModelVersion]:
        """Every version in the registry, sorted by key then version."""
        entries: List[ModelVersion] = []
        with self._lock:
            for checkpoint in sorted(self.root.glob("*/*/*/v*.npz")):
                profile_dir = checkpoint.parent
                dataset, task, profile = (
                    profile_dir.parent.parent.name, profile_dir.parent.name, profile_dir.name,
                )
                stem = checkpoint.name[1:].split(".", 1)[0]
                if not stem.isdigit() or checkpoint in self._bad_paths:
                    continue
                try:
                    metadata = load_metadata(checkpoint)
                except Exception as exc:
                    self._mark_bad(checkpoint, exc)
                    continue
                entries.append(
                    ModelVersion(
                        dataset=dataset, task=task, profile=profile,
                        version=int(stem), path=checkpoint, metadata=metadata,
                    )
                )
        return entries

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        dataset: str,
        task: str,
        profile: str = "bench",
        version: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        dtype: Optional[DTypeLike] = None,
        compiled: bool = False,
    ) -> Tuple[Union["ClassificationModel", "CompiledModule"], ModelVersion]:
        """Rebuild and load a published model (latest version by default).

        The returned model is in eval mode with frozen parameters — it is a
        serving artefact, not a training checkpoint.  ``dtype`` selects the
        serving precision (``None`` keeps the checkpoint's stored precision);
        models are cached per ``(checkpoint, dtype)``, so concurrent servers
        requesting the same precision share one instance.

        ``compiled=True`` wraps the cached model in its (also cached, shared)
        :class:`~repro.nn.jit.CompiledModule`: every server loading the same
        version at the same precision then shares one set of traced tapes,
        which compile lazily on the first batch per batch-size bucket.

        Rollback: when following the latest version (``version=None``), a
        checkpoint that fails to load — truncated file, corrupt arrays, bad
        metadata — is quarantined and the next-newest version is tried, so a
        botched publish degrades a hot-swap into a no-op instead of taking
        serving down.  A *pinned* version that fails to load raises: the
        caller asked for that exact artefact.
        """
        resolved_dtype = np.dtype(dtype) if dtype is not None else None
        if version is not None:
            files = self._version_files(
                _sanitise(dataset, "dataset"), _sanitise(task, "task"),
                _sanitise(profile, "profile"),
            )
            if version not in files:
                raise ServingError(
                    f"version v{version} not found for {dataset}/{task}/{profile}; "
                    f"available: {sorted(files)}"
                )
            try:
                metadata = load_metadata(files[version])
                record = ModelVersion(
                    dataset=dataset.lower(), task=task.lower(), profile=profile.lower(),
                    version=version, path=files[version], metadata=metadata,
                )
                return self._load_cached(record, rng, resolved_dtype, compiled)
            except Exception as exc:
                self._mark_bad(files[version], exc)
                if isinstance(exc, ServingError):
                    raise
                raise ServingError(
                    f"pinned version v{version} of {dataset}/{task}/{profile} "
                    f"failed to load: {exc}"
                ) from exc
        candidates = self.versions(dataset, task, profile)
        if not candidates:
            raise ServingError(
                f"no model published for {dataset}/{task}/{profile} under {self.root}"
            )
        last_exc: Optional[Exception] = None
        for record in reversed(candidates):
            try:
                loaded = self._load_cached(record, rng, resolved_dtype, compiled)
            except Exception as exc:
                self._mark_bad(record.path, exc)
                last_exc = exc
                continue
            if last_exc is not None:
                get_registry().counter(
                    "registry_rollbacks_total",
                    "Loads served by an older version after the newest failed",
                ).labels().inc()
                logger.warning(
                    "registry rolled back to %s after newer checkpoint(s) failed "
                    "to load (%s)", record.name, last_exc,
                )
            return loaded
        raise ServingError(
            f"every published version of {dataset}/{task}/{profile} failed to "
            f"load; newest failure: {last_exc}"
        ) from last_exc

    def _load_cached(
        self,
        record: ModelVersion,
        rng: Optional[np.random.Generator],
        resolved_dtype: Optional[np.dtype],
        compiled: bool,
    ) -> Tuple[Union["ClassificationModel", "CompiledModule"], ModelVersion]:
        cache_key = (record.path, str(resolved_dtype) if resolved_dtype else None)
        with self._lock:
            model = self._cache.get(cache_key)
            if model is None:
                # The checkpoint-corruption fault site: an injected error here
                # is what a torn/garbled artefact produces organically, and
                # must trigger the same quarantine-and-roll-back handling.
                _fault_site("registry.load", version=record.version)
                model = self._rebuild(record, rng=rng, dtype=resolved_dtype)
                self._cache[cache_key] = model
            if not compiled:
                return model, record
            wrapper = self._compiled_cache.get(cache_key)
            if wrapper is None:
                # Power-of-two buckets: registry models serve micro-batched
                # traffic with arbitrary partial sizes; exact-size buckets
                # would retrace per distinct batch size and thrash the LRU.
                # (Padding is row-safe: registry models are per-window.)
                wrapper = model.compile(bucket_sizes=power_of_two_buckets(64))
                self._compiled_cache[cache_key] = wrapper
            return wrapper, record

    def _mark_bad(self, path: Path, exc: BaseException) -> None:
        """Quarantine an unloadable checkpoint and count the failure."""
        with self._lock:
            if path in self._bad_paths:
                return
            self._bad_paths.add(path)
        get_registry().counter(
            "registry_load_failures_total",
            "Checkpoints quarantined because they failed to load",
        ).labels().inc()
        logger.warning(
            "quarantined unloadable checkpoint %s (%s: %s)",
            path, type(exc).__name__, exc,
        )

    def _rebuild(
        self,
        record: ModelVersion,
        rng: Optional[np.random.Generator] = None,
        dtype: Optional[np.dtype] = None,
    ) -> ClassificationModel:
        metadata = record.metadata
        try:
            backbone_config = BackboneConfig(**metadata["backbone_config"])
            num_classes = int(metadata["num_classes"])
            hidden_dim = int(metadata.get("classifier_hidden_dim", 32))
        except (KeyError, TypeError) as exc:
            raise ServingError(f"checkpoint {record.path} has invalid metadata: {exc}") from exc
        generator = rng if rng is not None else np.random.default_rng(0)
        backbone = SagaBackbone(backbone_config, rng=generator)
        model = ClassificationModel(
            backbone, num_classes, classifier_hidden_dim=hidden_dim, rng=generator
        )
        # No explicit dtype means "the checkpoint's stored precision": the
        # freshly built skeleton follows the ambient policy, which may differ
        # from what was published, so conform it before loading.  Legacy
        # checkpoints (no "dtype" metadata) fall back to the precision of the
        # stored arrays themselves.
        state, _ = load_state_dict(record.path, dtype=dtype)
        target_dtype = dtype
        if target_dtype is None:
            stored = metadata.get("dtype") or checkpoint_dtype(state)
            if stored:
                target_dtype = np.dtype(stored)
        if target_dtype is not None:
            model.to(target_dtype)
        model.load_state_dict(state)
        model.eval()
        model.requires_grad_(False)
        return model
