"""Online inference serving stack (registry → ingestion → batcher → telemetry).

This package turns the trained models into a request-serving system:

* :mod:`repro.serving.registry` — versioned on-disk model registry;
* :mod:`repro.serving.ingestion` — raw IMU sample streams → preprocessed windows;
* :mod:`repro.serving.batcher` — micro-batching scheduler with a worker pool;
* :mod:`repro.serving.telemetry` — latency percentiles, throughput, queue depth,
  cross-checked against the analytic :mod:`repro.deployment.latency` model;
* :mod:`repro.serving.server` — the :class:`InferenceServer` facade and the
  top-level :func:`serve` entry point;
* :mod:`repro.serving.gateway` — the network front door: a stdlib asyncio
  HTTP/1.1 JSON gateway with admission control (bounded pending queue,
  per-client caps, deadlines) over the micro-batcher — the wire protocol is
  ``docs/PROTOCOL.md``, the operator guide ``docs/OPERATIONS.md``;
* :mod:`repro.serving.loadgen` — closed/open-loop (Poisson, bursty) load
  generation against the gateway for benchmarks.

All forwards run on the :func:`repro.nn.no_grad` fast path: no autograd graph
is recorded during serving.  See ``DESIGN.md`` for the architecture.
"""

from .batcher import BatchRecord, MicroBatcher, MicroBatcherConfig
from .gateway import GatewayConfig, InferenceGateway, serve_gateway
from .ingestion import IngestionConfig, StreamIngestor
from .loadgen import LoadResult, RetryPolicy, run_closed_loop, run_open_loop
from .registry import ModelRegistry, ModelVersion
from .server import InferenceServer, Prediction, ServerConfig, serve
from .telemetry import (
    LatencyCrossCheck,
    TelemetryCollector,
    TelemetrySnapshot,
    cross_check_latency,
)

__all__ = [
    "BatchRecord",
    "MicroBatcher",
    "MicroBatcherConfig",
    "IngestionConfig",
    "StreamIngestor",
    "ModelRegistry",
    "ModelVersion",
    "InferenceServer",
    "Prediction",
    "ServerConfig",
    "serve",
    "GatewayConfig",
    "InferenceGateway",
    "serve_gateway",
    "LoadResult",
    "RetryPolicy",
    "run_closed_loop",
    "run_open_loop",
    "LatencyCrossCheck",
    "TelemetryCollector",
    "TelemetrySnapshot",
    "cross_check_latency",
]
