"""Closed- and open-loop load generation against the HTTP gateway.

The benchmark suite needs two distinct traffic shapes to characterise
:mod:`repro.serving.gateway`:

* **closed loop** (:func:`run_closed_loop`) — ``clients`` concurrent
  connections, each issuing its next request only after the previous reply
  arrives.  Offered load adapts to service rate, so the gateway never sheds;
  this measures sustainable throughput and latency under well-behaved
  clients (the ``0.9×`` in-process-throughput acceptance gate).
* **open loop** (:func:`run_open_loop`) — arrivals follow a seeded Poisson
  process at ``rate_rps``, fired on schedule whether or not earlier requests
  have resolved (every arrival is its own asyncio task; connections come
  from a keep-alive pool that grows with concurrency).  Offered load is
  independent of service rate, so pushing ``rate_rps`` past capacity drives
  the admission controller into its ``429`` load-shed path — the shed-rate
  measurements.  ``burst_factor`` > 1 modulates the rate into a square wave
  (``burst_factor × rate`` half the period, the remainder of the rate budget
  in the other half) to model bursty traces rather than smooth Poisson.

Both return a :class:`LoadResult` with per-status counts, latency
percentiles, and shed rate — the exact fields
``benchmarks/test_gateway_throughput.py`` publishes into
``BENCH_gateway_throughput.json``.

Everything here is stdlib + asyncio: the HTTP client is a minimal
HTTP/1.1 implementation over ``asyncio.open_connection`` (keep-alive,
``Content-Length`` bodies) because the point is to drive *our* server with
hundreds of concurrent clients from one process, not to reimplement a
browser.  Sync entry points wrap ``asyncio.run`` so benchmarks and tests
stay synchronous.
"""

from __future__ import annotations

import asyncio
import base64
import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ServingError
from ..logging_utils import get_logger

logger = get_logger(__name__)

__all__ = [
    "LoadResult",
    "RetryPolicy",
    "batch_body",
    "predict_body",
    "run_closed_loop",
    "run_open_loop",
]

_HEADER_TEMPLATE = (
    "POST {path} HTTP/1.1\r\n"
    "Host: {host}\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: {length}\r\n"
    "X-Client-Id: {client_id}\r\n"
    "Connection: keep-alive\r\n\r\n"
)

BodyFn = Callable[[int], bytes]
"""Maps a request index to its JSON body (pre-encoded bytes)."""


@dataclass
class LoadResult:
    """Outcome of one load-generation run (closed or open loop).

    ``offered`` counts scheduled arrivals; ``completed`` the requests that
    received *any* HTTP response (sheds included — a ``429`` is the gateway
    working as designed, not an error); ``errors`` the requests that died
    below HTTP (connection refused/reset, truncated reply).
    """

    mode: str
    duration_s: float
    offered: int = 0
    status_counts: Dict[int, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    errors: int = 0
    #: Shed responses (429/503) retried under a :class:`RetryPolicy`; the
    #: eventual outcome is counted once in ``status_counts``.
    retries: int = 0
    #: Requests whose retry budget ran out (their last shed status is what
    #: lands in ``status_counts``).
    give_ups: int = 0

    @property
    def completed(self) -> int:
        return sum(self.status_counts.values())

    @property
    def succeeded(self) -> int:
        return self.status_counts.get(200, 0)

    @property
    def shed(self) -> int:
        """Responses shed by admission control (429 + 503)."""
        return self.status_counts.get(429, 0) + self.status_counts.get(503, 0)

    @property
    def shed_rate(self) -> float:
        """Fraction of completed requests the gateway shed."""
        return self.shed / self.completed if self.completed else 0.0

    @property
    def throughput_rps(self) -> float:
        """Successful (200) responses per second of wall clock."""
        return self.succeeded / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of successful-request latency, ms."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def summary(self) -> Dict[str, float]:
        """The flat metrics dict the gateway benchmark publishes."""
        return {
            "offered": float(self.offered),
            "completed": float(self.completed),
            "succeeded": float(self.succeeded),
            "shed": float(self.shed),
            "errors": float(self.errors),
            "shed_rate": self.shed_rate,
            "retries": float(self.retries),
            "give_ups": float(self.give_ups),
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_percentile(50.0),
            "latency_p99_ms": self.latency_percentile(99.0),
        }

    def record(self, status: int, latency_ms: float) -> None:
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        if status == 200:
            self.latencies_ms.append(latency_ms)


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded, jittered exponential backoff for shed (429/503) responses.

    Honors the gateway's ``Retry-After`` header: the delay for an attempt is
    ``max(Retry-After, base_delay_s * 2**attempt)``, capped at
    ``max_delay_s``, then jittered by up to ``±jitter`` of itself.  The
    jitter stream is seeded per ``(seed, request, attempt)``, so a load run
    with retries is exactly as reproducible as one without — the property
    every benchmark in this repo is built on.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    jitter: float = 0.5
    honor_retry_after: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ServingError(
                "need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServingError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(
        self, attempt: int, retry_after_s: Optional[float], request_index: int
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based) of one request."""
        delay = self.base_delay_s * (2.0 ** attempt)
        if self.honor_retry_after and retry_after_s is not None:
            delay = max(delay, retry_after_s)
        delay = min(delay, self.max_delay_s)
        if self.jitter > 0.0:
            rng = random.Random(f"{self.seed}:{request_index}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


def _retry_after_seconds(headers: Dict[str, str]) -> Optional[float]:
    value = headers.get("retry-after")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:  # repro: noqa[REP107] — malformed Retry-After == header absent
        return None


class _Connection:
    """One keep-alive HTTP/1.1 client connection (asyncio streams)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def ensure_open(self) -> None:
        if self.writer is None or self.writer.is_closing():
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port, limit=1 << 20
            )

    async def request(
        self, path: str, body: bytes, client_id: str
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Send one POST, return ``(status, body, headers)``; raises on
        transport failure.  Header names come back lower-cased."""
        await self.ensure_open()
        assert self.reader is not None and self.writer is not None
        head = _HEADER_TEMPLATE.format(
            path=path, host=self.host, length=len(body), client_id=client_id
        ).encode("ascii")
        self.writer.write(head + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2:
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("truncated response headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self.reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            self.close()
        return status, payload, headers

    def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
            except RuntimeError:  # repro: noqa[REP107] — loop already closed at teardown
                pass
        self.reader = None
        self.writer = None


def _parse_url(url: str) -> Tuple[str, int, str]:
    """``http://host:port[/base]`` → ``(host, port, base_path)``."""
    if not url.startswith("http://"):
        raise ServingError(f"load generator only speaks http://, got {url!r}")
    rest = url[len("http://"):]
    hostport, slash, base = rest.partition("/")
    host, colon, port = hostport.partition(":")
    if not colon:
        port = "80"
    try:
        return host, int(port), ("/" + base if slash else "")
    except ValueError:
        raise ServingError(f"bad port in url {url!r}") from None


# ----------------------------------------------------------------------
# Request execution (shared by both loops)
# ----------------------------------------------------------------------
async def _perform(
    connection: _Connection,
    path: str,
    body: bytes,
    client_id: str,
    result: LoadResult,
    retry: Optional[RetryPolicy],
    request_index: int,
) -> bool:
    """Issue one logical request, retrying sheds per ``retry``; records the
    terminal outcome (exactly once) into ``result``.  Returns whether the
    connection is still good for reuse."""
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            status, _, headers = await connection.request(path, body, client_id)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # Below-HTTP failures are terminal: without a response there is
            # no Retry-After contract to honor, and retrying a request the
            # server may have half-processed would skew the offered counts.
            result.errors += 1
            connection.close()
            return False
        if status not in (429, 503) or retry is None:
            result.record(status, 1000.0 * (time.perf_counter() - started))
            return True
        if attempt >= retry.max_retries:
            result.give_ups += 1
            result.record(status, 1000.0 * (time.perf_counter() - started))
            return True
        result.retries += 1
        await asyncio.sleep(
            retry.delay_s(attempt, _retry_after_seconds(headers), request_index)
        )
        attempt += 1


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------
async def _closed_loop_async(
    url: str,
    path: str,
    body_fn: BodyFn,
    clients: int,
    requests_per_client: int,
    retry: Optional[RetryPolicy],
) -> LoadResult:
    host, port, base = _parse_url(url)
    result = LoadResult(mode="closed", duration_s=0.0)
    result.offered = clients * requests_per_client

    async def one_client(client_index: int) -> None:
        connection = _Connection(host, port)
        client_id = f"closed-{client_index}"
        try:
            for i in range(requests_per_client):
                request_index = client_index * requests_per_client + i
                await _perform(
                    connection, base + path, body_fn(request_index), client_id,
                    result, retry, request_index,
                )
        finally:
            connection.close()

    started = time.perf_counter()
    await asyncio.gather(*[one_client(c) for c in range(clients)])
    result.duration_s = time.perf_counter() - started
    return result


def run_closed_loop(
    url: str,
    path: str,
    body_fn: BodyFn,
    clients: int = 8,
    requests_per_client: int = 32,
    retry: Optional[RetryPolicy] = None,
) -> LoadResult:
    """``clients`` concurrent keep-alive connections, each issuing
    ``requests_per_client`` sequential POSTs of ``body_fn(i)`` to ``path``.

    ``retry`` opts shed (429/503) responses into seeded, ``Retry-After``-aware
    backoff; ``None`` (the default, and what the throughput benchmarks use)
    records every shed as-is.
    """
    return asyncio.run(
        _closed_loop_async(url, path, body_fn, clients, requests_per_client, retry)
    )


# ----------------------------------------------------------------------
# Open loop
# ----------------------------------------------------------------------
def _arrival_times(
    rate_rps: float,
    duration_s: float,
    seed: int,
    burst_factor: float,
    burst_period_s: float,
) -> List[float]:
    """Seeded Poisson arrival offsets over ``[0, duration_s)``.

    ``burst_factor`` > 1 makes the rate a square wave with the same mean:
    ``burst_factor × rate`` during the first half of each period and
    ``(2 - burst_factor) × rate`` (floored at a trickle) in the second —
    bursty traces stress the admission queue far harder than a smooth
    process at equal average load.
    """
    rng = random.Random(seed)
    arrivals: List[float] = []
    t = 0.0
    while t < duration_s:
        if burst_factor > 1.0:
            phase = (t % burst_period_s) / burst_period_s
            local_rate = rate_rps * (
                burst_factor if phase < 0.5 else max(2.0 - burst_factor, 0.05)
            )
        else:
            local_rate = rate_rps
        t += rng.expovariate(local_rate)
        if t < duration_s:
            arrivals.append(t)
    return arrivals


async def _open_loop_async(
    url: str,
    path: str,
    body_fn: BodyFn,
    rate_rps: float,
    duration_s: float,
    seed: int,
    burst_factor: float,
    burst_period_s: float,
    num_client_ids: int,
    retry: Optional[RetryPolicy],
) -> LoadResult:
    host, port, base = _parse_url(url)
    arrivals = _arrival_times(rate_rps, duration_s, seed, burst_factor, burst_period_s)
    result = LoadResult(mode="open", duration_s=0.0)
    result.offered = len(arrivals)
    pool: "asyncio.Queue[_Connection]" = asyncio.Queue()
    tasks: List[asyncio.Task] = []

    async def fire(index: int) -> None:
        try:
            connection = pool.get_nowait()
        except asyncio.QueueEmpty:
            connection = _Connection(host, port)
        client_id = f"open-{index % num_client_ids}"
        reusable = await _perform(
            connection, base + path, body_fn(index), client_id, result, retry, index
        )
        if reusable:
            pool.put_nowait(connection)

    epoch = time.perf_counter()
    for index, offset in enumerate(arrivals):
        delay = epoch + offset - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(index)))
    if tasks:
        await asyncio.gather(*tasks)
    result.duration_s = time.perf_counter() - epoch
    while not pool.empty():
        pool.get_nowait().close()
    return result


def run_open_loop(
    url: str,
    path: str,
    body_fn: BodyFn,
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    burst_factor: float = 1.0,
    burst_period_s: float = 1.0,
    num_client_ids: int = 64,
    retry: Optional[RetryPolicy] = None,
) -> LoadResult:
    """Poisson arrivals at ``rate_rps`` for ``duration_s`` seconds, fired on
    schedule regardless of outstanding requests (offered load is independent
    of service rate — the saturation/shed measurement).  ``burst_factor`` > 1
    turns the rate into a square wave of equal mean (bursty traces);
    requests rotate across ``num_client_ids`` distinct ``X-Client-Id``
    values so the per-client cap is not the first limit hit.  ``retry``
    opts shed responses into seeded ``Retry-After``-aware backoff (retried
    sheds still count once, at their terminal status).
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise ServingError("rate_rps and duration_s must be positive")
    if burst_factor < 1.0 or burst_factor >= 2.0:
        raise ServingError(f"burst_factor must be in [1, 2), got {burst_factor}")
    return asyncio.run(
        _open_loop_async(
            url, path, body_fn, rate_rps, duration_s, seed,
            burst_factor, burst_period_s, max(1, num_client_ids), retry,
        )
    )


def predict_body(window: np.ndarray) -> bytes:
    """Encode one window as a ``/v1/predict`` binary-payload body."""
    arr = np.ascontiguousarray(np.asarray(window, dtype="<f4"))
    return json.dumps(
        {"window_b64": base64.b64encode(arr.tobytes()).decode("ascii")}
    ).encode("utf-8")


def batch_body(windows: np.ndarray) -> bytes:
    """Encode a ``(N, L, C)`` stack as a ``/v1/batch`` binary-payload body."""
    arr = np.ascontiguousarray(np.asarray(windows, dtype="<f4"))
    return json.dumps(
        {"windows_b64": base64.b64encode(arr.tobytes()).decode("ascii")}
    ).encode("utf-8")
