"""The inference server: registry → ingestion → micro-batcher → telemetry.

:class:`InferenceServer` is the top of the serving stack.  It owns a
:class:`~repro.serving.batcher.MicroBatcher` whose handler runs the model's
no-grad inference fast path, resolves each request into a :class:`Prediction`
(label, probabilities, end-to-end latency) and feeds a
:class:`~repro.serving.telemetry.TelemetryCollector`.  Models come either
directly (``InferenceServer(model=...)``) or from a
:class:`~repro.serving.registry.ModelRegistry` key, which is how a production
deployment would pin a published version.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ServingError
from ..logging_utils import get_logger
from ..models.composite import ClassificationModel, softmax_probabilities
from ..nn.jit import CompiledModule, CompileStats
from ..nn.tensor import DTypeLike, _validate_dtype
from ..obs.exporter import ObsHTTPServer
from ..obs.tracing import get_tracer
from .batcher import BatchRecord, MicroBatcher, MicroBatcherConfig
from .ingestion import IngestionConfig, StreamIngestor
from .registry import ModelRegistry, ModelVersion
from .telemetry import TelemetryCollector, TelemetrySnapshot

logger = get_logger(__name__)


@dataclass(frozen=True)
class Prediction:
    """One classified window."""

    label: int
    probabilities: np.ndarray
    latency_ms: float

    @property
    def confidence(self) -> float:
        return float(self.probabilities[self.label])


@dataclass
class ServerConfig:
    """End-to-end serving configuration.

    ``inference_dtype`` is the serving precision: float32 halves the memory
    traffic of every forward and is what real on-device inference runs, so it
    is the default.  ``None`` serves in whatever precision the model already
    has (use this when bit-exact agreement with an offline float64 model
    matters more than throughput).  Training is unaffected either way — the
    cast happens on the serving copy, never on the caller's model.

    ``compile`` routes batched forwards through the served model's
    trace-and-replay executor (:mod:`repro.nn.jit`): the first batch per
    batch-size bucket traces the forward, subsequent batches replay the
    optimised tape on raw arrays.  Buckets are powers of two up to
    ``max_batch_size`` (partial batches pad up to the nearest bucket), and
    anything untraceable degrades to the eager no-grad path, so disabling
    compilation is only needed for debugging or A/B measurement.

    ``telemetry`` controls whether the server records into its
    :class:`~repro.serving.telemetry.TelemetryCollector` (and mirrors compile
    stats into the metrics registry).  It exists for A/B measurement of the
    instrumentation overhead itself — ``benchmarks/test_observability_overhead.py``
    serves with it on and off and gates the ratio; production serving leaves
    it on.  ``stats()`` still works when off, it just reports no traffic.

    ``metrics_port`` attaches a live :class:`~repro.obs.exporter.ObsHTTPServer`
    to the server's lifetime: ``/metrics``, ``/metrics.json``, ``/healthz``
    (wired to the micro-batcher's liveness) and ``/traces`` on
    ``127.0.0.1:<port>``.  ``0`` binds an ephemeral port (read it back from
    ``server.obs_server.port``); ``None`` (the default) serves no endpoint.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    num_workers: int = 1
    queue_capacity: int = 4096
    inference_dtype: Optional[Union[str, DTypeLike]] = "float32"
    compile: bool = True
    telemetry: bool = True
    metrics_port: Optional[int] = None
    ingestion: IngestionConfig = field(default_factory=IngestionConfig)

    def compile_bucket_sizes(self) -> list:
        """Batch-size buckets for the compiled executor: powers of two up to
        (and always including) ``max_batch_size``."""
        from ..nn.jit.compiled import power_of_two_buckets

        return power_of_two_buckets(self.max_batch_size)

    def __post_init__(self) -> None:
        if self.metrics_port is not None and not 0 <= int(self.metrics_port) <= 65535:
            raise ServingError(
                f"metrics_port must be None or in [0, 65535], got {self.metrics_port}"
            )
        if self.inference_dtype is not None:
            try:
                # Same supported set as the tensor engine's precision policy —
                # float16 et al. have no parity guarantee and no engine support.
                resolved = _validate_dtype(self.inference_dtype)
            except (ValueError, TypeError) as exc:
                raise ServingError(
                    f"inference_dtype must be a supported floating dtype or None: {exc}"
                ) from exc
            self.inference_dtype = str(resolved)

    def batcher_config(self) -> MicroBatcherConfig:
        return MicroBatcherConfig(
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            num_workers=self.num_workers,
            queue_capacity=self.queue_capacity,
        )


class InferenceServer:
    """Serve classification requests over a published or in-memory model."""

    def __init__(
        self,
        model: Optional[ClassificationModel] = None,
        registry: Optional[ModelRegistry] = None,
        dataset: Optional[str] = None,
        task: Optional[str] = None,
        profile: str = "bench",
        version: Optional[int] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        requested_dtype = (
            np.dtype(self.config.inference_dtype)
            if self.config.inference_dtype is not None
            else None
        )
        preset_compiled: Optional[CompiledModule] = None
        if isinstance(model, CompiledModule):
            # A pre-compiled model (e.g. from ModelRegistry.load(compiled=True))
            # unwraps for the precision logic; its tapes are reused when no
            # cast copy is needed.
            preset_compiled, model = model, model.module
        if model is None:
            if registry is None or dataset is None or task is None:
                raise ServingError(
                    "provide either a model or a registry plus (dataset, task)"
                )
            model, self.model_version = registry.load(
                dataset, task, profile=profile, version=version, dtype=requested_dtype
            )
        else:
            self.model_version: Optional[ModelVersion] = None
            if requested_dtype is not None and model.dtype != requested_dtype:
                # Serve a private cast copy: the caller's model (often still
                # training, or shared with offline evaluation) keeps its
                # precision untouched.
                model = copy.deepcopy(model).to(requested_dtype)
                preset_compiled = None  # compiled against the original params
        model.eval()
        self.model = model
        self._compiled: Optional[CompiledModule] = None
        if self.config.compile:
            if (
                preset_compiled is not None
                and preset_compiled.module is model
                and preset_compiled.bucket_sizes  # bucketed: safe under micro-batching
            ):
                self._compiled = preset_compiled
            else:
                # Rewrap (sharing the module, not the tapes) when the preset
                # has exact-size buckets: the micro-batcher emits arbitrary
                # partial batch sizes, which would retrace per size.
                self._compiled = CompiledModule(
                    model, bucket_sizes=self.config.compile_bucket_sizes()
                )
        # Requests are cast to the *served* model's precision at submit time,
        # so a float64 window never promotes a float32 forward.
        self._compute_dtype = model.dtype
        self.telemetry = TelemetryCollector()
        self._telemetry_enabled = bool(self.config.telemetry)
        self._batcher = MicroBatcher(
            handler=self._run_batch,
            config=self.config.batcher_config(),
            on_batch=self._on_batch if self._telemetry_enabled else None,
        )
        if self._telemetry_enabled and self._compiled is not None:
            self._register_compile_stat_gauges()
        # The live exposition endpoint shares the server's lifetime: started
        # here, stopped by close().  /healthz reflects the batcher's liveness,
        # so a scrape after close() reports unhealthy rather than vanishing.
        self.obs_server: Optional[ObsHTTPServer] = None
        if self.config.metrics_port is not None:
            self.obs_server = ObsHTTPServer(
                registry=self.telemetry.registry, port=int(self.config.metrics_port)
            )
            self.obs_server.add_health_check("batcher", lambda: not self._batcher.closed)
            self.obs_server.start()
        if self.model_version is not None:
            logger.info("serving %s", self.model_version.name)

    def _register_compile_stat_gauges(self) -> None:
        """Mirror the compiled executor's counters into the metrics registry.

        Callback gauges, not pushed values: ``CompileStats`` is already the
        executor's source of truth, so the registry polls it at read time and
        the serving hot path pays nothing.  The collector label keeps multiple
        servers in one process distinct.
        """
        family = self.telemetry.registry.gauge(
            "serving_compile_stat",
            "Compiled-executor counters (traces/replays/fallbacks/...)",
            labels=("collector", "stat"),
        )
        compiled = self._compiled
        for stat in (
            "traces", "replays", "fallbacks",
            "padded_replays", "self_check_failures", "evictions", "quarantines",
        ):
            family.labels(collector=self.telemetry.name, stat=stat).set_function(
                lambda stat=stat: float(getattr(compiled.stats, stat))
            )
        # Quarantines also get a first-class gauge: "how many tapes has this
        # server poisoned after a replay raised" is the signal the failure
        # runbook (docs/OPERATIONS.md) alerts on.
        self.telemetry.registry.gauge(
            "serving_quarantined_tapes",
            "Tape signatures quarantined to eager fallback after a replay raised",
            labels=("collector",),
        ).labels(collector=self.telemetry.name).set_function(
            lambda: float(compiled.stats.quarantines)
        )

    # ------------------------------------------------------------------
    # Batched forward (worker threads)
    # ------------------------------------------------------------------
    def _run_batch(self, windows: np.ndarray) -> np.ndarray:
        """One coalesced forward on the serving hot path; returns probabilities.

        With compilation on (the default) the logits come from the tape
        executor — zero Tensor construction per batch — and the softmax
        mirrors the eager one bit for bit, so predictions are identical to
        ``model.predict_proba`` whichever path ran.
        """
        if self._compiled is not None:
            return softmax_probabilities(self._compiled.run(windows))
        return self.model.predict_proba(windows)

    def _on_batch(self, record: BatchRecord) -> None:
        self.telemetry.record_batch(
            batch_size=record.batch_size,
            queue_depth=record.queue_depth_after,
            wait_ms=record.wait_ms,
            compute_ms=record.compute_ms,
        )

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    @property
    def window_shape(self) -> tuple:
        """The ``(window_length, channels)`` every submitted window must have.

        The network gateway validates request payloads against this *before*
        submitting, so a malformed request costs a 400 response instead of an
        exception on the submit path.
        """
        return (
            self.model.backbone.config.window_length,
            self.model.backbone.config.input_channels,
        )

    def submit(self, window: np.ndarray) -> "Future[Prediction]":
        """Enqueue one preprocessed window; resolves to a :class:`Prediction`.

        When the process tracer samples this request, one trace follows it
        end to end: ``submit`` (validation + enqueue, caller's thread),
        ``queue.wait`` / ``batch.assemble`` / ``forward`` (batcher worker),
        ``response`` (future resolution) — all under a root ``request`` span.
        Unsampled requests carry ``trace_id=None`` and skip every recording.
        A full queue raises :class:`~repro.exceptions.QueueFullError` — the
        retryable rejection admission layers translate into a 429.
        """
        window = np.asarray(window, dtype=self._compute_dtype)
        expected = self.window_shape
        if window.shape != expected:
            raise ServingError(
                f"window shape {window.shape} does not match the served model's "
                f"(window_length, channels) = {expected}"
            )
        submitted = time.perf_counter()
        trace_id = get_tracer().sample()
        inner = self._batcher.submit(window, trace_id=trace_id)
        if trace_id is not None:
            get_tracer().record(trace_id, "submit", submitted, time.perf_counter())
        result: "Future[Prediction]" = Future()

        def _resolve(done: "Future[np.ndarray]") -> None:
            exc = done.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            probabilities = done.result()
            resolved_at = time.perf_counter()
            latency_ms = 1000.0 * (resolved_at - submitted)
            if self._telemetry_enabled:
                self.telemetry.record_request(latency_ms)
            result.set_result(
                Prediction(
                    label=int(np.argmax(probabilities)),
                    probabilities=probabilities,
                    latency_ms=latency_ms,
                )
            )
            if trace_id is not None:
                tracer = get_tracer()
                finished = time.perf_counter()
                tracer.record(trace_id, "response", resolved_at, finished)
                # No args dict: the root span's own duration IS the latency.
                tracer.record(trace_id, "request", submitted, finished)

        inner.add_done_callback(_resolve)
        return result

    def predict(self, window: np.ndarray, timeout: Optional[float] = 30.0) -> Prediction:
        """Synchronous single-window classification."""
        return self.submit(window).result(timeout=timeout)

    def predict_many(
        self, windows: Sequence[np.ndarray], timeout: Optional[float] = 60.0
    ) -> List[Prediction]:
        """Classify a burst of windows, letting the batcher coalesce them."""
        futures = [self.submit(window) for window in windows]
        return [future.result(timeout=timeout) for future in futures]

    def classify_stream(
        self,
        chunks: Iterable[np.ndarray],
        ingestor: Optional[StreamIngestor] = None,
        timeout: Optional[float] = 60.0,
    ) -> List[Prediction]:
        """End-to-end path: raw sample chunks → windows → batched predictions."""
        if ingestor is None:
            ingestor = StreamIngestor(self.config.ingestion)
        futures: List["Future[Prediction]"] = []
        for chunk in chunks:
            for window in ingestor.push(chunk):
                futures.append(self.submit(window))
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> TelemetrySnapshot:
        return self.telemetry.snapshot()

    def compile_stats(self) -> Optional[CompileStats]:
        """Trace/replay/fallback counters of the compiled executor (None when
        serving eagerly)."""
        return self._compiled.stats if self._compiled is not None else None

    @property
    def queue_depth(self) -> int:
        return self._batcher.queue_depth

    def close(self) -> None:
        self._batcher.close()
        if self.obs_server is not None:
            self.obs_server.stop()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    model: Optional[ClassificationModel] = None,
    registry: Optional[ModelRegistry] = None,
    dataset: Optional[str] = None,
    task: Optional[str] = None,
    profile: str = "bench",
    version: Optional[int] = None,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    num_workers: int = 1,
    inference_dtype: Optional[Union[str, DTypeLike]] = "float32",
    compile: bool = True,
    telemetry: bool = True,
    metrics_port: Optional[int] = None,
    ingestion: Optional[IngestionConfig] = None,
) -> InferenceServer:
    """Build and start an :class:`InferenceServer` (the ``repro.serve`` entry point).

    Serving defaults to float32 — the precision real on-device inference
    uses — regardless of the precision the model was trained in; pass
    ``inference_dtype=None`` to serve in the model's own precision (bit-exact
    with the offline float64 model), or ``"float64"`` to force full precision.

    >>> from repro import serve
    >>> server = serve(model=trained_model, max_batch_size=64)
    >>> prediction = server.predict(window)
    """
    config = ServerConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        num_workers=num_workers,
        inference_dtype=inference_dtype,
        compile=compile,
        telemetry=telemetry,
        metrics_port=metrics_port,
    )
    if ingestion is not None:
        config.ingestion = ingestion
    return InferenceServer(
        model=model, registry=registry, dataset=dataset, task=task,
        profile=profile, version=version, config=config,
    )
