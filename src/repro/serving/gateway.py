"""The network front door: an asyncio HTTP/1.1 JSON gateway over the server.

:class:`InferenceGateway` completes the serving stack's wire surface (the
request-path half of the ROADMAP's "network front door"; the observability
half is :mod:`repro.obs.exporter`).  It is a stdlib-only asyncio HTTP/1.1
server — ``asyncio.start_server`` plus hand-rolled request parsing, no
third-party dependencies — that bridges network clients to the thread-based
:class:`~repro.serving.server.InferenceServer`:

* ``POST /v1/predict`` — one preprocessed window, one prediction;
* ``POST /v1/batch`` — many windows in one request (the batcher coalesces);
* ``POST /v1/stream`` — a chunked per-client streaming-ingestion session:
  newline-delimited JSON messages of raw samples in, a chunked stream of
  per-window predictions out, with one :class:`~repro.serving.ingestion.
  StreamIngestor` per session;
* ``GET /healthz`` — gateway liveness (503 while draining).

The full wire protocol — request/response schemas, the binary window
encoding, status-code and ``Retry-After`` semantics, stream framing and the
versioning policy — is documented in ``docs/PROTOCOL.md``; the operator view
(capacity knobs, deployment, debugging) in ``docs/OPERATIONS.md``.

Concurrency model
-----------------
The gateway's event loop runs in one daemon thread; handlers never execute
model code.  Each admitted window is submitted to the
:class:`~repro.serving.batcher.MicroBatcher` (whose worker threads run the
compiled forward) and the resulting ``concurrent.futures.Future`` is awaited
via :func:`asyncio.wrap_future`, so request parsing overlaps batched compute
instead of serialising with it.  All admission state (pending counter,
per-client in-flight map) is touched only on the event-loop thread — no
locks on the request path.

Admission control (the load-shed state machine)
-----------------------------------------------
Every request passes one atomic admission check before its body is parsed:

1. **draining** — ``stop()`` was called: ``503`` + ``Retry-After`` (new
   requests shed; admitted ones run to completion);
2. **gateway pending bound** — ``max_pending`` admitted-but-unresolved
   requests: ``429`` + ``Retry-After``;
3. **per-client in-flight cap** — ``max_inflight_per_client`` per
   ``X-Client-Id`` (or peer address): ``429`` + ``Retry-After``;
4. the micro-batcher's own bounded queue —
   :class:`~repro.exceptions.QueueFullError` maps to ``429``;
5. **deadline** — an admitted request that does not resolve within
   ``deadline_ms`` of its request line answers ``503`` (its batch still
   completes; only the reply is abandoned).

Sheds are counted per reason in ``gateway_shed_total{reason=...}`` and every
response increments ``gateway_requests_total{route,status}`` in the same
metrics registry the server's telemetry uses, so an attached
:class:`~repro.obs.exporter.ObsHTTPServer` exports gateway series with no
extra wiring (``GatewayConfig(metrics_port=...)`` attaches one, with
``gateway`` and ``batcher`` health checks).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import FaultInjectedError, GatewayError, QueueFullError, ServingError
from ..faults import asite as _fault_asite
from ..logging_utils import get_logger
from ..obs.exporter import ObsHTTPServer
from .ingestion import StreamIngestor
from .server import InferenceServer
from .telemetry import LATENCY_BUCKETS_MS, TELEMETRY_RESERVOIR_SIZE

logger = get_logger(__name__)

__all__ = [
    "GatewayConfig",
    "InferenceGateway",
    "serve_gateway",
]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"

#: Reason phrases for every status the protocol documents (plus generic ones
#: the parser can produce).  docs/PROTOCOL.md is the authoritative list.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Routes with bounded label cardinality for ``gateway_requests_total``.
KNOWN_ROUTES = ("/v1/predict", "/v1/batch", "/v1/stream", "/healthz")

_MAX_HEADER_BYTES = 64 * 1024
_MAX_HEADER_COUNT = 100
_READ_CHUNK = 64 * 1024


@dataclass
class GatewayConfig:
    """Capacity and protocol knobs of the HTTP gateway.

    The three admission knobs trade tail latency for shed rate (see
    ``docs/OPERATIONS.md`` for sizing guidance):

    * ``max_pending`` — admitted-but-unresolved requests across all clients;
      beyond it new requests shed with ``429`` + ``Retry-After``.  Bounds
      gateway memory and queueing delay: pending × per-window service time
      approximates worst-case queueing latency.
    * ``max_inflight_per_client`` — concurrent requests per ``X-Client-Id``
      (falling back to the peer address), so one greedy client cannot occupy
      the whole pending budget.
    * ``deadline_ms`` — per-request wall-clock budget measured from the
      request line; an admitted request that misses it answers ``503``.

    ``max_body_bytes`` bounds any unary request body (``413`` beyond; for
    streaming sessions it bounds each NDJSON message instead, so session
    length is unbounded while per-message memory stays bounded).
    ``max_batch_windows`` caps the window count of one ``/v1/batch`` request.
    ``metrics_port`` attaches an :class:`~repro.obs.exporter.ObsHTTPServer`
    over the server's metrics registry for the gateway's lifetime (``0`` =
    ephemeral), with ``gateway`` and ``batcher`` health checks wired in.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 512
    max_inflight_per_client: int = 64
    deadline_ms: float = 2000.0
    max_body_bytes: int = 8 * 1024 * 1024
    max_batch_windows: int = 1024
    retry_after_seconds: float = 1.0
    keepalive_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    client_id_header: str = "x-client-id"
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= int(self.port) <= 65535:
            raise GatewayError(f"port must be in [0, 65535], got {self.port}")
        for name in ("max_pending", "max_inflight_per_client", "max_batch_windows"):
            if int(getattr(self, name)) < 1:
                raise GatewayError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in (
            "deadline_ms", "max_body_bytes", "retry_after_seconds",
            "keepalive_timeout_s", "drain_timeout_s",
        ):
            if float(getattr(self, name)) <= 0:
                raise GatewayError(f"{name} must be positive, got {getattr(self, name)}")
        if self.metrics_port is not None and not 0 <= int(self.metrics_port) <= 65535:
            raise GatewayError(
                f"metrics_port must be None or in [0, 65535], got {self.metrics_port}"
            )


class _HTTPError(Exception):
    """A request that must be answered with an error status.

    ``close`` forces ``Connection: close`` — set when the connection state is
    unrecoverable (an unread oversized body, broken framing).
    """

    def __init__(self, status: int, code: str, message: str, close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.close = close


@dataclass
class _Head:
    """Parsed request line + headers (body still on the wire)."""

    method: str
    path: str
    version: str
    headers: Dict[str, str]
    received_at: float

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def chunked(self) -> bool:
        return "chunked" in self.headers.get("transfer-encoding", "").lower()


def _decode_window(payload: Dict[str, Any], expected: Tuple[int, int]) -> np.ndarray:
    """One window from ``{"window": [[...]]}`` or ``{"window_b64": "..."}``."""
    if "window_b64" in payload:
        flat = _decode_b64_floats(payload["window_b64"])
        if flat.size != expected[0] * expected[1]:
            raise _HTTPError(
                400, "invalid_window",
                f"window_b64 holds {flat.size} float32 values, expected "
                f"{expected[0]}*{expected[1]} for shape {expected}",
            )
        return flat.reshape(expected)
    if "window" not in payload:
        raise _HTTPError(400, "invalid_window", "payload needs 'window' or 'window_b64'")
    try:
        window = np.asarray(payload["window"], dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise _HTTPError(400, "invalid_window", f"window is not numeric: {exc}") from None
    if window.shape != expected:
        raise _HTTPError(
            400, "invalid_window",
            f"window shape {window.shape} does not match the served model's "
            f"(window_length, channels) = {expected}",
        )
    return window


def _decode_windows(
    payload: Dict[str, Any], expected: Tuple[int, int], max_windows: int
) -> np.ndarray:
    """A ``(N, L, C)`` stack from ``{"windows": ...}`` or ``{"windows_b64": ...}``."""
    if "windows_b64" in payload:
        flat = _decode_b64_floats(payload["windows_b64"])
        per_window = expected[0] * expected[1]
        if flat.size == 0 or flat.size % per_window != 0:
            raise _HTTPError(
                400, "invalid_window",
                f"windows_b64 holds {flat.size} float32 values, not a positive "
                f"multiple of {per_window} (one {expected} window)",
            )
        windows = flat.reshape(-1, *expected)
    elif "windows" in payload:
        try:
            windows = np.asarray(payload["windows"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, "invalid_window", f"windows are not numeric: {exc}") from None
        if windows.ndim != 3 or windows.shape[1:] != expected or windows.shape[0] == 0:
            raise _HTTPError(
                400, "invalid_window",
                f"windows must have shape (N, {expected[0]}, {expected[1]}) with "
                f"N >= 1, got {windows.shape}",
            )
    else:
        raise _HTTPError(400, "invalid_window", "payload needs 'windows' or 'windows_b64'")
    if windows.shape[0] > max_windows:
        raise _HTTPError(
            413, "too_many_windows",
            f"{windows.shape[0]} windows exceed the per-request cap of {max_windows}; "
            "split into several /v1/batch requests",
        )
    return windows


def _decode_b64_floats(value: Any) -> np.ndarray:
    """Base64 of little-endian float32 → 1-D array (the binary wire encoding)."""
    if not isinstance(value, str):
        raise _HTTPError(400, "invalid_window", "base64 field must be a string")
    try:
        raw = base64.b64decode(value, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise _HTTPError(400, "invalid_window", f"invalid base64: {exc}") from None
    if len(raw) % 4 != 0:
        raise _HTTPError(
            400, "invalid_window",
            f"base64 payload is {len(raw)} bytes, not a multiple of 4 (float32)",
        )
    return np.frombuffer(raw, dtype="<f4").astype(np.float32, copy=False)


class InferenceGateway:
    """Asyncio HTTP/1.1 front end over one :class:`InferenceServer`.

    >>> gateway = InferenceGateway(server, GatewayConfig(port=0)).start()
    >>> urllib.request.urlopen(urllib.request.Request(
    ...     f"{gateway.url}/v1/predict", data=json.dumps({"window": ...}).encode(),
    ...     headers={"Content-Type": "application/json"}))
    >>> gateway.stop()   # graceful: in-flight complete, new requests shed

    The event loop runs in a daemon thread, so the gateway composes with
    synchronous code (tests, examples, the load harness) exactly like
    :class:`~repro.obs.exporter.ObsHTTPServer`; it is also a context manager.
    """

    def __init__(
        self, server: InferenceServer, config: Optional[GatewayConfig] = None
    ) -> None:
        self.server = server
        self.config = config if config is not None else GatewayConfig()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._startup_error: Optional[BaseException] = None
        self._bound_port: Optional[int] = None
        self._conn_tasks: set = set()
        self._draining = False
        # Admission state: event-loop thread only (no locks on the hot path).
        self._pending = 0
        self._inflight: Dict[str, int] = {}
        self.obs_server: Optional[ObsHTTPServer] = None
        self._register_metrics()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        registry = self.server.telemetry.registry
        self._requests_total = registry.counter(
            "gateway_requests_total", "HTTP responses by route and status",
            labels=("route", "status"),
        )
        self._latency_hist = registry.histogram(
            "gateway_request_latency_ms",
            "Request-line-to-response latency at the gateway",
            labels=("route",), buckets=LATENCY_BUCKETS_MS,
            reservoir_size=TELEMETRY_RESERVOIR_SIZE,
        )
        self._shed_total = registry.counter(
            "gateway_shed_total", "Requests shed by admission control, by reason",
            labels=("reason",),
        )
        self._stream_windows = registry.counter(
            "gateway_stream_windows_total",
            "Windows processed by streaming sessions, by outcome",
            labels=("outcome",),
        )
        registry.gauge(
            "gateway_pending_requests", "Admitted requests not yet resolved",
        ).labels().set_function(lambda: float(self._pending))

    def _observe(self, route: str, status: int, started_at: float) -> None:
        route_label = route if route in KNOWN_ROUTES else "other"
        self._requests_total.labels(route=route_label, status=str(status)).inc()
        self._latency_hist.labels(route=route_label).observe(
            1000.0 * (time.perf_counter() - started_at)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceGateway":
        if self._thread is not None:
            return self
        if self._draining:
            raise GatewayError("a stopped gateway cannot restart; build a new one")
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(started,), name="gateway", daemon=True
        )
        self._thread.start()
        started.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise GatewayError(f"gateway failed to start: {self._startup_error}")
        if self._bound_port is None:
            raise GatewayError("gateway did not report a bound port within 10s")
        if self.config.metrics_port is not None:
            self.obs_server = ObsHTTPServer(
                registry=self.server.telemetry.registry,
                port=int(self.config.metrics_port),
            )
            self.attach_health(self.obs_server)
            self.obs_server.add_health_check(
                "batcher", lambda: not self.server._batcher.closed
            )
            self.obs_server.start()
        if self.server.obs_server is not None:
            # The server already exposes /healthz (ServerConfig.metrics_port):
            # wire gateway liveness into the same endpoint.
            self.attach_health(self.server.obs_server)
        logger.info("gateway listening on %s", self.url)
        return self

    def attach_health(self, obs_server: ObsHTTPServer) -> "InferenceGateway":
        """Register a ``gateway`` liveness check on an exposition endpoint."""
        obs_server.add_health_check("gateway", lambda: self.running and not self._draining)
        return self

    def _thread_main(self, started: threading.Event) -> None:
        try:
            asyncio.run(self._main(started))
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()/logs
            self._startup_error = exc
            logger.exception("gateway event loop died")
        finally:
            started.set()

    async def _main(self, started: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port,
                limit=_MAX_HEADER_BYTES,
            )
        except OSError as exc:
            self._startup_error = exc
            return
        self._asyncio_server = server
        self._bound_port = int(server.sockets[0].getsockname()[1])
        started.set()
        await self._shutdown.wait()
        # Graceful drain: no new connections, shed new requests (the handlers
        # check _draining), let admitted work resolve, then tear down.
        server.close()
        await server.wait_closed()
        deadline = self._loop.time() + self.config.drain_timeout_s
        while self._pending > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._pending:
            logger.warning(
                "gateway drain timed out with %d requests still pending", self._pending
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def stop(self) -> None:
        """Drain and stop: in-flight requests complete, new ones shed (503)."""
        if self._thread is None:
            return
        self._draining = True
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:  # repro: noqa[REP107] — loop already closed; stop() is idempotent
                pass
        self._thread.join(timeout=self.config.drain_timeout_s + 10.0)
        self._thread = None
        if self.obs_server is not None:
            self.obs_server.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive() and not self._draining

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        """Admitted-but-unresolved requests (the admission queue depth)."""
        return self._pending

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise GatewayError("gateway is not started")
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def __enter__(self) -> "InferenceGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _try_admit(self, client_id: str) -> Optional[Tuple[int, str, str]]:
        """Atomically admit or name the shed ``(status, code, reason)``.

        Runs on the event-loop thread with no awaits between check and
        increment, so the caps cannot be oversubscribed by interleaving.
        """
        if self._draining:
            return 503, "draining", "gateway is draining; retry against a peer"
        if self._pending >= self.config.max_pending:
            return 429, "queue_full", (
                f"gateway pending queue is full ({self.config.max_pending}); retry later"
            )
        if self._inflight.get(client_id, 0) >= self.config.max_inflight_per_client:
            return 429, "client_limit", (
                f"client {client_id!r} exceeds {self.config.max_inflight_per_client} "
                "in-flight requests"
            )
        self._pending += 1
        self._inflight[client_id] = self._inflight.get(client_id, 0) + 1
        return None

    def _release(self, client_id: str) -> None:
        self._pending -= 1
        remaining = self._inflight.get(client_id, 1) - 1
        if remaining <= 0:
            self._inflight.pop(client_id, None)
        else:
            self._inflight[client_id] = remaining

    def _client_id(self, head: _Head, peer) -> str:
        header = head.headers.get(self.config.client_id_header)
        if header:
            return header
        return str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"

    # ------------------------------------------------------------------
    # HTTP framing
    # ------------------------------------------------------------------
    async def _read_head(self, reader: asyncio.StreamReader) -> Optional[_Head]:
        """Parse the request line + headers; ``None`` on clean EOF/idle close."""
        # Connection-ingress fault site, *before* any byte is parsed and
        # before admission: an injected error here models a socket dying
        # mid-read and must surface as a dropped connection, never as a
        # half-admitted request (which would break the exactly-one-response
        # invariant the chaos suite asserts).
        await _fault_asite("serving.gateway.read")
        timeout = self.config.keepalive_timeout_s
        try:
            # The idle timeout covers the first request too, so a connection
            # that opens and never speaks cannot hold a slot forever.
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        except asyncio.TimeoutError:  # repro: noqa[REP107] — idle keepalive expiry is the designed outcome
            return None
        except ValueError:
            raise _HTTPError(400, "bad_request", "request line too long", close=True) from None
        if not line:
            return None
        received_at = time.perf_counter()
        try:
            method, target, version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise _HTTPError(400, "bad_request", "malformed request line", close=True) from None
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _HTTPError(400, "bad_request", f"unsupported {version}", close=True)
        headers: Dict[str, str] = {}
        total = 0
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                raise _HTTPError(400, "bad_request", "header line too long", close=True) from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _HTTPError(400, "bad_request", "truncated headers", close=True)
            total += len(raw)
            if total > _MAX_HEADER_BYTES or len(headers) >= _MAX_HEADER_COUNT:
                raise _HTTPError(400, "bad_request", "headers too large", close=True)
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HTTPError(400, "bad_request", f"malformed header {raw!r}", close=True)
            headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        return _Head(
            method=method, path=path, version=version, headers=headers,
            received_at=received_at,
        )

    async def _read_body(self, reader: asyncio.StreamReader, head: _Head) -> bytes:
        """Read one unary body, enforcing ``max_body_bytes`` (→ 413)."""
        cap = self.config.max_body_bytes
        if head.chunked:
            parts: List[bytes] = []
            total = 0
            async for chunk in self._iter_chunks(reader):
                total += len(chunk)
                if total > cap:
                    raise _HTTPError(
                        413, "payload_too_large",
                        f"chunked body exceeds {cap} bytes", close=True,
                    )
                parts.append(chunk)
            return b"".join(parts)
        length_header = head.headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            raise _HTTPError(400, "bad_request", f"bad Content-Length {length_header!r}",
                             close=True) from None
        if length < 0:
            raise _HTTPError(400, "bad_request", "negative Content-Length", close=True)
        if length > cap:
            # The body is still on the wire; the connection cannot be reused.
            raise _HTTPError(
                413, "payload_too_large",
                f"Content-Length {length} exceeds the {cap}-byte limit", close=True,
            )
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _iter_chunks(self, reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
        """Decode ``Transfer-Encoding: chunked`` framing."""
        while True:
            size_line = await reader.readline()
            if not size_line:
                raise _HTTPError(400, "bad_request", "truncated chunked body", close=True)
            try:
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except ValueError:
                raise _HTTPError(
                    400, "bad_request", f"bad chunk size {size_line!r}", close=True
                ) from None
            if size < 0:
                raise _HTTPError(400, "bad_request", "negative chunk size", close=True)
            if size == 0:
                while True:  # consume trailers
                    trailer = await reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        return
            data = await reader.readexactly(size)
            await reader.readexactly(2)  # trailing CRLF
            yield data

    async def _iter_body_lines(
        self, reader: asyncio.StreamReader, head: _Head
    ) -> AsyncIterator[bytes]:
        """Newline-delimited messages of a streaming body (chunk-boundary safe).

        Chunk boundaries need not align with message boundaries, so a buffer
        accumulates until each ``\\n``; ``max_body_bytes`` bounds one message
        (not the session — sessions are unbounded by design).
        """
        cap = self.config.max_body_bytes
        buffer = bytearray()

        async def _raw() -> AsyncIterator[bytes]:
            if head.chunked:
                async for chunk in self._iter_chunks(reader):
                    yield chunk
            else:
                try:
                    remaining = int(head.headers.get("content-length", "0"))
                except ValueError:
                    raise _HTTPError(400, "bad_request", "bad Content-Length",
                                     close=True) from None
                while remaining > 0:
                    chunk = await reader.read(min(_READ_CHUNK, remaining))
                    if not chunk:
                        raise _HTTPError(400, "bad_request", "truncated body", close=True)
                    remaining -= len(chunk)
                    yield chunk

        async for chunk in _raw():
            buffer.extend(chunk)
            if len(buffer) > cap and b"\n" not in buffer:
                raise _HTTPError(
                    413, "payload_too_large",
                    f"stream message exceeds {cap} bytes", close=True,
                )
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line = bytes(buffer[:newline]).strip()
                del buffer[: newline + 1]
                if line:
                    yield line
        tail = bytes(buffer).strip()
        if tail:
            yield tail

    def _render(
        self,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
        retry_after: Optional[float] = None,
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            "Server: repro-gateway",
            f"Content-Type: {JSON_CONTENT_TYPE}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after is not None:
            # Delay-seconds form; integral and >= 1 so naive parsers cope.
            lines.append(f"Retry-After: {max(1, int(round(retry_after)))}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body

    @staticmethod
    def _error_payload(code: str, message: str) -> Dict[str, Any]:
        return {"error": {"code": code, "message": message}}

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        peer = writer.get_extra_info("peername")
        try:
            while True:
                try:
                    head = await self._read_head(reader)
                except _HTTPError as exc:
                    started = time.perf_counter()
                    await self._send(
                        writer,
                        self._render(exc.status, self._error_payload(exc.code, exc.message),
                                     keep_alive=False),
                    )
                    self._observe("other", exc.status, started)
                    break
                if head is None:
                    break
                keep = await self._dispatch(head, reader, writer, peer)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError, FaultInjectedError):  # repro: noqa[REP107] — pre-admission drop, by design
            # Client went away, the gateway is tearing down, or an injected
            # read fault modelled exactly that; either way the pre-admission
            # connection just drops.
            pass
        except Exception:  # noqa: BLE001 — one broken connection must not escape
            logger.exception("gateway connection handler failed")
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):  # repro: noqa[REP107] — peer already gone at teardown
                pass

    async def _send(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _dispatch(
        self, head: _Head, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter, peer,
    ) -> bool:
        """Route one parsed request; returns whether to keep the connection."""
        route = head.path
        client_id = self._client_id(head, peer)
        try:
            if route == "/healthz":
                if head.method != "GET":
                    return await self._method_not_allowed(head, writer, "GET")
                await self._read_body(reader, head)  # tolerate (tiny) bodies
                return await self._handle_healthz(head, writer)
            if route == "/v1/stream":
                if head.method != "POST":
                    return await self._method_not_allowed(head, writer, "POST")
                return await self._handle_stream(head, reader, writer, client_id)
            if route in ("/v1/predict", "/v1/batch"):
                if head.method != "POST":
                    return await self._method_not_allowed(head, writer, "POST")
                body = await self._read_body(reader, head)
                return await self._handle_unary(head, writer, client_id, body)
            payload = self._error_payload(
                "not_found",
                f"unknown path {route!r}; endpoints: "
                "/v1/predict, /v1/batch, /v1/stream (POST), /healthz (GET)",
            )
            await self._send(writer, self._render(404, payload, head.keep_alive))
            self._observe(route, 404, head.received_at)
            return head.keep_alive
        except _HTTPError as exc:
            keep = head.keep_alive and not exc.close
            retry = self.config.retry_after_seconds if exc.status in (429, 503) else None
            await self._send(
                writer,
                self._render(exc.status, self._error_payload(exc.code, exc.message),
                             keep, retry_after=retry),
            )
            self._observe(route, exc.status, head.received_at)
            return keep

    async def _method_not_allowed(
        self, head: _Head, writer: asyncio.StreamWriter, allow: str
    ) -> bool:
        body = json.dumps(
            self._error_payload("method_not_allowed", f"use {allow} on {head.path}")
        ).encode("utf-8")
        lines = [
            "HTTP/1.1 405 Method Not Allowed",
            "Server: repro-gateway",
            f"Allow: {allow}",
            f"Content-Type: {JSON_CONTENT_TYPE}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        await self._send(writer, ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        self._observe(head.path, 405, head.received_at)
        return False

    async def _handle_healthz(self, head: _Head, writer: asyncio.StreamWriter) -> bool:
        healthy = not self._draining and not self.server._batcher.closed
        status = 200 if healthy else 503
        payload = {
            "status": "ok" if healthy else "unhealthy",
            "draining": self._draining,
            "pending": self._pending,
            "model": self.server.model_version.name if self.server.model_version else None,
        }
        await self._send(writer, self._render(status, payload, head.keep_alive))
        self._observe("/healthz", status, head.received_at)
        return head.keep_alive

    # ------------------------------------------------------------------
    # Unary routes
    # ------------------------------------------------------------------
    def _shed(self, reason: str, status: int, message: str) -> _HTTPError:
        self._shed_total.labels(reason=reason).inc()
        return _HTTPError(status, reason, message)

    def _deadline_remaining(self, head: _Head) -> float:
        return self.config.deadline_ms / 1000.0 - (time.perf_counter() - head.received_at)

    async def _handle_unary(
        self, head: _Head, writer: asyncio.StreamWriter, client_id: str, body: bytes
    ) -> bool:
        route = head.path
        shed = self._try_admit(client_id)
        if shed is not None:
            status, code, message = shed
            raise self._shed(code, status, message)
        try:
            try:
                payload = json.loads(body)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise _HTTPError(400, "bad_request", f"body is not valid JSON: {exc}") from None
            if not isinstance(payload, dict):
                raise _HTTPError(400, "bad_request", "body must be a JSON object")
            expected = self.server.window_shape
            if route == "/v1/predict":
                window = _decode_window(payload, expected)
                response = await self._predict_one(head, window)
            else:
                windows = _decode_windows(payload, expected, self.config.max_batch_windows)
                response = await self._predict_batch(head, payload, windows)
        finally:
            self._release(client_id)
        await self._send(writer, self._render(200, response, head.keep_alive))
        self._observe(route, 200, head.received_at)
        return head.keep_alive

    async def _predict_one(self, head: _Head, window: np.ndarray) -> Dict[str, Any]:
        remaining = self._deadline_remaining(head)
        if remaining <= 0:
            raise self._shed("deadline", 503,
                             f"deadline of {self.config.deadline_ms:g} ms exceeded")
        try:
            future = self.server.submit(window)
        except QueueFullError as exc:
            raise self._shed("batcher_full", 429, str(exc)) from None
        except ServingError as exc:
            raise _HTTPError(400, "invalid_window", str(exc)) from None
        try:
            prediction = await asyncio.wait_for(asyncio.wrap_future(future), remaining)
        except asyncio.TimeoutError:
            raise self._shed(
                "deadline", 503,
                f"request missed its {self.config.deadline_ms:g} ms deadline",
            ) from None
        except (ServingError, FaultInjectedError) as exc:
            # FaultInjectedError: an armed fault that escaped the forward
            # path's quarantine still maps to a clean 500 — an admitted
            # request always gets exactly one response.
            raise _HTTPError(500, "internal", f"inference failed: {exc}") from None
        return {
            "label": int(prediction.label),
            "confidence": float(prediction.confidence),
            "probabilities": [float(p) for p in prediction.probabilities],
            "latency_ms": float(prediction.latency_ms),
        }

    async def _predict_batch(
        self, head: _Head, payload: Dict[str, Any], windows: np.ndarray
    ) -> Dict[str, Any]:
        remaining = self._deadline_remaining(head)
        if remaining <= 0:
            raise self._shed("deadline", 503,
                             f"deadline of {self.config.deadline_ms:g} ms exceeded")
        futures = []
        try:
            for window in windows:
                futures.append(self.server.submit(window))
        except QueueFullError as exc:
            for future in futures:  # abandon the partial batch quietly
                future.add_done_callback(lambda f: f.exception())
            raise self._shed("batcher_full", 429, str(exc)) from None
        try:
            predictions = await asyncio.wait_for(
                asyncio.gather(*[asyncio.wrap_future(f) for f in futures]), remaining
            )
        except asyncio.TimeoutError:
            raise self._shed(
                "deadline", 503,
                f"batch missed its {self.config.deadline_ms:g} ms deadline",
            ) from None
        except (ServingError, FaultInjectedError) as exc:
            raise _HTTPError(500, "internal", f"inference failed: {exc}") from None
        include_probabilities = bool(payload.get("return_probabilities", False))
        rows: List[Dict[str, Any]] = []
        for prediction in predictions:
            row: Dict[str, Any] = {
                "label": int(prediction.label),
                "confidence": float(prediction.confidence),
            }
            if include_probabilities:
                row["probabilities"] = [float(p) for p in prediction.probabilities]
            rows.append(row)
        return {"predictions": rows, "count": len(rows)}

    # ------------------------------------------------------------------
    # Streaming sessions
    # ------------------------------------------------------------------
    async def _handle_stream(
        self, head: _Head, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter, client_id: str,
    ) -> bool:
        """One chunked NDJSON ingestion session (see docs/PROTOCOL.md §5).

        The session holds a single admission slot for its whole lifetime;
        individual windows are bounded by the micro-batcher's queue (shed
        windows are reported in-stream, not as an HTTP status, because the
        200 header has already been sent).  Response lines are written in
        window order.
        """
        if not head.chunked and "content-length" not in head.headers:
            raise _HTTPError(400, "bad_request",
                             "stream needs Transfer-Encoding: chunked or Content-Length")
        shed = self._try_admit(client_id)
        if shed is not None:
            status, code, message = shed
            raise self._shed(code, status, message)
        status_line = (
            "HTTP/1.1 200 OK\r\nServer: repro-gateway\r\n"
            f"Content-Type: {NDJSON_CONTENT_TYPE}\r\n"
            "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
        await self._send(writer, status_line)

        async def write_line(obj: Dict[str, Any]) -> None:
            data = json.dumps(obj).encode("utf-8") + b"\n"
            await self._send(writer, f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")

        # The session's ingestion keeps the server's rate/stride/normalisation
        # knobs but is always shaped to the served model: the configured
        # default may predate the model choice, and a session that emits
        # windows the model rejects would fail after the 200 went out.
        window_length, num_channels = self.server.window_shape
        ingestor = StreamIngestor(replace(
            self.server.config.ingestion,
            window_length=window_length, num_channels=num_channels,
        ))
        expected_channels = ingestor.config.num_channels
        queue: "asyncio.Queue" = asyncio.Queue(maxsize=256)
        deadline_s = self.config.deadline_ms / 1000.0
        counts = {"ok": 0, "shed": 0, "deadline": 0}

        async def writer_task() -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                kind, index, value = item
                if kind == "shed":
                    counts["shed"] += 1
                    self._stream_windows.labels(outcome="shed").inc()
                    await write_line({"index": index, "shed": True})
                    continue
                try:
                    prediction = await asyncio.wait_for(
                        asyncio.wrap_future(value), deadline_s
                    )
                except asyncio.TimeoutError:
                    counts["deadline"] += 1
                    self._stream_windows.labels(outcome="deadline").inc()
                    await write_line({"index": index, "deadline_exceeded": True})
                    continue
                counts["ok"] += 1
                self._stream_windows.labels(outcome="ok").inc()
                await write_line({
                    "index": index,
                    "label": int(prediction.label),
                    "confidence": float(prediction.confidence),
                    "latency_ms": float(prediction.latency_ms),
                })

        replies = asyncio.ensure_future(writer_task())
        samples_seen = 0
        window_index = 0
        try:
            try:
                async for line in self._iter_body_lines(reader, head):
                    try:
                        message = json.loads(line)
                    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                        raise _HTTPError(400, "bad_request",
                                         f"stream message is not valid JSON: {exc}") from None
                    if not isinstance(message, dict):
                        raise _HTTPError(400, "bad_request",
                                         "stream messages must be JSON objects")
                    if message.get("end"):
                        break
                    if "samples_b64" in message:
                        flat = _decode_b64_floats(message["samples_b64"])
                        if flat.size == 0 or flat.size % expected_channels != 0:
                            raise _HTTPError(
                                400, "invalid_samples",
                                f"samples_b64 holds {flat.size} values, not a multiple "
                                f"of {expected_channels} channels",
                            )
                        samples = flat.reshape(-1, expected_channels).astype(np.float64)
                    elif "samples" in message:
                        try:
                            samples = np.asarray(message["samples"], dtype=np.float64)
                        except (TypeError, ValueError) as exc:
                            raise _HTTPError(400, "invalid_samples",
                                             f"samples are not numeric: {exc}") from None
                        if samples.ndim != 2 or samples.shape[1] != expected_channels:
                            raise _HTTPError(
                                400, "invalid_samples",
                                f"samples must have shape (n, {expected_channels}), "
                                f"got {samples.shape}",
                            )
                    else:
                        raise _HTTPError(400, "bad_request",
                                         "stream message needs 'samples', 'samples_b64' or 'end'")
                    samples_seen += int(samples.shape[0])
                    for window in ingestor.push(samples):
                        try:
                            future = self.server.submit(window)
                        except QueueFullError:
                            self._shed_total.labels(reason="batcher_full").inc()
                            await queue.put(("shed", window_index, None))
                        except ServingError as exc:
                            raise _HTTPError(500, "internal",
                                             f"window rejected: {exc}") from None
                        else:
                            await queue.put(("window", window_index, future))
                        window_index += 1
            except _HTTPError as exc:
                # Headers are already on the wire: report in-stream and close.
                await queue.put(None)
                await replies
                await write_line({"error": {"code": exc.code, "message": exc.message}})
                await self._send(writer, b"0\r\n\r\n")
                self._observe("/v1/stream", 400, head.received_at)
                return False
            await queue.put(None)
            await replies
            await write_line({
                "done": True,
                "samples": samples_seen,
                "windows": window_index,
                "ok": counts["ok"],
                "shed": counts["shed"],
                "deadline_exceeded": counts["deadline"],
            })
            await self._send(writer, b"0\r\n\r\n")
            self._observe("/v1/stream", 200, head.received_at)
            return False  # one session per connection
        finally:
            self._release(client_id)
            if not replies.done():
                replies.cancel()


def serve_gateway(
    server: InferenceServer,
    config: Optional[GatewayConfig] = None,
    **overrides,
) -> InferenceGateway:
    """Build and start an :class:`InferenceGateway` (keyword knobs accepted).

    >>> gateway = serve_gateway(server, port=8080, max_pending=256)
    >>> ...
    >>> gateway.stop()
    """
    if config is None:
        config = GatewayConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    return InferenceGateway(server, config).start()
