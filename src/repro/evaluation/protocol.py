"""Evaluation protocol: tasks, dataset mapping, labelling rates (Tables II & III).

Three downstream user-perception tasks are evaluated:

* **AR** — activity recognition on HHAR and Motion;
* **UA** — user authentication on HHAR and Shoaib;
* **DP** — device-placement recognition on Shoaib.

Each is evaluated at labelling rates of 5%, 10%, 15% and 20% of the training
split; accuracy and macro-F1 are reported, optionally relative to a
full-label reference (the paper normalises by LIMU trained on all labels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..datasets.base import TASK_ACTIVITY, TASK_PLACEMENT, TASK_USER
from ..exceptions import ConfigurationError

LABELLING_RATES: Tuple[float, ...] = (0.05, 0.10, 0.15, 0.20)
"""The four labelling rates of the paper's evaluation."""


@dataclass(frozen=True)
class TaskSpec:
    """One downstream user-perception task (a row of Table III)."""

    code: str
    description: str
    label_field: str
    datasets: Tuple[str, ...]


TASKS: Dict[str, TaskSpec] = {
    "AR": TaskSpec(
        code="AR",
        description="activity recognition",
        label_field=TASK_ACTIVITY,
        datasets=("hhar", "motion"),
    ),
    "UA": TaskSpec(
        code="UA",
        description="user authentication",
        label_field=TASK_USER,
        datasets=("hhar", "shoaib"),
    ),
    "DP": TaskSpec(
        code="DP",
        description="device placement recognition",
        label_field=TASK_PLACEMENT,
        datasets=("shoaib",),
    ),
}
"""The three tasks of Table III, keyed by their paper code."""


def get_task(code: str) -> TaskSpec:
    """Look up a task by its paper code (AR / UA / DP, case-insensitive)."""
    key = code.upper()
    if key not in TASKS:
        raise ConfigurationError(f"unknown task {code!r}; available: {sorted(TASKS)}")
    return TASKS[key]


def task_dataset_pairs() -> Tuple[Tuple[str, str], ...]:
    """All (task code, dataset name) pairs evaluated by the paper (5 in total)."""
    pairs = []
    for code, spec in TASKS.items():
        for dataset in spec.datasets:
            pairs.append((code, dataset))
    return tuple(pairs)


def validate_pair(task_code: str, dataset_name: str) -> TaskSpec:
    """Check that ``dataset_name`` is a valid evaluation dataset for ``task_code``."""
    spec = get_task(task_code)
    if dataset_name.lower() not in spec.datasets:
        raise ConfigurationError(
            f"task {task_code} is not evaluated on dataset {dataset_name!r}; "
            f"valid datasets: {spec.datasets}"
        )
    return spec


def experiment_grid(profile=None, methods=None, seeds: Tuple[int, ...] = (0,)):
    """The paper's full evaluation grid as declarative experiment specs.

    One :class:`~repro.experiments.spec.ExperimentSpec` per (method, task,
    dataset, seed) cell, each carrying every labelling rate of the protocol —
    the grid behind Fig. 6, executable through
    :class:`~repro.experiments.runner.Runner`.  (Imported lazily: the
    protocol tables must stay importable without the orchestration layer.)
    """
    from ..core.experiment import ALL_METHOD_NAMES, get_profile
    from ..experiments.spec import expand_grid

    resolved = profile if profile is not None else get_profile()
    return expand_grid(
        methods if methods is not None else ALL_METHOD_NAMES,
        pairs=task_dataset_pairs(),
        profile=resolved,
        seeds=seeds,
    )
