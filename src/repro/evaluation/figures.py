"""Figure and table data generators.

One function per table/figure of the paper's evaluation section.  Each
returns a structured result (a :class:`~repro.evaluation.results.ResultTable`
or a list of dict rows) and can render itself as plain text, so the benchmark
harness under ``benchmarks/`` simply calls these and prints the output.

The experiment-backed figures (Figs. 6–12) define their grids as
:class:`~repro.experiments.spec.ExperimentSpec` lists and execute them
through the resumable :class:`~repro.experiments.runner.Runner`, so repeated
figure builds replay from the content-addressed stage cache and different
figures share overlapping stages (Figs. 7–11 are sub-grids of Fig. 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.experiment import (
    ABLATION_METHOD_NAMES,
    ALL_METHOD_NAMES,
    TOP3_METHOD_NAMES,
    ExperimentProfile,
    ExperimentRunner,
    get_profile,
)
from ..datasets.registry import load_dataset
from ..deployment.cost_model import make_training_cost
from ..deployment.devices import all_phones
from ..deployment.latency import LatencyMeasurement, latency_by_phone, latency_table
from ..evaluation.protocol import TASKS
from ..evaluation.results import ResultTable, format_mapping_table
from ..exceptions import ConfigurationError
from ..experiments.grids import DETAIL_FIGURE_PAIRS
from ..experiments.runner import GridResult, Runner
from ..experiments.spec import expand_grid
from ..logging_utils import get_logger

logger = get_logger(__name__)


def _grid_runner(runner: Optional[Runner]) -> Runner:
    """Use the caller's Runner when given (shared cache), else a default one."""
    return runner if runner is not None else Runner()


# ----------------------------------------------------------------------
# Tables I-III: experimental setup (static descriptions)
# ----------------------------------------------------------------------
def table1_devices() -> List[Dict[str, object]]:
    """Table I: hardware configuration of the five evaluation phones."""
    return [
        {
            "phone": phone.name,
            "soc": phone.soc,
            "memory_gb": phone.memory_gb,
            "disk_gb": phone.disk_gb,
        }
        for phone in all_phones()
    ]


def table2_datasets(scale: float = 0.05) -> List[Dict[str, object]]:
    """Table II: dataset summary, regenerated from the dataset factories.

    ``scale`` controls how much data is synthesised just to introspect the
    shapes; the reported "paper_samples" column always states the full-scale
    target from Table II.
    """
    targets = {"hhar": 9166, "motion": 4534, "shoaib": 10500}
    rows = []
    for name in ("hhar", "motion", "shoaib"):
        dataset = load_dataset(name, scale=scale)
        sensors = sorted({channel.split("_")[0] for channel in dataset.metadata.sensor_channels})
        rows.append(
            {
                "dataset": name,
                "sensors": "+".join(sensors),
                "activities": dataset.num_classes("activity"),
                "users": dataset.num_classes("user"),
                "placements": dataset.num_classes("placement") if "placement" in dataset.labels else 0,
                "window": dataset.window_length,
                "samples": len(dataset),
                "paper_samples": targets[name],
            }
        )
    return rows


def table3_tasks() -> List[Dict[str, object]]:
    """Table III: the three downstream tasks and their datasets."""
    return [
        {
            "task": spec.code,
            "description": spec.description,
            "label_field": spec.label_field,
            "datasets": ",".join(spec.datasets),
        }
        for spec in TASKS.values()
    ]


# ----------------------------------------------------------------------
# Figure 6: overall comparison across all tasks / datasets / rates
# ----------------------------------------------------------------------
@dataclass
class OverallComparison:
    """Data behind Fig. 6: per-record results plus per-method aggregates."""

    table: ResultTable
    mean_accuracy: Dict[str, float]
    mean_f1: Dict[str, float]
    ranking: List[str]
    grid: Optional[GridResult] = None

    def format(self) -> str:
        lines = ["Figure 6 — mean accuracy by method and labelling rate", ""]
        lines.append(self.table.format_table("accuracy"))
        lines.append("")
        lines.append("Figure 6 — mean F1 by method and labelling rate")
        lines.append("")
        lines.append(self.table.format_table("f1"))
        lines.append("")
        lines.append("ranking (mean accuracy): " + " > ".join(self.ranking))
        return "\n".join(lines)


def figure6_overall(
    profile: Optional[ExperimentProfile] = None,
    method_names: Sequence[str] = ALL_METHOD_NAMES,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> OverallComparison:
    """Regenerate Fig. 6: all methods on all tasks and datasets at 5–20% labels."""
    resolved = profile if profile is not None else get_profile()
    specs = expand_grid(method_names, pairs=pairs, profile=resolved, seeds=(seed,))
    grid = _grid_runner(runner).run(specs)
    table = grid.table
    return OverallComparison(
        table=table,
        mean_accuracy=table.mean_by_method("accuracy"),
        mean_f1=table.mean_by_method("f1"),
        ranking=table.ranking("accuracy"),
        grid=grid,
    )


# ----------------------------------------------------------------------
# Figures 7-11: per-(task, dataset) detail of the top-3 methods
# ----------------------------------------------------------------------
@dataclass
class DetailComparison:
    """Data behind one of Figs. 7-11."""

    figure: str
    task: str
    dataset: str
    table: ResultTable
    grid: Optional[GridResult] = None

    def format(self) -> str:
        header = f"{self.figure} — {self.task} on {self.dataset}: accuracy by labelling rate"
        return "\n".join(
            [header, "", self.table.format_table("accuracy"), "",
             f"{self.figure} — F1 by labelling rate", "", self.table.format_table("f1")]
        )


_DETAIL_FIGURES: Dict[str, Tuple[str, str]] = {
    f"figure{name[3:]}": pair for name, pair in DETAIL_FIGURE_PAIRS.items()
}


def detail_figure(
    figure: str,
    profile: Optional[ExperimentProfile] = None,
    method_names: Sequence[str] = TOP3_METHOD_NAMES,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> DetailComparison:
    """Regenerate one of Figs. 7–11 (top-3 methods on one task/dataset pair)."""
    if figure not in _DETAIL_FIGURES:
        raise KeyError(f"unknown detail figure {figure!r}; available: {sorted(_DETAIL_FIGURES)}")
    task_code, dataset_name = _DETAIL_FIGURES[figure]
    resolved = profile if profile is not None else get_profile()
    specs = expand_grid(
        method_names, pairs=((task_code, dataset_name),), profile=resolved, seeds=(seed,)
    )
    grid = _grid_runner(runner).run(specs)
    return DetailComparison(
        figure=figure, task=task_code, dataset=dataset_name, table=grid.table, grid=grid
    )


def figure7_ar_hhar(**kwargs) -> DetailComparison:
    return detail_figure("figure7", **kwargs)


def figure8_ar_motion(**kwargs) -> DetailComparison:
    return detail_figure("figure8", **kwargs)


def figure9_ua_hhar(**kwargs) -> DetailComparison:
    return detail_figure("figure9", **kwargs)


def figure10_ua_shoaib(**kwargs) -> DetailComparison:
    return detail_figure("figure10", **kwargs)


def figure11_dp_shoaib(**kwargs) -> DetailComparison:
    return detail_figure("figure11", **kwargs)


# ----------------------------------------------------------------------
# Figure 12: ablation over masking levels and weight search
# ----------------------------------------------------------------------
@dataclass
class AblationComparison:
    """Data behind Fig. 12: single-level masks vs random weights vs full Saga."""

    table: ResultTable
    mean_accuracy: Dict[str, float]
    mean_f1: Dict[str, float]
    grid: Optional[GridResult] = None

    def format(self) -> str:
        rows = [
            {"variant": method, "accuracy": acc, "f1": self.mean_f1.get(method, float("nan"))}
            for method, acc in self.mean_accuracy.items()
        ]
        return "Figure 12 — ablation (mean over labelling rates)\n\n" + format_mapping_table(
            rows, columns=("variant", "accuracy", "f1")
        )


def figure12_ablation(
    profile: Optional[ExperimentProfile] = None,
    task_code: str = "AR",
    dataset_name: str = "hhar",
    method_names: Sequence[str] = ABLATION_METHOD_NAMES,
    labelling_rates: Optional[Sequence[float]] = None,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> AblationComparison:
    """Regenerate Fig. 12: per-level ablations, random weights and full Saga."""
    resolved = profile if profile is not None else get_profile()
    specs = expand_grid(
        method_names,
        pairs=((task_code, dataset_name),),
        labelling_rates=labelling_rates,
        profile=resolved,
        seeds=(seed,),
    )
    grid = _grid_runner(runner).run(specs)
    return AblationComparison(
        table=grid.table,
        mean_accuracy=grid.table.mean_by_method("accuracy"),
        mean_f1=grid.table.mean_by_method("f1"),
        grid=grid,
    )


# ----------------------------------------------------------------------
# Table IV: training costs
# ----------------------------------------------------------------------
def _measure_train_time_ms(
    method_name: str,
    profile: ExperimentProfile,
    dataset,
    repetitions: int = 3,
    seed: int = 0,
) -> Tuple[float, object]:
    """Measure the wall-clock training time of one batch for ``method_name``.

    Each repetition runs the method's full training pipeline (pre-training plus
    downstream fitting, one epoch each) on a single batch of windows, which
    makes the timing comparable across methods that pre-train eagerly (LIMU,
    CL-HAR, TPN) and methods that defer pre-training into ``fit`` (Saga).
    Returns ``(milliseconds per batch, fitted method)``; the fitted method
    provides the deployable model whose parameters and FLOPs define the
    Table IV / Fig. 13 numbers.
    """
    import copy as _copy

    from ..core.experiment import build_method

    rng = np.random.default_rng(seed)
    single_batch = dataset.subset(np.arange(min(profile.batch_size, len(dataset))))
    task = "activity" if "activity" in dataset.labels else list(dataset.labels)[0]

    method = build_method(method_name, profile, dataset.num_channels)
    method.budget.pretrain_epochs = 1
    method.budget.finetune_epochs = 1
    if hasattr(method, "weights_spec") and isinstance(method.weights_spec, str):
        # Avoid timing the LWS search itself: Table IV measures one training
        # pass, not the weight-search loop.
        if method.weights_spec == "search":
            method.weights_spec = "uniform"

    deploy = None
    start = time.perf_counter()
    for _ in range(repetitions):
        trial = _copy.deepcopy(method)
        trial.pretrain(single_batch, rng)
        trial.fit(single_batch, task, single_batch, rng)
        deploy = trial
    elapsed_ms = (time.perf_counter() - start) * 1000.0 / repetitions
    return elapsed_ms, deploy


def table4_training_costs(
    profile: Optional[ExperimentProfile] = None,
    dataset_name: str = "hhar",
    method_names: Sequence[str] = ("limu", "clhar", "tpn", "saga"),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Regenerate Table IV: per-batch train time, parameters, disk, training memory."""
    resolved = profile if profile is not None else get_profile()
    dataset = ExperimentRunner(resolved, seed=seed).load(dataset_name)
    rows: List[Dict[str, object]] = []
    models = {}
    for method_name in method_names:
        elapsed_ms, deploy = _measure_train_time_ms(method_name, resolved, dataset, seed=seed)
        model = _deployable_model(deploy)
        models[method_name] = model
        cost = make_training_cost(
            method_name, model, resolved.window_length, measured_train_time_ms=elapsed_ms
        )
        rows.append(cost.as_dict())
    return rows


def _deployable_model(method) -> object:
    """Extract the inference-time model object from a fitted method."""
    for attribute in ("_classifier_model",):
        model = getattr(method, attribute, None)
        if model is not None:
            return model
    pipeline = getattr(method, "_pipeline", None)
    if pipeline is not None and pipeline.classifier_model is not None:
        return pipeline.classifier_model
    encoder = getattr(method, "_encoder", None)
    classifier = getattr(method, "_classifier", None)
    if encoder is not None and classifier is not None:
        from ..nn import Sequential

        return Sequential(encoder, classifier)
    raise ConfigurationError(f"cannot extract a deployable model from {method!r}")


# ----------------------------------------------------------------------
# Figure 13: inference latency on mobile phones
# ----------------------------------------------------------------------
def figure13_inference_latency(
    profile: Optional[ExperimentProfile] = None,
    dataset_name: str = "hhar",
    method_names: Sequence[str] = ("saga", "limu", "clhar", "tpn"),
    seed: int = 0,
) -> List[LatencyMeasurement]:
    """Regenerate Fig. 13: simulated single-window inference latency per phone."""
    resolved = profile if profile is not None else get_profile()
    dataset = ExperimentRunner(resolved, seed=seed).load(dataset_name)
    models = {}
    for method_name in method_names:
        _, deploy = _measure_train_time_ms(method_name, resolved, dataset, repetitions=1, seed=seed)
        models[method_name] = _deployable_model(deploy)
    return latency_table(models, resolved.window_length)


def format_latency_measurements(measurements: Sequence[LatencyMeasurement]) -> str:
    """Render Fig. 13 data as a phone x method text table."""
    pivot = latency_by_phone(measurements)
    methods = sorted({measurement.method for measurement in measurements})
    rows = []
    for phone, per_method in pivot.items():
        row: Dict[str, object] = {"phone": phone}
        row.update({method: per_method.get(method, float("nan")) for method in methods})
        rows.append(row)
    return format_mapping_table(rows, columns=["phone"] + methods)
