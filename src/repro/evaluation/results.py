"""Experiment result records, aggregation and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of one (method, task, dataset, labelling rate) evaluation."""

    method: str
    task: str
    dataset: str
    labelling_rate: float
    accuracy: float
    f1: float
    num_train_samples: int
    seed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def relative_to(self, reference_accuracy: float, reference_f1: float) -> "ExperimentRecord":
        """Return a copy with accuracy/F1 expressed relative (%) to a reference."""
        if reference_accuracy <= 0 or reference_f1 <= 0:
            raise ConfigurationError("reference metrics must be positive")
        return ExperimentRecord(
            method=self.method,
            task=self.task,
            dataset=self.dataset,
            labelling_rate=self.labelling_rate,
            accuracy=100.0 * self.accuracy / reference_accuracy,
            f1=100.0 * self.f1 / reference_f1,
            num_train_samples=self.num_train_samples,
            seed=self.seed,
            extra=dict(self.extra),
        )


class ResultTable:
    """A flat collection of :class:`ExperimentRecord` objects with query helpers."""

    def __init__(self, records: Optional[Iterable[ExperimentRecord]] = None) -> None:
        self.records: List[ExperimentRecord] = list(records) if records is not None else []

    def add(self, record: ExperimentRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[ExperimentRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[ExperimentRecord], bool]) -> "ResultTable":
        return ResultTable(record for record in self.records if predicate(record))

    def for_method(self, method: str) -> "ResultTable":
        return self.filter(lambda record: record.method == method)

    def for_rate(self, labelling_rate: float) -> "ResultTable":
        return self.filter(lambda record: abs(record.labelling_rate - labelling_rate) < 1e-9)

    def methods(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.method not in seen:
                seen.append(record.method)
        return seen

    def accuracies(self) -> np.ndarray:
        return np.asarray([record.accuracy for record in self.records])

    def f1_scores(self) -> np.ndarray:
        return np.asarray([record.f1 for record in self.records])

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def mean_by_method(self, metric: str = "accuracy") -> Dict[str, float]:
        """Average the metric over everything except the method dimension."""
        values: Dict[str, List[float]] = {}
        for record in self.records:
            values.setdefault(record.method, []).append(getattr(record, metric))
        return {method: float(np.mean(vals)) for method, vals in values.items()}

    def mean_by_method_and_rate(self, metric: str = "accuracy") -> Dict[str, Dict[float, float]]:
        """Average the metric per (method, labelling rate) cell."""
        values: Dict[str, Dict[float, List[float]]] = {}
        for record in self.records:
            values.setdefault(record.method, {}).setdefault(record.labelling_rate, []).append(
                getattr(record, metric)
            )
        return {
            method: {rate: float(np.mean(vals)) for rate, vals in by_rate.items()}
            for method, by_rate in values.items()
        }

    def ranking(self, metric: str = "accuracy") -> List[str]:
        """Methods ordered from best to worst mean metric."""
        means = self.mean_by_method(metric)
        return sorted(means, key=means.get, reverse=True)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        """Records as plain dicts (for JSON dumping or DataFrame-free analysis)."""
        return [
            {
                "method": record.method,
                "task": record.task,
                "dataset": record.dataset,
                "labelling_rate": record.labelling_rate,
                "accuracy": record.accuracy,
                "f1": record.f1,
                "num_train_samples": record.num_train_samples,
                "seed": record.seed,
                **record.extra,
            }
            for record in self.records
        ]

    def format_table(self, metric: str = "accuracy", digits: int = 3) -> str:
        """Render a ``method x labelling-rate`` text table of mean metric values."""
        by_cell = self.mean_by_method_and_rate(metric)
        rates = sorted({record.labelling_rate for record in self.records})
        header = ["method"] + [f"{rate:.0%}" for rate in rates]
        lines = ["  ".join(f"{cell:>12}" for cell in header)]
        for method in self.methods():
            row = [method]
            for rate in rates:
                value = by_cell.get(method, {}).get(rate)
                row.append("-" if value is None else f"{value:.{digits}f}")
            lines.append("  ".join(f"{cell:>12}" for cell in row))
        return "\n".join(lines)


def format_mapping_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    digits: int = 3,
) -> str:
    """Render a list of dict rows as an aligned text table (shared helper)."""
    lines = ["  ".join(f"{column:>14}" for column in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "-")
            if isinstance(value, float):
                cells.append(f"{value:.{digits}f}")
            else:
                cells.append(str(value))
        lines.append("  ".join(f"{cell:>14}" for cell in cells))
    return "\n".join(lines)
