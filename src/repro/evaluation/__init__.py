"""Evaluation protocol, result aggregation and figure/table regeneration."""

from .protocol import (
    LABELLING_RATES,
    TASKS,
    TaskSpec,
    experiment_grid,
    get_task,
    task_dataset_pairs,
    validate_pair,
)
from .results import ExperimentRecord, ResultTable, format_mapping_table

__all__ = [
    "LABELLING_RATES",
    "experiment_grid",
    "TASKS",
    "TaskSpec",
    "get_task",
    "task_dataset_pairs",
    "validate_pair",
    "ExperimentRecord",
    "ResultTable",
    "format_mapping_table",
]
