"""Deterministic random-number management.

Every stochastic component in the library (dataset synthesis, masking, weight
initialisation, dropout, Bayesian-Optimization seeding) takes an explicit
``numpy.random.Generator``.  This module provides helpers to derive
independent child generators from a single experiment seed so that runs are
reproducible end to end.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a new generator from ``seed`` (or OS entropy when ``None``)."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` statistically independent child generators."""
    if count <= 0:
        raise ValueError("count must be positive")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


class RNGRegistry:
    """Named, reproducible random streams derived from one experiment seed.

    Examples
    --------
    >>> registry = RNGRegistry(seed=7)
    >>> data_rng = registry.get("dataset")
    >>> mask_rng = registry.get("masking")

    Requesting the same name twice returns the same generator instance, and
    two registries built from the same seed produce identical streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        if name not in self._streams:
            # Derive a per-stream seed from the experiment seed and the stream
            # name so that adding new streams never perturbs existing ones.
            stream_seed = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(abs(hash(name)) % (2**32),),
            )
            self._streams[name] = np.random.default_rng(stream_seed)
        return self._streams[name]

    def reset(self) -> None:
        """Drop all derived streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()
