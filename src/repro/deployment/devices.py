"""Mobile-device profiles (paper Table I).

The paper deploys the trained models on five phones with ONNX Runtime and
measures inference latency (Figure 13).  Physical phones are unavailable in
the reproduction environment, so each phone is modelled by an *effective*
sustained throughput (GFLOP/s for small-batch NN inference on the CPU) and a
fixed per-inference runtime overhead.  Throughputs are ordered by SoC
generation so that relative latencies across phones follow the paper's shape
(older SoCs are slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..exceptions import DeploymentError


@dataclass(frozen=True)
class PhoneSpec:
    """Hardware description of one evaluation phone."""

    name: str
    soc: str
    memory_gb: int
    disk_gb: int
    effective_gflops: float
    """Sustained single-core NN inference throughput (GFLOP/s), not peak."""

    runtime_overhead_ms: float
    """Fixed per-inference overhead of the runtime (graph dispatch, I/O)."""


PHONES: Dict[str, PhoneSpec] = {
    "mi6": PhoneSpec("Mi 6", "Snapdragon 835", 6, 64, effective_gflops=12.0, runtime_overhead_ms=1.6),
    "pixel3xl": PhoneSpec("Pixel 3 XL", "Snapdragon 845", 4, 128, effective_gflops=16.0, runtime_overhead_ms=1.4),
    "honorv9": PhoneSpec("Honor v9", "Kirin 960", 6, 64, effective_gflops=11.0, runtime_overhead_ms=1.7),
    "mi10": PhoneSpec("Mi 10", "Snapdragon 870", 6, 128, effective_gflops=24.0, runtime_overhead_ms=1.1),
    "mi11": PhoneSpec("Mi 11", "Snapdragon 888", 8, 256, effective_gflops=30.0, runtime_overhead_ms=1.0),
}
"""The five phones of Table I, keyed by a short identifier."""

PHONE_ORDER: Tuple[str, ...] = ("mi6", "pixel3xl", "honorv9", "mi10", "mi11")
"""Presentation order used in the paper's Table I and Figure 13."""


def get_phone(name: str) -> PhoneSpec:
    """Look up a phone by its short identifier (case-insensitive)."""
    key = name.lower().replace(" ", "").replace("_", "")
    if key not in PHONES:
        raise DeploymentError(f"unknown phone {name!r}; available: {PHONE_ORDER}")
    return PHONES[key]


def all_phones() -> Tuple[PhoneSpec, ...]:
    """All phone specs in presentation order."""
    return tuple(PHONES[name] for name in PHONE_ORDER)
