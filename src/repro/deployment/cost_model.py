"""Analytic model cost accounting: parameters, disk size, FLOPs, memory.

Reproduces the quantities of the paper's Table IV (training costs) and
underpins the latency simulation of Figure 13.  Parameter counts are exact
(they are read from the actual models); FLOPs are computed analytically per
layer; memory is estimated from parameters, optimizer state and activations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DeploymentError
from ..nn.attention import FeedForward, MultiHeadSelfAttention, TransformerBlock
from ..nn.conv import Conv1d
from ..nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from ..nn.module import Module
from ..nn.recurrent import GRU, GRUCell

FLOAT32_BYTES = 4


@dataclass(frozen=True)
class ModelCost:
    """Static cost summary of one model."""

    parameters: int
    disk_bytes: int
    flops_per_window: float
    activation_bytes: int

    @property
    def parameters_kb(self) -> float:
        """Parameter storage in kilobytes (float32), as reported in Table IV."""
        return self.parameters * FLOAT32_BYTES / 1024.0

    @property
    def disk_kb(self) -> float:
        return self.disk_bytes / 1024.0

    @property
    def mflops(self) -> float:
        return self.flops_per_window / 1e6


def _linear_flops(layer: Linear, tokens: int) -> float:
    flops = 2.0 * layer.in_features * layer.out_features * tokens
    if layer.bias is not None:
        flops += layer.out_features * tokens
    return flops


def _conv_flops(layer: Conv1d, input_length: int) -> float:
    out_length = layer.output_length(input_length)
    return 2.0 * layer.kernel_size * layer.in_channels * layer.out_channels * out_length


def _attention_flops(layer: MultiHeadSelfAttention, tokens: int) -> float:
    hidden = layer.hidden_dim
    projections = 4 * _linear_flops(layer.query, tokens)  # Q, K, V, output projections
    scores = 2.0 * tokens * tokens * hidden  # QK^T
    context = 2.0 * tokens * tokens * hidden  # softmax(scores) V
    softmax = 5.0 * tokens * tokens * layer.num_heads
    return projections + scores + context + softmax


def _gru_flops(layer: GRU, sequence_length: int) -> float:
    total = 0.0
    for index in range(layer.num_layers):
        cell: GRUCell = getattr(layer, f"cell{index}")
        per_step = 2.0 * cell.input_dim * 3 * cell.hidden_dim
        per_step += 2.0 * cell.hidden_dim * 3 * cell.hidden_dim
        per_step += 10.0 * cell.hidden_dim  # gate non-linearities and blending
        total += per_step * sequence_length
    return total


def estimate_flops(model: Module, window_length: int) -> float:
    """Estimate the forward FLOPs of ``model`` for one window of ``window_length`` steps.

    The walk visits every sub-module once; container modules contribute the
    sum of their children.  Sequence lengths are propagated approximately:
    transformer/GRU layers see the full window, convolutional layers shrink it
    by their stride.
    """
    if window_length <= 0:
        raise DeploymentError("window_length must be positive")

    total = 0.0
    current_length = window_length
    for _, module in model.named_modules():
        if isinstance(module, MultiHeadSelfAttention):
            total += _attention_flops(module, window_length)
        elif isinstance(module, FeedForward):
            total += _linear_flops(module.dense_in, window_length)
            total += _linear_flops(module.dense_out, window_length)
        elif isinstance(module, GRU):
            total += _gru_flops(module, window_length)
        elif isinstance(module, Conv1d):
            total += _conv_flops(module, current_length)
            current_length = module.output_length(current_length)
        elif isinstance(module, (LayerNorm,)):
            total += 8.0 * module.normalized_shape * window_length
        elif isinstance(module, (PositionalEmbedding, Embedding)):
            total += module.weight.size  # lookup + add, negligible but counted
        elif isinstance(module, Linear):
            # Stand-alone linear layers (projections, classifier heads) that are
            # not part of a block handled above.  Heads operate on pooled
            # features (1 token); per-step projections operate on the window.
            parent_handled = False
            if not parent_handled:
                tokens = window_length if module.out_features >= 8 and module.in_features >= 8 else 1
                total += _linear_flops(module, min(tokens, window_length))
    return total


def estimate_activation_bytes(model: Module, window_length: int, batch_size: int = 1) -> int:
    """Rough activation footprint of a forward pass (float32)."""
    if window_length <= 0 or batch_size <= 0:
        raise DeploymentError("window_length and batch_size must be positive")
    per_window = 0
    for _, module in model.named_modules():
        if isinstance(module, TransformerBlock):
            hidden = module.attention.hidden_dim
            per_window += 4 * window_length * hidden
            per_window += module.attention.num_heads * window_length * window_length
        elif isinstance(module, GRU):
            per_window += module.num_layers * window_length * module.hidden_dim
        elif isinstance(module, Conv1d):
            per_window += module.output_length(window_length) * module.out_channels
        elif isinstance(module, Linear):
            per_window += module.out_features
    return per_window * FLOAT32_BYTES * batch_size


def model_cost(model: Module, window_length: int) -> ModelCost:
    """Compute the full static cost summary of ``model``."""
    parameters = model.num_parameters()
    return ModelCost(
        parameters=parameters,
        disk_bytes=parameters * FLOAT32_BYTES,
        flops_per_window=estimate_flops(model, window_length),
        activation_bytes=estimate_activation_bytes(model, window_length),
    )


def training_memory_bytes(
    model: Module,
    window_length: int,
    batch_size: int,
    optimizer_states: int = 2,
) -> int:
    """Estimate training-time memory: parameters + gradients + Adam state + activations.

    ``optimizer_states=2`` corresponds to Adam's first and second moments.
    """
    parameters = model.num_parameters()
    parameter_bytes = parameters * FLOAT32_BYTES * (2 + optimizer_states)
    activation_bytes = estimate_activation_bytes(model, window_length, batch_size=batch_size)
    return parameter_bytes + activation_bytes


@dataclass(frozen=True)
class TrainingCost:
    """One row of the paper's Table IV."""

    method: str
    train_time_ms_per_batch: float
    parameters_kb: float
    disk_kb: float
    memory_gb: float

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "train_time_ms": self.train_time_ms_per_batch,
            "parameters_kb": self.parameters_kb,
            "disk_kb": self.disk_kb,
            "memory_gb": self.memory_gb,
        }


def make_training_cost(
    method: str,
    model: Module,
    window_length: int,
    measured_train_time_ms: float,
    memory_batch_size: int = 2048,
    baseline_memory_gb: float = 1.2,
) -> TrainingCost:
    """Assemble a Table-IV row from a model and a measured per-batch train time.

    ``baseline_memory_gb`` accounts for the framework/runtime overhead that is
    independent of the model (CUDA context etc. in the paper's setup).
    """
    cost = model_cost(model, window_length)
    memory_bytes = training_memory_bytes(model, window_length, memory_batch_size)
    return TrainingCost(
        method=method,
        train_time_ms_per_batch=measured_train_time_ms,
        parameters_kb=cost.parameters_kb,
        disk_kb=cost.disk_kb,
        memory_gb=baseline_memory_gb + memory_bytes / 1e9,
    )
