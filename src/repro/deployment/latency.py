"""Inference-latency simulation on mobile phones (paper Figure 13).

The latency of one inference (a single 1 x L x C window) on a phone is
modelled as::

    latency_ms = runtime_overhead_ms + flops / (effective_gflops * 1e6)

The FLOPs come from the analytic cost model; phone throughputs come from
:mod:`repro.deployment.devices`.  Absolute numbers are approximate, but the
orderings the paper highlights — TPN fastest, Saga no slower than LIMU, and
every method under ~12 ms even on the oldest phone — are structural
consequences of the model sizes and therefore reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from ..exceptions import DeploymentError
from ..nn.module import Module
from .cost_model import estimate_flops
from .devices import PhoneSpec, all_phones, get_phone


@dataclass(frozen=True)
class LatencyMeasurement:
    """Simulated latency of one method on one phone."""

    method: str
    phone: str
    latency_ms: float


def simulate_latency(flops_per_window: float, phone: PhoneSpec) -> float:
    """Latency (ms) of one window inference on ``phone``."""
    if flops_per_window < 0:
        raise DeploymentError("flops_per_window must be non-negative")
    compute_ms = flops_per_window / (phone.effective_gflops * 1e6)
    return phone.runtime_overhead_ms + compute_ms


def model_latency(model: Module, window_length: int, phone: PhoneSpec) -> float:
    """Latency of ``model`` for one ``window_length`` window on ``phone``."""
    return simulate_latency(estimate_flops(model, window_length), phone)


def latency_table(
    models: Mapping[str, Module],
    window_length: int,
    phones: Optional[Iterable[PhoneSpec]] = None,
) -> List[LatencyMeasurement]:
    """Simulate the full Figure-13 grid: every method on every phone."""
    phone_list = list(phones) if phones is not None else list(all_phones())
    measurements: List[LatencyMeasurement] = []
    for method, model in models.items():
        flops = estimate_flops(model, window_length)
        for phone in phone_list:
            measurements.append(
                LatencyMeasurement(
                    method=method,
                    phone=phone.name,
                    latency_ms=simulate_latency(flops, phone),
                )
            )
    return measurements


def latency_by_phone(measurements: Iterable[LatencyMeasurement]) -> Dict[str, Dict[str, float]]:
    """Pivot a list of measurements into ``phone -> method -> latency_ms``."""
    table: Dict[str, Dict[str, float]] = {}
    for measurement in measurements:
        table.setdefault(measurement.phone, {})[measurement.method] = measurement.latency_ms
    return table


def check_realtime_budget(
    measurements: Iterable[LatencyMeasurement], budget_ms: float = 12.0
) -> bool:
    """True when every measured latency is within the real-time budget.

    The paper reports that all methods stay under 12 ms on all phones.
    """
    if budget_ms <= 0:
        raise DeploymentError("budget_ms must be positive")
    return all(measurement.latency_ms <= budget_ms for measurement in measurements)


def phone_latency_profile(model: Module, window_length: int) -> Dict[str, float]:
    """Latency of one model on every phone, keyed by phone name."""
    return {
        phone.name: model_latency(model, window_length, phone) for phone in all_phones()
    }


__all__ = [
    "LatencyMeasurement",
    "simulate_latency",
    "model_latency",
    "latency_table",
    "latency_by_phone",
    "check_realtime_budget",
    "phone_latency_profile",
    "get_phone",
]
