"""Deployment cost model: devices, FLOPs/params accounting, latency simulation."""

from .cost_model import (
    FLOAT32_BYTES,
    ModelCost,
    TrainingCost,
    estimate_activation_bytes,
    estimate_flops,
    make_training_cost,
    model_cost,
    training_memory_bytes,
)
from .devices import PHONE_ORDER, PHONES, PhoneSpec, all_phones, get_phone
from .latency import (
    LatencyMeasurement,
    check_realtime_budget,
    latency_by_phone,
    latency_table,
    model_latency,
    phone_latency_profile,
    simulate_latency,
)

__all__ = [
    "PhoneSpec",
    "PHONES",
    "PHONE_ORDER",
    "get_phone",
    "all_phones",
    "ModelCost",
    "TrainingCost",
    "FLOAT32_BYTES",
    "model_cost",
    "estimate_flops",
    "estimate_activation_bytes",
    "training_memory_bytes",
    "make_training_cost",
    "LatencyMeasurement",
    "simulate_latency",
    "model_latency",
    "latency_table",
    "latency_by_phone",
    "check_realtime_budget",
    "phone_latency_profile",
]
