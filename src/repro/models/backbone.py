"""Saga / LIMU-BERT backbone feature extractor.

The backbone `M_B` (paper Sections III and V) is the LIMU-BERT encoder: the
raw IMU window is linearly projected to the hidden dimension, learned
positional embeddings are added, and a stack of 4 lightweight transformer
blocks with hidden dimension 72 produces one representation per time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..nn import Dropout, LayerNorm, Linear, Module, PositionalEmbedding, Tensor, TransformerEncoder
from ..nn.tensor import ensure_tensor
from ..rng import make_rng


@dataclass
class BackboneConfig:
    """Architecture of the backbone encoder (paper Section VII-A-1)."""

    input_channels: int = 6
    window_length: int = 120
    hidden_dim: int = 72
    num_layers: int = 4
    num_heads: int = 4
    intermediate_dim: int = 144
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if self.input_channels <= 0 or self.window_length <= 0:
            raise ConfigurationError("input_channels and window_length must be positive")
        if self.hidden_dim <= 0 or self.num_layers <= 0 or self.num_heads <= 0:
            raise ConfigurationError("hidden_dim, num_layers and num_heads must be positive")
        if self.hidden_dim % self.num_heads != 0:
            raise ConfigurationError("hidden_dim must be divisible by num_heads")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigurationError("dropout must be in [0, 1)")


class SagaBackbone(Module):
    """LIMU-BERT-style transformer encoder over IMU windows.

    Forward input: ``(batch, window_length, input_channels)``.
    Forward output: ``(batch, window_length, hidden_dim)``.
    """

    def __init__(self, config: Optional[BackboneConfig] = None, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config if config is not None else BackboneConfig()
        generator = rng if rng is not None else make_rng()
        cfg = self.config
        self.input_projection = Linear(cfg.input_channels, cfg.hidden_dim, rng=generator)
        self.input_norm = LayerNorm(cfg.hidden_dim)
        self.positional = PositionalEmbedding(cfg.window_length, cfg.hidden_dim, rng=generator)
        self.embedding_dropout = Dropout(cfg.dropout, rng=generator)
        self.encoder = TransformerEncoder(
            num_layers=cfg.num_layers,
            hidden_dim=cfg.hidden_dim,
            num_heads=cfg.num_heads,
            intermediate_dim=cfg.intermediate_dim,
            dropout=cfg.dropout,
            rng=generator,
        )

    def forward(self, windows, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        x = ensure_tensor(windows)
        if x.ndim != 3:
            raise ConfigurationError(
                f"backbone expects input of shape (batch, length, channels), got {x.shape}"
            )
        if x.shape[2] != self.config.input_channels:
            raise ConfigurationError(
                f"backbone was built for {self.config.input_channels} channels, got {x.shape[2]}"
            )
        # Harmonise the input with the parameter precision at the entry of the
        # hot path: without this, float64 windows fed to a float32 model would
        # silently promote every downstream op back to float64.
        x = x.astype(self.input_projection.weight.dtype)
        hidden = self.input_norm(self.input_projection(x))
        hidden = self.positional(hidden)
        hidden = self.embedding_dropout(hidden)
        return self.encoder(hidden, attention_mask=attention_mask)

    def representation(self, windows, pooling: str = "mean") -> Tensor:
        """Window-level representation obtained by pooling over time.

        ``mean`` pooling is the LIMU-BERT default; ``last`` takes the final
        time step, ``max`` the elementwise maximum.
        """
        sequence = self.forward(windows)
        if pooling == "mean":
            return sequence.mean(axis=1)
        if pooling == "last":
            return sequence[:, -1, :]
        if pooling == "max":
            return sequence.max(axis=1)
        raise ConfigurationError(f"unknown pooling {pooling!r}; use 'mean', 'last' or 'max'")
