"""Composite models wiring the backbone to pre-training and downstream heads."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..nn import Module, Tensor
from ..rng import make_rng
from .backbone import BackboneConfig, SagaBackbone
from .classifier import GRUClassifier
from .decoder import ReconstructionDecoder


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Raw-ndarray softmax, bit-identical to ``repro.nn.functional.softmax``.

    Shared by the eager ``predict_proba`` and the serving stack's compiled
    hot path, so precision/parity assertions compare like with like: same
    shifted-exponential, same ``exp * sum**-1`` normalisation order.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    return shifted * (shifted.sum(axis=-1, keepdims=True) ** -1.0)


class MaskedReconstructionModel(Module):
    """Backbone + reconstruction decoder used during pre-training.

    The same decoder is shared across all four masking levels: the levels
    differ only in *which* entries are masked, not in the reconstruction
    head, so multi-task pre-training adds no extra model structure (this is
    why Saga's parameter and disk costs equal LIMU's in Table IV).
    """

    def __init__(
        self,
        backbone: SagaBackbone,
        decoder: Optional[ReconstructionDecoder] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.backbone = backbone
        if decoder is None:
            decoder = ReconstructionDecoder(
                hidden_dim=backbone.config.hidden_dim,
                output_channels=backbone.config.input_channels,
                rng=rng,
            )
        if decoder.output_channels != backbone.config.input_channels:
            raise ConfigurationError(
                "decoder output channels must match the backbone input channels"
            )
        self.decoder = decoder

    def forward(self, masked_windows) -> Tensor:
        """Reconstruct the original window from a masked copy."""
        return self.decoder(self.backbone(masked_windows))

    def reconstruct_all_levels(self, masked_by_level: Mapping[str, np.ndarray]) -> Dict[str, Tensor]:
        """Reconstruct one masked copy per level; returns ``level -> reconstruction``."""
        return {level: self.forward(masked) for level, masked in masked_by_level.items()}


class ClassificationModel(Module):
    """Backbone + GRU classifier used for downstream fine-tuning and inference.

    All parameters (backbone included) stay trainable during fine-tuning, as
    in the paper ("All parameters are kept trainable during fine-tuning").
    """

    def __init__(
        self,
        backbone: SagaBackbone,
        num_classes: int,
        classifier_hidden_dim: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_classes <= 0:
            raise ConfigurationError("num_classes must be positive")
        self.backbone = backbone
        self.num_classes = num_classes
        self.classifier = GRUClassifier(
            input_dim=backbone.config.hidden_dim,
            num_classes=num_classes,
            hidden_dim=classifier_hidden_dim,
            rng=rng,
        )

    def forward(self, windows) -> Tensor:
        """Return class logits for a batch of raw IMU windows."""
        return self.classifier(self.backbone(windows))

    def predict(self, windows) -> np.ndarray:
        """Return hard class predictions (argmax over logits) without gradients."""
        return self.inference(windows).data.argmax(axis=-1)

    def predict_proba(self, windows) -> np.ndarray:
        """Return class probabilities ``(batch, num_classes)`` without gradients."""
        logits = self.inference(windows)
        return softmax_probabilities(logits.data)


def build_pretraining_model(
    config: Optional[BackboneConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> MaskedReconstructionModel:
    """Construct a fresh backbone + decoder pair for pre-training."""
    generator = rng if rng is not None else make_rng()
    backbone = SagaBackbone(config, rng=generator)
    return MaskedReconstructionModel(backbone, rng=generator)


def build_classification_model(
    backbone: SagaBackbone,
    num_classes: int,
    classifier_hidden_dim: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> ClassificationModel:
    """Attach a GRU classifier to an (optionally pre-trained) backbone."""
    return ClassificationModel(
        backbone, num_classes, classifier_hidden_dim=classifier_hidden_dim, rng=rng
    )
