"""Model definitions: backbone, reconstruction decoder, classifiers."""

from .backbone import BackboneConfig, SagaBackbone
from .classifier import GRUClassifier, MLPClassifier
from .composite import (
    ClassificationModel,
    MaskedReconstructionModel,
    build_classification_model,
    build_pretraining_model,
)
from .decoder import ReconstructionDecoder

__all__ = [
    "BackboneConfig",
    "SagaBackbone",
    "ReconstructionDecoder",
    "GRUClassifier",
    "MLPClassifier",
    "MaskedReconstructionModel",
    "ClassificationModel",
    "build_pretraining_model",
    "build_classification_model",
]
