"""Reconstruction decoder used during masked pre-training.

The pre-training objective regresses the original IMU values at the masked
positions from the backbone representations.  Following LIMU-BERT, the
decoder is a small per-time-step MLP projecting the hidden representation
back to the raw channel dimension; it adds no parameters to the deployed
model because only the backbone (plus classifier) is used at inference time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..nn import LayerNorm, Linear, Module, Tensor
from ..nn.tensor import ensure_tensor
from ..rng import make_rng


class ReconstructionDecoder(Module):
    """Per-time-step MLP mapping hidden representations back to IMU channels."""

    def __init__(
        self,
        hidden_dim: int,
        output_channels: int,
        intermediate_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_dim <= 0 or output_channels <= 0:
            raise ConfigurationError("hidden_dim and output_channels must be positive")
        generator = rng if rng is not None else make_rng()
        intermediate = intermediate_dim if intermediate_dim is not None else hidden_dim
        self.hidden_dim = hidden_dim
        self.output_channels = output_channels
        self.dense = Linear(hidden_dim, intermediate, rng=generator)
        self.norm = LayerNorm(intermediate)
        self.output = Linear(intermediate, output_channels, rng=generator)

    def forward(self, hidden: Tensor) -> Tensor:
        hidden = ensure_tensor(hidden)
        if hidden.shape[-1] != self.hidden_dim:
            raise ConfigurationError(
                f"decoder expects hidden dim {self.hidden_dim}, got {hidden.shape[-1]}"
            )
        return self.output(self.norm(self.dense(hidden).gelu()))
