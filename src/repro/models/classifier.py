"""Downstream classifier heads.

The paper fine-tunes the backbone with a GRU classifier (Section VII-A-1).
A simple MLP head is also provided for ablations and for the contrastive
baselines' linear-evaluation protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..nn import GRU, Dropout, Linear, Module, Tensor
from ..nn.tensor import ensure_tensor
from ..rng import make_rng


class GRUClassifier(Module):
    """GRU over backbone representations followed by a linear class head."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 32,
        num_layers: int = 1,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or num_classes <= 0 or hidden_dim <= 0:
            raise ConfigurationError("input_dim, num_classes and hidden_dim must be positive")
        generator = rng if rng is not None else make_rng()
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.gru = GRU(input_dim, hidden_dim, num_layers=num_layers, rng=generator)
        self.dropout = Dropout(dropout, rng=generator)
        self.head = Linear(hidden_dim, num_classes, rng=generator)

    def forward(self, sequence: Tensor) -> Tensor:
        """Return class logits ``(batch, num_classes)`` from ``(batch, length, input_dim)``."""
        sequence = ensure_tensor(sequence)
        if sequence.ndim != 3:
            raise ConfigurationError(
                f"classifier expects (batch, length, dim) input, got shape {sequence.shape}"
            )
        _, final_hidden = self.gru(sequence)
        return self.head(self.dropout(final_hidden))


class MLPClassifier(Module):
    """Two-layer MLP over pooled (window-level) representations."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or num_classes <= 0 or hidden_dim <= 0:
            raise ConfigurationError("input_dim, num_classes and hidden_dim must be positive")
        generator = rng if rng is not None else make_rng()
        self.dense = Linear(input_dim, hidden_dim, rng=generator)
        self.dropout = Dropout(dropout, rng=generator)
        self.head = Linear(hidden_dim, num_classes, rng=generator)

    def forward(self, features: Tensor) -> Tensor:
        features = ensure_tensor(features)
        if features.ndim != 2:
            raise ConfigurationError(
                f"MLP classifier expects (batch, dim) input, got shape {features.shape}"
            )
        return self.head(self.dropout(self.dense(features).relu()))
