"""Single source of truth for the package version.

Lives in its own module (rather than ``repro/__init__``) so subsystems that
key caches on the code version — :mod:`repro.experiments.cache` — can import
it without importing the whole package, and without circular imports.
"""

__version__ = "1.9.0"
