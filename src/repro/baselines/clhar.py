"""CL-HAR baseline (Qian et al., KDD 2022) — contrastive pre-training.

CL-HAR pre-trains a convolutional encoder with SimCLR-style contrastive
learning: every window is transformed into two augmented views, projected
through an MLP head, and the NT-Xent loss pulls the two views of the same
window together while pushing the other windows in the batch apart.  The
encoder is then fine-tuned with an MLP classifier on the labelled subset.

Following the paper's setup, only "complete" augmentations (expressible in
terms of the original observations and known physical states) are used —
rotation, scaling and jitter.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import TrainingError
from ..models.classifier import MLPClassifier
from ..rng import make_rng
from ..nn import (
    Adam,
    Conv1d,
    GlobalMaxPool1d,
    Linear,
    Module,
    NTXentLoss,
    Tensor,
    clip_grad_norm,
    get_default_dtype,
    no_grad,
)
from ..signal.augmentations import compose
from ..training.metrics import ClassificationMetrics, evaluate_predictions
from .base import MethodBudget, PerceptionMethod


class ConvEncoder(Module):
    """Three-block 1-D convolutional encoder producing window-level embeddings."""

    def __init__(
        self,
        input_channels: int,
        embedding_dim: int = 96,
        channel_sizes: Sequence[int] = (32, 64, 96),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        sizes = list(channel_sizes)
        self.conv1 = Conv1d(input_channels, sizes[0], kernel_size=5, stride=2, padding=2, rng=generator)
        self.conv2 = Conv1d(sizes[0], sizes[1], kernel_size=5, stride=2, padding=2, rng=generator)
        self.conv3 = Conv1d(sizes[1], sizes[2], kernel_size=3, stride=1, padding=1, rng=generator)
        self.pool = GlobalMaxPool1d()
        self.projection = Linear(sizes[2], embedding_dim, rng=generator)
        self.embedding_dim = embedding_dim

    def forward(self, windows) -> Tensor:
        x = Tensor(np.asarray(windows, dtype=get_default_dtype())) if not isinstance(windows, Tensor) else windows
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        x = self.conv3(x).relu()
        return self.projection(self.pool(x))


class ProjectionHead(Module):
    """Two-layer MLP projection head used only during contrastive pre-training."""

    def __init__(self, input_dim: int, output_dim: int = 48, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        self.dense = Linear(input_dim, input_dim, rng=generator)
        self.output = Linear(input_dim, output_dim, rng=generator)

    def forward(self, x: Tensor) -> Tensor:
        return self.output(self.dense(x).relu())


class CLHARMethod(PerceptionMethod):
    """SimCLR-style contrastive pre-training on IMU windows."""

    name = "clhar"

    def __init__(
        self,
        budget: Optional[MethodBudget] = None,
        embedding_dim: int = 96,
        temperature: float = 0.5,
        augmentations: Sequence[str] = ("rotation", "scaling", "jitter"),
        classifier_hidden_dim: int = 64,
    ) -> None:
        self.budget = budget if budget is not None else MethodBudget()
        self.embedding_dim = embedding_dim
        self.temperature = temperature
        self.augmentations = tuple(augmentations)
        self.classifier_hidden_dim = classifier_hidden_dim
        self._encoder: Optional[ConvEncoder] = None
        self._classifier: Optional[MLPClassifier] = None

    # ------------------------------------------------------------------
    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        encoder = ConvEncoder(unlabelled.num_channels, embedding_dim=self.embedding_dim, rng=rng)
        projector = ProjectionHead(self.embedding_dim, rng=rng)
        loss_fn = NTXentLoss(temperature=self.temperature)
        parameters = encoder.parameters() + projector.parameters()
        optimizer = Adam(parameters, lr=self.budget.learning_rate)
        augment = compose(self.augmentations)
        loader = DataLoader(
            unlabelled,
            batch_size=self.budget.batch_size,
            shuffle=True,
            drop_last=True,
            rng=rng,
        )
        encoder.train()
        projector.train()
        for _ in range(self.budget.pretrain_epochs):
            for batch in loader:
                if len(batch) < 2:
                    continue
                view1 = augment(batch.windows, rng)
                view2 = augment(batch.windows, rng)
                z1 = projector(encoder(view1))
                z2 = projector(encoder(view2))
                loss = loss_fn(z1, z2)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(parameters, 5.0)
                optimizer.step()
        encoder.eval()
        self._encoder = encoder

    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        if self._encoder is None:
            raise TrainingError("CL-HAR requires pretrain() before fit()")
        del validation  # the contrastive baseline does not early-stop
        num_classes = labelled.num_classes(task)
        classifier = MLPClassifier(
            self.embedding_dim, num_classes, hidden_dim=self.classifier_hidden_dim, rng=rng
        )
        from ..nn import CrossEntropyLoss

        loss_fn = CrossEntropyLoss()
        parameters = self._encoder.parameters() + classifier.parameters()
        optimizer = Adam(parameters, lr=self.budget.learning_rate)
        loader = DataLoader(
            labelled, batch_size=self.budget.batch_size, task=task, shuffle=True, rng=rng
        )
        self._encoder.train()
        classifier.train()
        for _ in range(self.budget.finetune_epochs):
            for batch in loader:
                logits = classifier(self._encoder(batch.windows))
                loss = loss_fn(logits, batch.labels)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(parameters, 5.0)
                optimizer.step()
        self._encoder.eval()
        classifier.eval()
        self._classifier = classifier

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        if self._encoder is None or self._classifier is None:
            raise TrainingError("CL-HAR must be fitted before evaluation")
        labels = dataset.task_labels(task)
        predictions = np.empty(len(dataset), dtype=np.int64)
        loader = DataLoader(dataset, batch_size=128, task=task, shuffle=False)
        with no_grad():
            for batch in loader:
                logits = self._classifier(self._encoder(batch.windows))
                predictions[batch.indices] = logits.data.argmax(axis=-1)
        return evaluate_predictions(predictions, labels, dataset.num_classes(task))

    def num_parameters(self) -> int:
        if self._encoder is None:
            raise TrainingError("CL-HAR has no model yet")
        total = self._encoder.num_parameters()
        if self._classifier is not None:
            total += self._classifier.num_parameters()
        return total
