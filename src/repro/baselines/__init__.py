"""Candidate baseline methods compared against Saga (paper Section VII-A-3)."""

from .base import MethodBudget, PerceptionMethod
from .clhar import CLHARMethod, ConvEncoder, ProjectionHead
from .limu import LIMUMethod
from .no_pretrain import NoPretrainMethod
from .tpn import SmallConvEncoder, TPNMethod

__all__ = [
    "PerceptionMethod",
    "MethodBudget",
    "LIMUMethod",
    "CLHARMethod",
    "ConvEncoder",
    "ProjectionHead",
    "TPNMethod",
    "SmallConvEncoder",
    "NoPretrainMethod",
]
