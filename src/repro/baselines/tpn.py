"""TPN baseline (Saeed et al., IMWUT 2019) — transformation-prediction networks.

TPN pre-trains a small convolutional encoder with multi-task self-supervision:
for each of a set of signal transformations, a binary head predicts whether
the transformation was applied to the input window.  After pre-training, an
MLP classifier is trained on top of the (frozen-structure, trainable) encoder.

TPN's encoder is deliberately small — the paper's Table IV / Figure 13 show
it has the lowest training time and inference latency but also markedly lower
accuracy, which this implementation reproduces structurally.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.base import IMUDataset
from ..datasets.loaders import DataLoader
from ..exceptions import TrainingError
from ..models.classifier import MLPClassifier
from ..rng import make_rng
from ..nn import (
    Adam,
    Conv1d,
    CrossEntropyLoss,
    GlobalMaxPool1d,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    get_default_dtype,
    no_grad,
)
from ..signal.augmentations import get_augmentation
from ..training.metrics import ClassificationMetrics, evaluate_predictions
from .base import MethodBudget, PerceptionMethod


class SmallConvEncoder(Module):
    """Compact two-block convolutional encoder (the TPN trunk)."""

    def __init__(
        self,
        input_channels: int,
        embedding_dim: int = 48,
        channel_sizes: Sequence[int] = (24, 48),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        sizes = list(channel_sizes)
        self.conv1 = Conv1d(input_channels, sizes[0], kernel_size=7, stride=3, padding=3, rng=generator)
        self.conv2 = Conv1d(sizes[0], sizes[1], kernel_size=5, stride=2, padding=2, rng=generator)
        self.pool = GlobalMaxPool1d()
        self.projection = Linear(sizes[1], embedding_dim, rng=generator)
        self.embedding_dim = embedding_dim

    def forward(self, windows) -> Tensor:
        x = Tensor(np.asarray(windows, dtype=get_default_dtype())) if not isinstance(windows, Tensor) else windows
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        return self.projection(self.pool(x))


class TPNMethod(PerceptionMethod):
    """Multi-task transformation-prediction pre-training."""

    name = "tpn"

    def __init__(
        self,
        budget: Optional[MethodBudget] = None,
        embedding_dim: int = 48,
        transformations: Sequence[str] = ("rotation", "scaling", "jitter", "negation"),
        classifier_hidden_dim: int = 48,
    ) -> None:
        self.budget = budget if budget is not None else MethodBudget()
        self.embedding_dim = embedding_dim
        self.transformations = tuple(transformations)
        self.classifier_hidden_dim = classifier_hidden_dim
        self._encoder: Optional[SmallConvEncoder] = None
        self._heads: Optional[list] = None
        self._classifier: Optional[MLPClassifier] = None

    # ------------------------------------------------------------------
    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        encoder = SmallConvEncoder(unlabelled.num_channels, embedding_dim=self.embedding_dim, rng=rng)
        heads = [Linear(self.embedding_dim, 2, rng=rng) for _ in self.transformations]
        parameters = encoder.parameters()
        for head in heads:
            parameters = parameters + head.parameters()
        optimizer = Adam(parameters, lr=self.budget.learning_rate)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(
            unlabelled, batch_size=self.budget.batch_size, shuffle=True, rng=rng
        )
        encoder.train()
        for _ in range(self.budget.pretrain_epochs):
            for batch in loader:
                total_loss = None
                for transform_name, head in zip(self.transformations, heads):
                    transform = get_augmentation(transform_name)
                    apply_mask = rng.random(len(batch)) < 0.5
                    inputs = batch.windows.copy()
                    if apply_mask.any():
                        inputs[apply_mask] = transform(inputs[apply_mask], rng)
                    labels = apply_mask.astype(np.int64)
                    logits = head(encoder(inputs))
                    loss = loss_fn(logits, labels)
                    total_loss = loss if total_loss is None else total_loss + loss
                optimizer.zero_grad()
                total_loss.backward()
                clip_grad_norm(parameters, 5.0)
                optimizer.step()
        encoder.eval()
        self._encoder = encoder
        self._heads = heads

    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        if self._encoder is None:
            raise TrainingError("TPN requires pretrain() before fit()")
        del validation
        num_classes = labelled.num_classes(task)
        classifier = MLPClassifier(
            self.embedding_dim, num_classes, hidden_dim=self.classifier_hidden_dim, rng=rng
        )
        loss_fn = CrossEntropyLoss()
        parameters = self._encoder.parameters() + classifier.parameters()
        optimizer = Adam(parameters, lr=self.budget.learning_rate)
        loader = DataLoader(
            labelled, batch_size=self.budget.batch_size, task=task, shuffle=True, rng=rng
        )
        self._encoder.train()
        classifier.train()
        for _ in range(self.budget.finetune_epochs):
            for batch in loader:
                logits = classifier(self._encoder(batch.windows))
                loss = loss_fn(logits, batch.labels)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(parameters, 5.0)
                optimizer.step()
        self._encoder.eval()
        classifier.eval()
        self._classifier = classifier

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        if self._encoder is None or self._classifier is None:
            raise TrainingError("TPN must be fitted before evaluation")
        labels = dataset.task_labels(task)
        predictions = np.empty(len(dataset), dtype=np.int64)
        loader = DataLoader(dataset, batch_size=128, task=task, shuffle=False)
        with no_grad():
            for batch in loader:
                logits = self._classifier(self._encoder(batch.windows))
                predictions[batch.indices] = logits.data.argmax(axis=-1)
        return evaluate_predictions(predictions, labels, dataset.num_classes(task))

    def num_parameters(self) -> int:
        if self._encoder is None:
            raise TrainingError("TPN has no model yet")
        total = self._encoder.num_parameters()
        if self._classifier is not None:
            total += self._classifier.num_parameters()
        return total
