"""Common interface implemented by every candidate method.

The evaluation compares five methods (paper Section VII-A-3): Saga, LIMU,
CL-HAR, TPN and a no-pre-training supervised model.  They all follow the same
two-stage protocol — (1) optional pre-training on unlabelled windows,
(2) supervised training on a small labelled subset — so a shared abstract
interface keeps the experiment runner method-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..exceptions import ConfigurationError
from ..training.metrics import ClassificationMetrics


@dataclass
class MethodBudget:
    """Shared training budget so all methods are compared fairly."""

    pretrain_epochs: int = 50
    finetune_epochs: int = 50
    batch_size: int = 32
    learning_rate: float = 1e-3

    def __post_init__(self) -> None:
        if self.pretrain_epochs < 0 or self.finetune_epochs <= 0:
            raise ConfigurationError("epochs must be positive (pretrain may be zero)")
        if self.batch_size <= 0 or self.learning_rate <= 0:
            raise ConfigurationError("batch_size and learning_rate must be positive")


class PerceptionMethod(abc.ABC):
    """A candidate method for the IMU-based user perception (IUP) problem."""

    #: Short identifier used in result tables ("saga", "limu", ...).
    name: str = "method"

    @abc.abstractmethod
    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        """Pre-train on unlabelled windows (may be a no-op)."""

    @abc.abstractmethod
    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        """Train the downstream classifier on the labelled subset."""

    @abc.abstractmethod
    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        """Evaluate the trained classifier on ``dataset``."""

    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Number of scalar parameters of the deployed (inference-time) model."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
