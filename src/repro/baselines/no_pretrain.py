"""Supervised-only baseline ("No Pre.") — no use of unlabelled data.

The same backbone + GRU classifier architecture as Saga/LIMU, trained from a
random initialisation directly on the small labelled subset.  The paper uses
this baseline to quantify the value of pre-training (Figure 6: pre-trained
methods beat it by over 30% at low labelling rates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..exceptions import TrainingError
from ..models.backbone import BackboneConfig, SagaBackbone
from ..training.finetune import FinetuneConfig, Finetuner, evaluate_model
from ..training.metrics import ClassificationMetrics
from .base import MethodBudget, PerceptionMethod


class NoPretrainMethod(PerceptionMethod):
    """Train the backbone + GRU classifier from scratch on labelled data only."""

    name = "no_pretrain"

    def __init__(
        self,
        backbone_config: Optional[BackboneConfig] = None,
        budget: Optional[MethodBudget] = None,
    ) -> None:
        self.backbone_config = backbone_config
        self.budget = budget if budget is not None else MethodBudget()
        self._backbone: Optional[SagaBackbone] = None
        self._classifier_model = None

    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        """No-op: this baseline ignores unlabelled data (it only fixes the input shape)."""
        backbone_config = self.backbone_config
        if backbone_config is None:
            backbone_config = BackboneConfig(
                input_channels=unlabelled.num_channels,
                window_length=unlabelled.window_length,
            )
        self._backbone = SagaBackbone(backbone_config, rng=rng)

    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        if self._backbone is None:
            # Allow fit() without an explicit pretrain() call.
            backbone_config = self.backbone_config
            if backbone_config is None:
                backbone_config = BackboneConfig(
                    input_channels=labelled.num_channels,
                    window_length=labelled.window_length,
                )
            self._backbone = SagaBackbone(backbone_config, rng=rng)
        config = FinetuneConfig(
            epochs=self.budget.finetune_epochs,
            batch_size=self.budget.batch_size,
            learning_rate=self.budget.learning_rate,
        )
        result = Finetuner(config).finetune(
            self._backbone, labelled, task, validation_dataset=validation, rng=rng
        )
        self._classifier_model = result.model

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        if self._classifier_model is None:
            raise TrainingError("the supervised baseline must be fitted before evaluation")
        return evaluate_model(self._classifier_model, dataset, task)

    def num_parameters(self) -> int:
        if self._classifier_model is not None:
            return self._classifier_model.num_parameters()
        if self._backbone is not None:
            return self._backbone.num_parameters()
        raise TrainingError("the supervised baseline has no model yet")
