"""LIMU-BERT baseline (Xu et al., SenSys 2021).

LIMU pre-trains the same transformer backbone used by Saga but with a single
pre-training task: point-level span masking (the Masked-Language-Model
analogue for IMU data).  Saga is implemented on top of LIMU (paper Section
VII-A-1: "Our implementation is based on LIMU and incorporates multi-level
masking techniques and weight searching"), so this baseline is literally the
Saga pipeline restricted to the point level with weight 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.base import IMUDataset
from ..exceptions import TrainingError
from ..masking.multi import MultiLevelMaskingConfig
from ..models.backbone import BackboneConfig, SagaBackbone
from ..training.finetune import FinetuneConfig, Finetuner, evaluate_model
from ..training.metrics import ClassificationMetrics
from ..training.pretrain import PretrainConfig, Pretrainer
from .base import MethodBudget, PerceptionMethod


class LIMUMethod(PerceptionMethod):
    """Point-level masked pre-training + GRU classifier fine-tuning."""

    name = "limu"

    def __init__(
        self,
        backbone_config: Optional[BackboneConfig] = None,
        budget: Optional[MethodBudget] = None,
        point_success_probability: float = 0.3,
        point_max_span_length: int = 20,
    ) -> None:
        self.backbone_config = backbone_config
        self.budget = budget if budget is not None else MethodBudget()
        self.point_success_probability = point_success_probability
        self.point_max_span_length = point_max_span_length
        self._backbone: Optional[SagaBackbone] = None
        self._classifier_model = None

    # ------------------------------------------------------------------
    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        masking = MultiLevelMaskingConfig(
            levels=("point",),
            point_success_probability=self.point_success_probability,
            point_max_span_length=self.point_max_span_length,
        )
        config = PretrainConfig(
            epochs=self.budget.pretrain_epochs,
            batch_size=self.budget.batch_size,
            learning_rate=self.budget.learning_rate,
            masking=masking,
        )
        backbone_config = self.backbone_config
        if backbone_config is None:
            backbone_config = BackboneConfig(
                input_channels=unlabelled.num_channels,
                window_length=unlabelled.window_length,
            )
        result = Pretrainer(config, backbone_config).pretrain(
            unlabelled, weights={"point": 1.0}, rng=rng
        )
        self._backbone = result.model.backbone

    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        if self._backbone is None:
            raise TrainingError("LIMU requires pretrain() before fit()")
        config = FinetuneConfig(
            epochs=self.budget.finetune_epochs,
            batch_size=self.budget.batch_size,
            learning_rate=self.budget.learning_rate,
        )
        result = Finetuner(config).finetune(
            self._backbone, labelled, task, validation_dataset=validation, rng=rng
        )
        self._classifier_model = result.model

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        if self._classifier_model is None:
            raise TrainingError("LIMU must be fitted before evaluation")
        return evaluate_model(self._classifier_model, dataset, task)

    def num_parameters(self) -> int:
        if self._classifier_model is not None:
            return self._classifier_model.num_parameters()
        if self._backbone is not None:
            return self._backbone.num_parameters()
        raise TrainingError("LIMU has no model yet")
