"""Core public API: the Saga pipeline and the experiment runner."""

from .experiment import (
    ABLATION_METHOD_NAMES,
    ALL_METHOD_NAMES,
    PROFILES,
    TOP3_METHOD_NAMES,
    ExperimentProfile,
    ExperimentRunner,
    build_method,
    get_profile,
)
from .saga import SagaConfig, SagaMethod, SagaPipeline

__all__ = [
    "SagaConfig",
    "SagaPipeline",
    "SagaMethod",
    "ExperimentProfile",
    "ExperimentRunner",
    "PROFILES",
    "get_profile",
    "build_method",
    "ALL_METHOD_NAMES",
    "TOP3_METHOD_NAMES",
    "ABLATION_METHOD_NAMES",
]
