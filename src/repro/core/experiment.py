"""Experiment runner: builds methods, runs the evaluation protocol, collects results.

This module drives every accuracy figure of the paper (Fig. 6–12).  It is
deliberately configuration-driven: an :class:`ExperimentProfile` controls the
dataset scale, model size and training budget, so the same code reproduces
the paper-scale experiment on a GPU-class budget (``paper`` profile) and a
minutes-scale CPU run for the benchmark harness (``bench`` / ``ci``
profiles).  The qualitative orderings the paper reports are preserved across
profiles; absolute numbers shrink with the budget.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import CLHARMethod, LIMUMethod, MethodBudget, NoPretrainMethod, PerceptionMethod, TPNMethod
from ..bayesopt.search import LWSConfig
from ..datasets.base import DatasetSplits, IMUDataset
from ..datasets.registry import load_dataset
from ..evaluation.protocol import LABELLING_RATES, validate_pair
from ..evaluation.results import ExperimentRecord, ResultTable
from ..exceptions import ConfigurationError
from ..logging_utils import get_logger
from ..models.backbone import BackboneConfig
from .saga import SagaMethod

logger = get_logger(__name__)


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs for one experiment run."""

    name: str
    dataset_scale: float
    window_length: int
    hidden_dim: int
    num_layers: int
    num_heads: int
    intermediate_dim: int
    pretrain_epochs: int
    finetune_epochs: int
    batch_size: int
    lws_budget: int
    lws_initial_random: int
    learning_rate: float = 1e-3
    saga_weights_policy: str = "search"
    labelling_rates: Tuple[float, ...] = LABELLING_RATES
    seed: int = 0

    def backbone_config(self, input_channels: int) -> BackboneConfig:
        """Backbone architecture for this profile."""
        return BackboneConfig(
            input_channels=input_channels,
            window_length=self.window_length,
            hidden_dim=self.hidden_dim,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            intermediate_dim=self.intermediate_dim,
        )

    def budget(self) -> MethodBudget:
        """Shared training budget for all candidate methods."""
        return MethodBudget(
            pretrain_epochs=self.pretrain_epochs,
            finetune_epochs=self.finetune_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
        )

    def lws_config(self) -> LWSConfig:
        return LWSConfig(budget=self.lws_budget, initial_random=self.lws_initial_random)


PROFILES: Dict[str, ExperimentProfile] = {
    # Paper-scale settings (Section VII-A-1): window 120, hidden 72, 4 blocks,
    # 50 + 50 epochs.  Intended for long unattended runs.
    "paper": ExperimentProfile(
        name="paper", dataset_scale=1.0, window_length=120,
        hidden_dim=72, num_layers=4, num_heads=4, intermediate_dim=144,
        pretrain_epochs=50, finetune_epochs=50, batch_size=32,
        lws_budget=8, lws_initial_random=3, saga_weights_policy="search",
    ),
    # Reduced settings that still run every component (including LWS search)
    # in tens of minutes on a laptop CPU.
    "quick": ExperimentProfile(
        name="quick", dataset_scale=0.15, window_length=60,
        hidden_dim=36, num_layers=2, num_heads=2, intermediate_dim=72,
        pretrain_epochs=10, finetune_epochs=25, batch_size=32,
        lws_budget=4, lws_initial_random=2, learning_rate=2e-3,
        saga_weights_policy="search",
    ),
    # Benchmark-harness settings: minutes for the full figure suite.  Saga uses
    # uniform multi-level weights here; the LWS search itself is exercised by
    # the ablation benchmark (Fig. 12) and its own unit tests.
    "bench": ExperimentProfile(
        name="bench", dataset_scale=0.06, window_length=40,
        hidden_dim=16, num_layers=1, num_heads=2, intermediate_dim=32,
        pretrain_epochs=5, finetune_epochs=20, batch_size=32,
        lws_budget=3, lws_initial_random=2, learning_rate=3e-3,
        saga_weights_policy="uniform",
    ),
    # Continuous-integration settings: seconds per experiment, used by tests.
    "ci": ExperimentProfile(
        name="ci", dataset_scale=0.02, window_length=30,
        hidden_dim=8, num_layers=1, num_heads=1, intermediate_dim=16,
        pretrain_epochs=1, finetune_epochs=2, batch_size=16,
        lws_budget=2, lws_initial_random=1, learning_rate=3e-3,
        saga_weights_policy="uniform",
        labelling_rates=(0.10, 0.20),
    ),
}


def get_profile(name: Optional[str] = None) -> ExperimentProfile:
    """Resolve a profile by name, honouring the ``REPRO_PROFILE`` environment variable."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "bench")
    key = name.lower()
    if key not in PROFILES:
        raise ConfigurationError(f"unknown profile {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[key]


ALL_METHOD_NAMES: Tuple[str, ...] = ("saga", "limu", "clhar", "tpn", "no_pretrain")
"""The five candidate methods of the main comparison (Fig. 6)."""

TOP3_METHOD_NAMES: Tuple[str, ...] = ("saga", "limu", "clhar")
"""The top-3 methods shown in the per-task detail figures (Fig. 7–11)."""

ABLATION_METHOD_NAMES: Tuple[str, ...] = (
    "saga_sensor", "saga_point", "saga_subperiod", "saga_period", "saga_random", "saga",
)
"""The ablation variants of Fig. 12 (Saga(se./po./sp./pe./ran.) and full Saga)."""


def build_method(name: str, profile: ExperimentProfile, input_channels: int) -> PerceptionMethod:
    """Instantiate a candidate method scaled to ``profile``."""
    budget = profile.budget()
    backbone = profile.backbone_config(input_channels)
    key = name.lower()
    if key == "saga":
        return SagaMethod(
            weights=profile.saga_weights_policy,
            backbone_config=backbone,
            budget=budget,
            lws_config=profile.lws_config(),
            name="saga",
        )
    if key == "saga_random":
        return SagaMethod(weights="random", backbone_config=backbone, budget=budget, name="saga_random")
    if key == "saga_uniform":
        return SagaMethod(weights="uniform", backbone_config=backbone, budget=budget, name="saga_uniform")
    if key == "saga_search":
        return SagaMethod(
            weights="search", backbone_config=backbone, budget=budget,
            lws_config=profile.lws_config(), name="saga_search",
        )
    single_level = {
        "saga_sensor": "sensor",
        "saga_point": "point",
        "saga_subperiod": "subperiod",
        "saga_period": "period",
    }
    if key in single_level:
        level = single_level[key]
        return SagaMethod(
            weights={level: 1.0}, levels=(level,), backbone_config=backbone,
            budget=budget, name=key,
        )
    if key == "limu":
        return LIMUMethod(backbone_config=backbone, budget=budget)
    if key == "clhar":
        return CLHARMethod(budget=budget)
    if key == "tpn":
        return TPNMethod(budget=budget)
    if key == "no_pretrain":
        return NoPretrainMethod(backbone_config=backbone, budget=budget)
    raise ConfigurationError(f"unknown method {name!r}")


@dataclass
class ExperimentContext:
    """A dataset prepared for one (task, dataset) experiment."""

    dataset_name: str
    task_field: str
    splits: DatasetSplits
    profile: ExperimentProfile


class ExperimentRunner:
    """Run candidate methods through the paper's evaluation protocol."""

    def __init__(self, profile: Optional[ExperimentProfile] = None, seed: Optional[int] = None) -> None:
        self.profile = profile if profile is not None else get_profile()
        self.seed = seed if seed is not None else self.profile.seed
        self._dataset_cache: Dict[str, IMUDataset] = {}
        self._context_cache: Dict[Tuple[str, str], ExperimentContext] = {}

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def load(self, dataset_name: str) -> IMUDataset:
        """Load (and cache) one evaluation dataset at the profile's scale."""
        key = dataset_name.lower()
        if key not in self._dataset_cache:
            dataset = load_dataset(key, scale=self.profile.dataset_scale)
            if self.profile.window_length < dataset.window_length:
                # Stride-subsample the time axis so the reduced window still spans
                # the full 6-second recording (keeping its periodic structure)
                # instead of truncating to the first fraction of it.
                stride = max(1, dataset.window_length // self.profile.window_length)
                subsampled = dataset.windows[:, ::stride, :][:, : self.profile.window_length, :]
                dataset = IMUDataset(
                    windows=subsampled,
                    labels=dataset.labels,
                    metadata=replace(dataset.metadata, window_length=subsampled.shape[1]),
                )
            self._dataset_cache[key] = dataset
        return self._dataset_cache[key]

    def context(self, task_code: str, dataset_name: str) -> ExperimentContext:
        """Prepare the splits for one (task, dataset) pair (cached)."""
        spec = validate_pair(task_code, dataset_name)
        key = (task_code.upper(), dataset_name.lower())
        if key not in self._context_cache:
            dataset = self.load(dataset_name)
            splits = dataset.split(
                rng=np.random.default_rng(self.seed), stratify_task=spec.label_field
            )
            self._context_cache[key] = ExperimentContext(
                dataset_name=dataset_name.lower(),
                task_field=spec.label_field,
                splits=splits,
                profile=self.profile,
            )
        return self._context_cache[key]

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    def run_single(
        self,
        method_name: str,
        task_code: str,
        dataset_name: str,
        labelling_rate: float,
        seed: Optional[int] = None,
    ) -> ExperimentRecord:
        """Run one method at one labelling rate and return its test metrics."""
        context = self.context(task_code, dataset_name)
        run_seed = seed if seed is not None else self.seed
        rng = np.random.default_rng(run_seed)
        method = build_method(method_name, self.profile, context.splits.train.num_channels)
        method.pretrain(context.splits.train, rng)
        return self._fit_and_evaluate(
            method, context, task_code, labelling_rate, run_seed, rng
        )

    def _fit_and_evaluate(
        self,
        method: PerceptionMethod,
        context: ExperimentContext,
        task_code: str,
        labelling_rate: float,
        seed: int,
        rng: np.random.Generator,
    ) -> ExperimentRecord:
        task_field = context.task_field
        labelled = context.splits.train.labelled_fraction(
            task_field, labelling_rate, rng=np.random.default_rng(seed + 1)
        )
        method.fit(labelled, task_field, context.splits.validation, rng)
        metrics = method.evaluate(context.splits.test, task_field)
        logger.info(
            "%s %s/%s rate=%.0f%% acc=%.3f f1=%.3f",
            method.name, task_code, context.dataset_name, 100 * labelling_rate,
            metrics.accuracy, metrics.f1,
        )
        return ExperimentRecord(
            method=method.name,
            task=task_code.upper(),
            dataset=context.dataset_name,
            labelling_rate=labelling_rate,
            accuracy=metrics.accuracy,
            f1=metrics.f1,
            num_train_samples=len(labelled),
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def run_rate_sweep(
        self,
        method_name: str,
        task_code: str,
        dataset_name: str,
        labelling_rates: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ) -> List[ExperimentRecord]:
        """Run one method at every labelling rate, sharing the pre-training stage.

        Pre-training does not depend on the labelling rate, so the method is
        pre-trained once and a deep copy is fine-tuned per rate.  This
        mirrors how the paper's experiments amortise pre-training and keeps
        the benchmark harness tractable on CPU.
        """
        context = self.context(task_code, dataset_name)
        rates = tuple(labelling_rates) if labelling_rates is not None else self.profile.labelling_rates
        run_seed = seed if seed is not None else self.seed
        rng = np.random.default_rng(run_seed)
        method = build_method(method_name, self.profile, context.splits.train.num_channels)
        method.pretrain(context.splits.train, rng)
        records = []
        for rate in rates:
            trial = copy.deepcopy(method)
            trial_rng = np.random.default_rng(run_seed + int(round(rate * 1000)))
            records.append(
                self._fit_and_evaluate(trial, context, task_code, rate, run_seed, trial_rng)
            )
        return records

    def run_comparison(
        self,
        method_names: Sequence[str],
        task_code: str,
        dataset_name: str,
        labelling_rates: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ) -> ResultTable:
        """Compare several methods on one (task, dataset) pair across labelling rates."""
        table = ResultTable()
        for method_name in method_names:
            table.extend(
                self.run_rate_sweep(
                    method_name, task_code, dataset_name,
                    labelling_rates=labelling_rates, seed=seed,
                )
            )
        return table

    def run_full_matrix(
        self,
        method_names: Sequence[str] = ALL_METHOD_NAMES,
        pairs: Optional[Sequence[Tuple[str, str]]] = None,
        labelling_rates: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ) -> ResultTable:
        """Run the full Fig. 6 matrix: all methods x all (task, dataset) pairs x rates."""
        from ..evaluation.protocol import task_dataset_pairs

        table = ResultTable()
        for task_code, dataset_name in (pairs if pairs is not None else task_dataset_pairs()):
            table.extend(
                self.run_comparison(
                    method_names, task_code, dataset_name,
                    labelling_rates=labelling_rates, seed=seed,
                ).records
            )
        return table

    # ------------------------------------------------------------------
    # Reference (full-label) accuracy for relative reporting
    # ------------------------------------------------------------------
    def reference_metrics(
        self, task_code: str, dataset_name: str, method_name: str = "limu", seed: Optional[int] = None
    ) -> ExperimentRecord:
        """Train the reference method on *all* training labels (the paper's normaliser)."""
        return self.run_single(method_name, task_code, dataset_name, labelling_rate=1.0, seed=seed)
