"""Saga: the end-to-end pipeline and its :class:`PerceptionMethod` wrapper.

This module is the primary public API of the reproduction.  Two entry points
are provided:

* :class:`SagaPipeline` — an explicit, step-by-step API: pre-train with given
  weights, search weights with LWS, fine-tune, evaluate.
* :class:`SagaMethod` — the same pipeline behind the common
  :class:`~repro.baselines.base.PerceptionMethod` interface used by the
  experiment runner, configurable as full Saga (LWS search), Saga with fixed
  or random weights (the Saga(ran.) ablation), or single-level ablations
  (Saga(se.), Saga(po.), Saga(sp.), Saga(pe.)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines.base import MethodBudget, PerceptionMethod
from ..bayesopt.search import LWSConfig, LWSResult, LowCostWeightSearch, random_weights
from ..datasets.base import IMUDataset
from ..exceptions import ConfigurationError, TrainingError
from ..logging_utils import get_logger
from ..masking.multi import MASK_LEVELS, MultiLevelMaskingConfig
from ..models.backbone import BackboneConfig, SagaBackbone
from ..models.composite import ClassificationModel
from ..training.finetune import FinetuneConfig, Finetuner, evaluate_model
from ..training.metrics import ClassificationMetrics
from ..training.pretrain import PretrainConfig, Pretrainer
from ..nn.serialization import load_module, save_module

logger = get_logger(__name__)

WeightsSpec = Union[str, Mapping[str, float]]
"""Either a named policy (``"uniform"``, ``"random"``, ``"search"``) or explicit weights."""


@dataclass
class SagaConfig:
    """Complete configuration of the Saga pipeline."""

    backbone: Optional[BackboneConfig] = None
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    finetune: FinetuneConfig = field(default_factory=FinetuneConfig)
    lws: LWSConfig = field(default_factory=LWSConfig)
    levels: Tuple[str, ...] = MASK_LEVELS

    def __post_init__(self) -> None:
        unknown = set(self.levels) - set(MASK_LEVELS)
        if unknown:
            raise ConfigurationError(f"unknown masking levels: {sorted(unknown)}")
        if not self.levels:
            raise ConfigurationError("at least one masking level is required")
        # Restrict the masking configuration (and the LWS search space) to the
        # requested levels.
        self.pretrain.masking = MultiLevelMaskingConfig(
            **{**self.pretrain.masking.__dict__, "levels": self.levels}
        )
        self.lws.levels = self.levels


class SagaPipeline:
    """Step-by-step Saga pipeline: pre-train, (optionally) search weights, fine-tune."""

    def __init__(self, config: Optional[SagaConfig] = None) -> None:
        self.config = config if config is not None else SagaConfig()
        self.backbone: Optional[SagaBackbone] = None
        self.classifier_model: Optional[ClassificationModel] = None
        self.search_result: Optional[LWSResult] = None
        self.weights: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Pre-training
    # ------------------------------------------------------------------
    def pretrain(
        self,
        unlabelled: IMUDataset,
        weights: Optional[Mapping[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SagaBackbone:
        """Pre-train a fresh backbone with the given pre-training task weights."""
        backbone_config = self._backbone_config_for(unlabelled)
        result = Pretrainer(self.config.pretrain, backbone_config).pretrain(
            unlabelled, weights=weights, rng=rng
        )
        self.backbone = result.model.backbone
        self.weights = result.weights
        return self.backbone

    # ------------------------------------------------------------------
    # Weight search (LWS)
    # ------------------------------------------------------------------
    def search_weights(
        self,
        unlabelled: IMUDataset,
        labelled: IMUDataset,
        task: str,
        validation: IMUDataset,
        rng: Optional[np.random.Generator] = None,
    ) -> LWSResult:
        """Run the LWS Bayesian-Optimization search for this downstream task.

        Each evaluation pre-trains a fresh backbone with the candidate weights
        and fine-tunes it on ``labelled``; the validation accuracy is the
        performance signal (paper Algorithm 1).
        """
        generator = rng if rng is not None else np.random.default_rng(self.config.lws.seed)
        backbone_config = self._backbone_config_for(unlabelled)

        def evaluate(weights: Mapping[str, float]) -> float:
            eval_rng = np.random.default_rng(generator.integers(0, 2**63 - 1))
            pretrain_result = Pretrainer(self.config.pretrain, backbone_config).pretrain(
                unlabelled, weights=weights, rng=eval_rng
            )
            finetune_result = Finetuner(self.config.finetune).finetune(
                pretrain_result.model.backbone,
                labelled,
                task,
                validation_dataset=validation,
                rng=eval_rng,
            )
            metrics = finetune_result.validation_metrics
            if metrics is None:
                raise TrainingError("LWS evaluation requires a non-empty validation set")
            return metrics.accuracy

        search = LowCostWeightSearch(self.config.lws)
        self.search_result = search.search(evaluate, rng=generator)
        self.weights = dict(self.search_result.best_weights)
        logger.info(
            "LWS finished: best weights %s with validation accuracy %.4f",
            self.weights,
            self.search_result.best_performance,
        )
        return self.search_result

    # ------------------------------------------------------------------
    # Fine-tuning and evaluation
    # ------------------------------------------------------------------
    def finetune(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ClassificationModel:
        """Fine-tune the pre-trained backbone end-to-end with a GRU classifier."""
        if self.backbone is None:
            raise TrainingError("pretrain() must be called before finetune()")
        result = Finetuner(self.config.finetune).finetune(
            self.backbone, labelled, task, validation_dataset=validation, rng=rng
        )
        self.classifier_model = result.model
        return self.classifier_model

    def fit(
        self,
        unlabelled: IMUDataset,
        labelled: IMUDataset,
        task: str,
        validation: IMUDataset,
        weights: WeightsSpec = "search",
        rng: Optional[np.random.Generator] = None,
    ) -> ClassificationModel:
        """Run the complete pipeline: resolve weights, pre-train, fine-tune."""
        generator = rng if rng is not None else np.random.default_rng(self.config.pretrain.seed)
        resolved = self._resolve_weights(weights, unlabelled, labelled, task, validation, generator)
        self.pretrain(unlabelled, weights=resolved, rng=generator)
        return self.finetune(labelled, task, validation=validation, rng=generator)

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        """Evaluate the fine-tuned model on ``dataset``."""
        if self.classifier_model is None:
            raise TrainingError("finetune() must be called before evaluate()")
        return evaluate_model(self.classifier_model, dataset, task)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_backbone(self, path) -> None:
        """Save the pre-trained backbone parameters and weights to ``path``."""
        if self.backbone is None:
            raise TrainingError("no backbone to save; call pretrain() first")
        save_module(self.backbone, path, metadata={"weights": self.weights or {}})

    def load_backbone(self, path, template_dataset: IMUDataset) -> SagaBackbone:
        """Load a backbone checkpoint, building the architecture from ``template_dataset``."""
        backbone = SagaBackbone(self._backbone_config_for(template_dataset))
        metadata = load_module(backbone, path)
        self.backbone = backbone
        self.weights = dict(metadata.get("weights", {})) or None
        return backbone

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _backbone_config_for(self, dataset: IMUDataset) -> BackboneConfig:
        if self.config.backbone is not None:
            return self.config.backbone
        return BackboneConfig(
            input_channels=dataset.num_channels,
            window_length=dataset.window_length,
        )

    def _resolve_weights(
        self,
        weights: WeightsSpec,
        unlabelled: IMUDataset,
        labelled: IMUDataset,
        task: str,
        validation: IMUDataset,
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        if isinstance(weights, Mapping):
            return dict(weights)
        policy = str(weights).lower()
        levels = self.config.levels
        if policy == "uniform":
            return {level: 1.0 / len(levels) for level in levels}
        if policy == "random":
            return random_weights(rng, levels=levels)
        if policy == "search":
            result = self.search_weights(unlabelled, labelled, task, validation, rng=rng)
            return dict(result.best_weights)
        raise ConfigurationError(
            f"unknown weights policy {weights!r}; use 'uniform', 'random', 'search' or a mapping"
        )


class SagaMethod(PerceptionMethod):
    """Saga behind the common candidate-method interface.

    Parameters
    ----------
    weights:
        ``"search"`` (full Saga with LWS), ``"uniform"``, ``"random"``
        (Saga(ran.)), or an explicit mapping.
    levels:
        Active masking levels; single-level tuples give the Saga(se./po./sp./pe.)
        ablations.
    """

    def __init__(
        self,
        weights: WeightsSpec = "search",
        levels: Sequence[str] = MASK_LEVELS,
        backbone_config: Optional[BackboneConfig] = None,
        budget: Optional[MethodBudget] = None,
        lws_config: Optional[LWSConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.weights_spec = weights
        self.levels = tuple(levels)
        self.backbone_config = backbone_config
        self.budget = budget if budget is not None else MethodBudget()
        self.lws_config = lws_config
        self.name = name if name is not None else self._default_name()
        self._unlabelled: Optional[IMUDataset] = None
        self._pipeline: Optional[SagaPipeline] = None

    def _default_name(self) -> str:
        if isinstance(self.weights_spec, str) and self.weights_spec == "search":
            return "saga"
        if isinstance(self.weights_spec, str) and self.weights_spec == "random":
            return "saga_random"
        if len(self.levels) == 1:
            return f"saga_{self.levels[0]}"
        return "saga_fixed"

    def _build_pipeline(self, dataset: IMUDataset) -> SagaPipeline:
        backbone_config = self.backbone_config
        if backbone_config is None:
            backbone_config = BackboneConfig(
                input_channels=dataset.num_channels,
                window_length=dataset.window_length,
            )
        config = SagaConfig(
            backbone=backbone_config,
            pretrain=PretrainConfig(
                epochs=self.budget.pretrain_epochs,
                batch_size=self.budget.batch_size,
                learning_rate=self.budget.learning_rate,
            ),
            finetune=FinetuneConfig(
                epochs=self.budget.finetune_epochs,
                batch_size=self.budget.batch_size,
                learning_rate=self.budget.learning_rate,
            ),
            lws=self.lws_config if self.lws_config is not None else LWSConfig(),
            levels=self.levels,
        )
        return SagaPipeline(config)

    # ------------------------------------------------------------------
    # PerceptionMethod interface
    # ------------------------------------------------------------------
    def pretrain(self, unlabelled: IMUDataset, rng: np.random.Generator) -> None:
        """Record the unlabelled pool; actual pre-training happens in :meth:`fit`.

        Saga's pre-training depends on the downstream task when weight search
        is enabled, so the expensive work is deferred until labels are known.
        """
        del rng
        self._unlabelled = unlabelled
        self._pipeline = self._build_pipeline(unlabelled)

    def fit(
        self,
        labelled: IMUDataset,
        task: str,
        validation: Optional[IMUDataset],
        rng: np.random.Generator,
    ) -> None:
        if self._pipeline is None or self._unlabelled is None:
            raise TrainingError("SagaMethod requires pretrain() before fit()")
        if validation is None:
            raise TrainingError("SagaMethod requires a validation set (for LWS and evaluation)")
        self._pipeline.fit(
            self._unlabelled, labelled, task, validation, weights=self.weights_spec, rng=rng
        )

    def evaluate(self, dataset: IMUDataset, task: str) -> ClassificationMetrics:
        if self._pipeline is None:
            raise TrainingError("SagaMethod must be fitted before evaluation")
        return self._pipeline.evaluate(dataset, task)

    def num_parameters(self) -> int:
        if self._pipeline is None:
            raise TrainingError("SagaMethod has no model yet")
        if self._pipeline.classifier_model is not None:
            return self._pipeline.classifier_model.num_parameters()
        if self._pipeline.backbone is not None:
            return self._pipeline.backbone.num_parameters()
        raise TrainingError("SagaMethod has no model yet")

    @property
    def searched_weights(self) -> Optional[Dict[str, float]]:
        """The pre-training weights actually used (after search, if any)."""
        return self._pipeline.weights if self._pipeline is not None else None
