"""Covariance kernels for Gaussian-Process regression.

The LWS module (paper Section VI) models the mapping from pre-training task
weights to downstream validation performance with a Gaussian Process.  The
default kernel is the RBF (squared-exponential); a Matérn-5/2 kernel is also
provided because it is the usual default in Bayesian-Optimization practice.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SearchError


class Kernel:
    """Base class: a positive-definite covariance function ``k(x, x')``."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        if a.shape[1] != b.shape[1]:
            raise SearchError(
                f"kernel inputs must share the feature dimension, got {a.shape} and {b.shape}"
            )
        a_sq = np.sum(a ** 2, axis=1)[:, None]
        b_sq = np.sum(b ** 2, axis=1)[None, :]
        sq_dists = a_sq + b_sq - 2.0 * a @ b.T
        return np.maximum(sq_dists, 0.0)


class RBFKernel(Kernel):
    """Squared-exponential kernel ``sigma^2 * exp(-||x - x'||^2 / (2 l^2))``."""

    def __init__(self, length_scale: float = 0.2, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise SearchError("length_scale and signal_variance must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dists = self._pairwise_sq_dists(a, b)
        return self.signal_variance * np.exp(-0.5 * sq_dists / self.length_scale ** 2)

    def __repr__(self) -> str:
        return f"RBFKernel(length_scale={self.length_scale}, signal_variance={self.signal_variance})"


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness parameter 5/2."""

    def __init__(self, length_scale: float = 0.2, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise SearchError("length_scale and signal_variance must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dists = np.sqrt(self._pairwise_sq_dists(a, b))
        scaled = np.sqrt(5.0) * dists / self.length_scale
        return self.signal_variance * (1.0 + scaled + scaled ** 2 / 3.0) * np.exp(-scaled)

    def __repr__(self) -> str:
        return f"Matern52Kernel(length_scale={self.length_scale}, signal_variance={self.signal_variance})"


KERNEL_REGISTRY = {
    "rbf": RBFKernel,
    "matern52": Matern52Kernel,
}


def make_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by name (``rbf`` or ``matern52``)."""
    if name not in KERNEL_REGISTRY:
        raise KeyError(f"unknown kernel {name!r}; available: {sorted(KERNEL_REGISTRY)}")
    return KERNEL_REGISTRY[name](**kwargs)
