"""Gaussian-Process regression (the performance model ``M_P`` of the LWS module).

The paper uses a scikit-learn ``GaussianProcessRegressor``; this is a compact
equivalent: exact GP regression with a Cholesky solve, observation noise, and
posterior mean / standard-deviation prediction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import SearchError
from .kernels import Kernel, RBFKernel


class GaussianProcessRegressor:
    """Exact GP regression with a fixed kernel and Gaussian observation noise."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
    ) -> None:
        if noise <= 0:
            raise SearchError("observation noise must be positive")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = noise
        self.normalize_y = normalize_y
        self._train_x: Optional[np.ndarray] = None
        self._train_y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cholesky: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._train_x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the posterior to observations ``(x, y)``.

        ``x`` has shape ``(n, d)`` and ``y`` shape ``(n,)``.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.shape[0] != y.shape[0]:
            raise SearchError(
                f"number of inputs ({x.shape[0]}) and targets ({y.shape[0]}) differ"
            )
        if x.shape[0] == 0:
            raise SearchError("cannot fit a GP to zero observations")

        self._train_x = x
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._train_y = (y - self._y_mean) / self._y_std

        covariance = self.kernel(x, x) + self.noise * np.eye(x.shape[0])
        # Add jitter progressively if the Cholesky fails (near-duplicate inputs).
        jitter = 0.0
        for attempt in range(6):
            try:
                self._cholesky = np.linalg.cholesky(covariance + jitter * np.eye(x.shape[0]))
                break
            except np.linalg.LinAlgError:
                jitter = 10.0 ** (attempt - 8)
        else:
            raise SearchError("GP covariance matrix is not positive definite")
        self._alpha = np.linalg.solve(
            self._cholesky.T, np.linalg.solve(self._cholesky, self._train_y)
        )
        return self

    def predict(self, x: np.ndarray, return_std: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and standard deviation) at query points ``x``."""
        if not self.is_fitted:
            raise SearchError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self.kernel(x, self._train_x)
        mean = cross @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        solved = np.linalg.solve(self._cholesky, cross.T)
        prior_var = np.diag(self.kernel(x, x))
        posterior_var = np.maximum(prior_var - np.sum(solved ** 2, axis=0), 1e-12)
        std = np.sqrt(posterior_var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the training data under the fitted GP."""
        if not self.is_fitted:
            raise SearchError("log_marginal_likelihood() called before fit()")
        n = self._train_y.shape[0]
        data_fit = -0.5 * float(self._train_y @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._cholesky))))
        normaliser = -0.5 * n * np.log(2 * np.pi)
        return data_fit + complexity + normaliser
