"""Acquisition functions for Bayesian Optimization.

The paper uses Expected Improvement (Eq. 9):

``EI(w) = (mu(w) - p_best) * Phi(z) + sigma(w) * phi(z)``  with
``z = (mu(w) - p_best) / sigma(w)``,

where the first term rewards predicted improvement and the second rewards
uncertainty.  Upper Confidence Bound (UCB) is provided as an alternative
(an extension beyond the paper, useful for ablations).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..exceptions import SearchError
from .gp import GaussianProcessRegressor


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best_value: float,
    xi: float = 0.0,
) -> np.ndarray:
    """Expected Improvement for a maximisation problem (paper Eq. 9).

    Parameters
    ----------
    mean, std:
        Posterior mean and standard deviation at the candidate points.
    best_value:
        Best observed performance so far (``p_best``).
    xi:
        Optional exploration margin added to ``p_best``.
    """
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    if mean.shape != std.shape:
        raise SearchError("mean and std must have the same shape")
    improvement = mean - best_value - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    # Where the posterior is (numerically) deterministic, EI reduces to the
    # positive part of the improvement.
    ei = np.where(std > 1e-12, ei, np.maximum(improvement, 0.0))
    return ei


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray, kappa: float = 2.0) -> np.ndarray:
    """UCB acquisition ``mu + kappa * sigma`` (maximisation)."""
    if kappa < 0:
        raise SearchError("kappa must be non-negative")
    return np.asarray(mean, dtype=np.float64) + kappa * np.asarray(std, dtype=np.float64)


class AcquisitionFunction:
    """Callable wrapper selecting EI or UCB over a candidate set."""

    def __init__(self, kind: str = "ei", xi: float = 0.0, kappa: float = 2.0) -> None:
        kind = kind.lower()
        if kind not in ("ei", "ucb"):
            raise SearchError(f"unknown acquisition {kind!r}; use 'ei' or 'ucb'")
        self.kind = kind
        self.xi = xi
        self.kappa = kappa

    def __call__(
        self,
        model: GaussianProcessRegressor,
        candidates: np.ndarray,
        best_value: float,
    ) -> np.ndarray:
        """Score every candidate under the fitted performance model."""
        mean, std = model.predict(candidates, return_std=True)
        if self.kind == "ei":
            return expected_improvement(mean, std, best_value, xi=self.xi)
        return upper_confidence_bound(mean, std, kappa=self.kappa)
