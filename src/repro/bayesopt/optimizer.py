"""Generic Bayesian optimizer over a candidate set (maximisation).

This is the reusable engine behind the LWS weight search: it maintains the
history of evaluated points, fits the GP performance model, scores candidates
with an acquisition function, and proposes the next point to evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..exceptions import SearchError
from ..rng import make_rng
from .acquisition import AcquisitionFunction
from .gp import GaussianProcessRegressor
from .kernels import Kernel


@dataclass
class Observation:
    """One evaluated point and its measured objective value."""

    point: np.ndarray
    value: float


@dataclass
class BayesianOptimizer:
    """Sequential model-based optimizer over a finite candidate set.

    Parameters
    ----------
    candidates:
        Array ``(num_candidates, dim)`` of allowed points (the paper
        discretises the weight simplex into a candidate grid ``W``).
    kernel:
        Optional kernel for the GP performance model.
    acquisition:
        Acquisition function wrapper (EI by default).
    noise:
        GP observation noise.
    """

    candidates: np.ndarray
    kernel: Optional[Kernel] = None
    acquisition: AcquisitionFunction = field(default_factory=AcquisitionFunction)
    noise: float = 1e-4
    observations: List[Observation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.candidates = np.atleast_2d(np.asarray(self.candidates, dtype=np.float64))
        if self.candidates.shape[0] == 0:
            raise SearchError("candidate set must not be empty")

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def tell(self, point: np.ndarray, value: float) -> None:
        """Record the measured objective ``value`` at ``point``."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self.candidates.shape[1]:
            raise SearchError(
                f"point dimension {point.shape[0]} does not match candidates "
                f"dimension {self.candidates.shape[1]}"
            )
        self.observations.append(Observation(point=point, value=float(value)))

    @property
    def best_observation(self) -> Observation:
        if not self.observations:
            raise SearchError("no observations recorded yet")
        return max(self.observations, key=lambda obs: obs.value)

    def history(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return observed points ``(n, d)`` and values ``(n,)``."""
        if not self.observations:
            return np.empty((0, self.candidates.shape[1])), np.empty((0,))
        points = np.stack([obs.point for obs in self.observations])
        values = np.asarray([obs.value for obs in self.observations])
        return points, values

    # ------------------------------------------------------------------
    # Model fitting and proposal
    # ------------------------------------------------------------------
    def fit_model(self) -> GaussianProcessRegressor:
        """Fit the GP performance model to all recorded observations."""
        points, values = self.history()
        if points.shape[0] == 0:
            raise SearchError("cannot fit the performance model without observations")
        model = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
        model.fit(points, values)
        return model

    def suggest(self, rng: Optional[np.random.Generator] = None, exclude_observed: bool = True) -> np.ndarray:
        """Propose the next candidate to evaluate.

        With no observations yet, a uniformly random candidate is returned.
        Otherwise the acquisition function is maximised over the candidate
        set (optionally excluding already-evaluated points).
        """
        generator = rng if rng is not None else make_rng()
        if not self.observations:
            index = int(generator.integers(0, self.candidates.shape[0]))
            return self.candidates[index].copy()

        model = self.fit_model()
        best_value = self.best_observation.value
        scores = self.acquisition(model, self.candidates, best_value)

        if exclude_observed:
            observed_points, _ = self.history()
            for point in observed_points:
                matches = np.all(np.isclose(self.candidates, point[None, :], atol=1e-9), axis=1)
                scores = np.where(matches, -np.inf, scores)
            if not np.isfinite(scores).any():
                # Everything has been evaluated: fall back to the best point.
                return self.best_observation.point.copy()

        best_index = int(np.argmax(scores))
        return self.candidates[best_index].copy()

    # ------------------------------------------------------------------
    # End-to-end convenience loop
    # ------------------------------------------------------------------
    def optimize(
        self,
        objective: Callable[[np.ndarray], float],
        budget: int,
        initial_random: int = 2,
        rng: Optional[np.random.Generator] = None,
        convergence_patience: int = 0,
        convergence_tolerance: float = 1e-4,
    ) -> Observation:
        """Run the full suggest/evaluate/tell loop for ``budget`` evaluations."""
        if budget <= 0:
            raise SearchError("budget must be positive")
        generator = rng if rng is not None else make_rng()
        stale_rounds = 0
        best_so_far = -np.inf
        for iteration in range(budget):
            if iteration < initial_random or not self.observations:
                index = int(generator.integers(0, self.candidates.shape[0]))
                point = self.candidates[index].copy()
            else:
                point = self.suggest(rng=generator)
            value = float(objective(point))
            self.tell(point, value)
            if value > best_so_far + convergence_tolerance:
                best_so_far = value
                stale_rounds = 0
            else:
                stale_rounds += 1
                if convergence_patience and stale_rounds >= convergence_patience:
                    break
        return self.best_observation
