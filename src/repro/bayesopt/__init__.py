"""Bayesian Optimization substrate: GP regression, acquisition, LWS search."""

from .acquisition import AcquisitionFunction, expected_improvement, upper_confidence_bound
from .gp import GaussianProcessRegressor
from .kernels import KERNEL_REGISTRY, Kernel, Matern52Kernel, RBFKernel, make_kernel
from .optimizer import BayesianOptimizer, Observation
from .search import (
    LWSConfig,
    LWSResult,
    LWSTrial,
    LowCostWeightSearch,
    random_weights,
    vector_to_weights,
    weight_simplex_grid,
    weights_to_vector,
)

__all__ = [
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "KERNEL_REGISTRY",
    "make_kernel",
    "GaussianProcessRegressor",
    "expected_improvement",
    "upper_confidence_bound",
    "AcquisitionFunction",
    "BayesianOptimizer",
    "Observation",
    "LWSConfig",
    "LWSResult",
    "LWSTrial",
    "LowCostWeightSearch",
    "weight_simplex_grid",
    "vector_to_weights",
    "weights_to_vector",
    "random_weights",
]
