"""Low-Cost Weight Searching (LWS) — Algorithm 1 of the paper.

Given a downstream task and a small labelled subset, LWS searches the
weights ``w = {w_se, w_po, w_sp, w_pe}`` of the four pre-training tasks:

1. sample a few random weight vectors and measure the downstream validation
   performance obtained after pre-training with them and fine-tuning;
2. fit a Gaussian-Process performance model to (weights, performance) pairs;
3. pick the candidate weights maximising Expected Improvement, evaluate them
   (full pre-train + fine-tune cycle), and add the outcome to the history;
4. repeat until the budget is exhausted or the results converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SearchError
from ..logging_utils import get_logger
from ..masking.multi import MASK_LEVELS
from .acquisition import AcquisitionFunction
from .kernels import Kernel
from .optimizer import BayesianOptimizer, Observation

logger = get_logger(__name__)

WeightVector = Dict[str, float]
PerformanceFn = Callable[[WeightVector], float]


def weight_simplex_grid(levels: Sequence[str] = MASK_LEVELS, resolution: int = 5) -> np.ndarray:
    """Enumerate the candidate weight set ``W`` on the probability simplex.

    Every candidate assigns each level a weight ``k / resolution`` with
    non-negative integers ``k`` summing to ``resolution``; at least one level
    must receive positive weight.  With 4 levels and resolution 5 this yields
    56 candidates, a practical discretisation of the continuous search space.
    """
    if resolution < 1:
        raise SearchError("resolution must be at least 1")
    num_levels = len(levels)
    if num_levels < 1:
        raise SearchError("at least one level is required")

    candidates: List[Tuple[float, ...]] = []

    def _recurse(prefix: List[int], remaining: int, slots: int) -> None:
        if slots == 1:
            candidates.append(tuple(prefix + [remaining]))
            return
        for value in range(remaining + 1):
            _recurse(prefix + [value], remaining - value, slots - 1)

    _recurse([], resolution, num_levels)
    grid = np.asarray(candidates, dtype=np.float64) / float(resolution)
    # Remove the all-zero vector if it sneaked in (cannot: rows sum to 1).
    return grid


def vector_to_weights(vector: np.ndarray, levels: Sequence[str] = MASK_LEVELS) -> WeightVector:
    """Convert a numeric weight vector to the named mapping used by the trainer."""
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    if vector.shape[0] != len(levels):
        raise SearchError(
            f"weight vector has {vector.shape[0]} entries but {len(levels)} levels are active"
        )
    return {level: float(value) for level, value in zip(levels, vector)}


def weights_to_vector(weights: WeightVector, levels: Sequence[str] = MASK_LEVELS) -> np.ndarray:
    """Convert a named weight mapping back to a numeric vector."""
    return np.asarray([float(weights.get(level, 0.0)) for level in levels], dtype=np.float64)


@dataclass
class LWSConfig:
    """Configuration of the LWS search loop (Algorithm 1)."""

    budget: int = 8
    """``N_bud``: total number of pre-train + fine-tune evaluations."""

    initial_random: int = 3
    """Number of initial uniformly-random weight evaluations (``W_ran``)."""

    grid_resolution: int = 5
    """Resolution of the weight-simplex candidate grid."""

    acquisition: str = "ei"
    """Acquisition function: ``ei`` (paper) or ``ucb`` (extension)."""

    convergence_patience: int = 0
    """Stop early after this many non-improving iterations (0 disables)."""

    convergence_tolerance: float = 1e-4
    levels: Tuple[str, ...] = MASK_LEVELS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise SearchError("budget must be positive")
        if self.initial_random < 1:
            raise SearchError("initial_random must be at least 1")
        if self.initial_random > self.budget:
            raise SearchError("initial_random cannot exceed the budget")


@dataclass
class LWSTrial:
    """One evaluated weight configuration."""

    iteration: int
    weights: WeightVector
    performance: float


@dataclass
class LWSResult:
    """Outcome of a complete LWS search."""

    best_weights: WeightVector
    best_performance: float
    trials: List[LWSTrial] = field(default_factory=list)

    @property
    def num_evaluations(self) -> int:
        return len(self.trials)

    def performance_trace(self) -> List[float]:
        """Best-so-far performance after each evaluation."""
        trace: List[float] = []
        best = -np.inf
        for trial in self.trials:
            best = max(best, trial.performance)
            trace.append(best)
        return trace


class LowCostWeightSearch:
    """Bayesian-Optimization search over pre-training task weights (Algorithm 1)."""

    def __init__(self, config: Optional[LWSConfig] = None, kernel: Optional[Kernel] = None) -> None:
        self.config = config if config is not None else LWSConfig()
        self.kernel = kernel

    def search(
        self,
        evaluate: PerformanceFn,
        rng: Optional[np.random.Generator] = None,
    ) -> LWSResult:
        """Run the search.

        Parameters
        ----------
        evaluate:
            Callable mapping a named weight vector to downstream validation
            performance (higher is better).  In the full pipeline this is one
            pre-training + fine-tuning cycle (see
            :meth:`repro.core.saga.SagaPipeline.search_weights`).
        rng:
            Random generator for the initial random trials.
        """
        cfg = self.config
        generator = rng if rng is not None else np.random.default_rng(cfg.seed)
        candidates = weight_simplex_grid(cfg.levels, cfg.grid_resolution)
        optimizer = BayesianOptimizer(
            candidates=candidates,
            kernel=self.kernel,
            acquisition=AcquisitionFunction(kind=cfg.acquisition),
        )

        trials: List[LWSTrial] = []
        best_value = -np.inf
        stale_rounds = 0
        for iteration in range(cfg.budget):
            if iteration < cfg.initial_random:
                index = int(generator.integers(0, candidates.shape[0]))
                point = candidates[index]
            else:
                point = optimizer.suggest(rng=generator)
            weights = vector_to_weights(point, cfg.levels)
            performance = float(evaluate(weights))
            optimizer.tell(point, performance)
            trials.append(LWSTrial(iteration=iteration, weights=weights, performance=performance))
            logger.info(
                "LWS iteration %d: weights=%s performance=%.4f", iteration, weights, performance
            )
            if performance > best_value + cfg.convergence_tolerance:
                best_value = performance
                stale_rounds = 0
            else:
                stale_rounds += 1
                if cfg.convergence_patience and stale_rounds >= cfg.convergence_patience:
                    logger.info("LWS converged after %d iterations", iteration + 1)
                    break

        best: Observation = optimizer.best_observation
        return LWSResult(
            best_weights=vector_to_weights(best.point, cfg.levels),
            best_performance=best.value,
            trials=trials,
        )


def random_weights(
    rng: np.random.Generator,
    levels: Sequence[str] = MASK_LEVELS,
) -> WeightVector:
    """Draw uniformly random weights on the simplex (the Saga(ran.) ablation)."""
    raw = rng.dirichlet(np.ones(len(levels)))
    return {level: float(value) for level, value in zip(levels, raw)}
