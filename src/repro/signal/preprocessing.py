"""IMU preprocessing: downsampling, windowing, and normalisation.

Mirrors paper Section VII-A-2: raw recordings are downsampled to 20 Hz,
sliced into 6-second windows of 120 samples, and normalised — accelerometer
values by the gravitational constant ``g`` and magnetometer values by the
per-sample field magnitude.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

GRAVITY = 9.80665
"""Standard gravitational acceleration, used to normalise accelerometer axes."""


def downsample(samples: np.ndarray, source_rate: float, target_rate: float) -> np.ndarray:
    """Downsample a ``(length, channels)`` recording by integer decimation.

    The paper downsamples all datasets (50–200 Hz) to 20 Hz.  We use simple
    decimation after block averaging, which is adequate for the synthetic
    substitute datasets and keeps the implementation dependency-free.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError(f"samples must be 2-D (length, channels), got {samples.shape}")
    if source_rate <= 0 or target_rate <= 0:
        raise ValueError("rates must be positive")
    if target_rate > source_rate:
        raise ValueError("target_rate must not exceed source_rate")
    factor = int(round(source_rate / target_rate))
    if factor <= 1:
        return samples.copy()
    usable = (samples.shape[0] // factor) * factor
    truncated = samples[:usable]
    return truncated.reshape(-1, factor, samples.shape[1]).mean(axis=1)


def slice_windows(
    samples: np.ndarray,
    window_length: int,
    stride: int | None = None,
    drop_last: bool = True,
) -> np.ndarray:
    """Slice a ``(length, channels)`` recording into fixed-length windows.

    Returns an array of shape ``(num_windows, window_length, channels)``.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError(f"samples must be 2-D, got {samples.shape}")
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    stride = window_length if stride is None else stride
    if stride <= 0:
        raise ValueError("stride must be positive")

    windows: List[np.ndarray] = []
    start = 0
    while start + window_length <= samples.shape[0]:
        windows.append(samples[start:start + window_length])
        start += stride
    if not drop_last and start < samples.shape[0] and not windows:
        raise ValueError("recording shorter than one window and drop_last=False")
    if not windows:
        return np.empty((0, window_length, samples.shape[1]))
    return np.stack(windows, axis=0)


def normalize_imu(
    windows: np.ndarray,
    accel_axes: Sequence[int] = (0, 1, 2),
    magnetometer_axes: Sequence[int] = (),
    gravity: float = GRAVITY,
) -> np.ndarray:
    """Normalise IMU windows following the paper.

    * accelerometer channels are divided by ``g``;
    * magnetometer channels are divided by the per-sample field magnitude
      ``sqrt(sum_k m_k^2)``;
    * all other channels (gyroscope) are left unchanged.

    Accepts either a single window ``(L, C)`` or a batch ``(N, L, C)``.
    """
    windows = np.asarray(windows, dtype=np.float64)
    squeeze = windows.ndim == 2
    if squeeze:
        windows = windows[None]
    if windows.ndim != 3:
        raise ValueError(f"windows must be 2-D or 3-D, got shape {windows.shape}")

    normalised = windows.copy()
    accel_axes = list(accel_axes)
    magnetometer_axes = list(magnetometer_axes)
    if accel_axes:
        normalised[:, :, accel_axes] = normalised[:, :, accel_axes] / gravity
    if magnetometer_axes:
        magnitude = np.sqrt(
            np.sum(normalised[:, :, magnetometer_axes] ** 2, axis=-1, keepdims=True)
        )
        magnitude = np.where(magnitude <= 1e-12, 1.0, magnitude)
        normalised[:, :, magnetometer_axes] = normalised[:, :, magnetometer_axes] / magnitude
    return normalised[0] if squeeze else normalised


def standardize(windows: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Per-channel z-score standardisation across the whole batch."""
    windows = np.asarray(windows, dtype=np.float64)
    mean = windows.mean(axis=tuple(range(windows.ndim - 1)), keepdims=True)
    std = windows.std(axis=tuple(range(windows.ndim - 1)), keepdims=True)
    return (windows - mean) / (std + eps)
