"""Key-point (peak / valley) detection on the IMU energy signal.

Implements the filtering rules of paper Section IV-A-1:

1. a candidate local maximum (minimum) survives only if it dominates every
   sample within a window of ``w`` steps around it (Eq. 1);
2. surviving key points must be at least ``d`` steps apart (Eq. 2) — when two
   are closer than ``d``, the more extreme one is kept.

The filtered peaks and valleys partition a window into sub-periods, which are
the masking unit of the sub-period-level pre-training task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class KeyPoints:
    """Filtered peak and valley indices of one IMU window."""

    peaks: Tuple[int, ...]
    valleys: Tuple[int, ...]

    @property
    def all_points(self) -> Tuple[int, ...]:
        """All key points (peaks and valleys) in increasing index order."""
        return tuple(sorted(set(self.peaks) | set(self.valleys)))

    def __len__(self) -> int:
        return len(self.peaks) + len(self.valleys)


def local_maxima(signal: np.ndarray) -> np.ndarray:
    """Indices ``i`` with ``e_i >= e_{i-1}`` and ``e_i >= e_{i+1}`` (interior points)."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1 or signal.size < 3:
        return np.array([], dtype=np.int64)
    interior = np.arange(1, signal.size - 1)
    mask = (signal[interior] >= signal[interior - 1]) & (signal[interior] >= signal[interior + 1])
    return interior[mask]


def local_minima(signal: np.ndarray) -> np.ndarray:
    """Indices ``i`` with ``e_i <= e_{i-1}`` and ``e_i <= e_{i+1}`` (interior points)."""
    return local_maxima(-np.asarray(signal, dtype=np.float64))


def _dominates_window(signal: np.ndarray, index: int, window: int, maximum: bool) -> bool:
    """Check Eq. 1: the candidate dominates every sample within ``window`` steps."""
    start = max(0, index - window)
    end = min(signal.size, index + window + 1)
    neighbourhood = signal[start:end]
    if maximum:
        return bool(signal[index] >= neighbourhood.max())
    return bool(signal[index] <= neighbourhood.min())


def _enforce_min_distance(
    candidates: Sequence[int],
    signal: np.ndarray,
    min_distance: int,
    maximum: bool,
) -> List[int]:
    """Enforce Eq. 2: keep the more extreme of any two candidates closer than ``d``."""
    kept: List[int] = []
    for index in sorted(candidates):
        if not kept or index - kept[-1] >= min_distance:
            kept.append(index)
            continue
        previous = kept[-1]
        better_current = signal[index] > signal[previous] if maximum else signal[index] < signal[previous]
        if better_current:
            kept[-1] = index
    return kept


def filter_extrema(
    signal: np.ndarray,
    candidates: np.ndarray,
    window: int,
    min_distance: int,
    maximum: bool,
) -> List[int]:
    """Apply both filtering conditions (Eq. 1 and Eq. 2) to extremum candidates."""
    signal = np.asarray(signal, dtype=np.float64)
    surviving = [
        int(index)
        for index in candidates
        if _dominates_window(signal, int(index), window, maximum)
    ]
    return _enforce_min_distance(surviving, signal, min_distance, maximum)


def find_key_points(
    energy: np.ndarray,
    filter_window: int = 5,
    min_distance: int = 5,
) -> KeyPoints:
    """Find the filtered peaks and valleys of an energy signal.

    Parameters
    ----------
    energy:
        1-D energy signal (see :func:`repro.signal.energy.acceleration_energy`).
    filter_window:
        ``w`` in Eq. 1 — half-width of the dominance window.
    min_distance:
        ``d`` in Eq. 2 — minimum spacing between surviving key points.
    """
    energy = np.asarray(energy, dtype=np.float64)
    if energy.ndim != 1:
        raise ValueError(f"energy must be 1-D, got shape {energy.shape}")
    if filter_window < 0 or min_distance < 0:
        raise ValueError("filter_window and min_distance must be non-negative")
    peaks = filter_extrema(energy, local_maxima(energy), filter_window, min_distance, maximum=True)
    valleys = filter_extrema(energy, local_minima(energy), filter_window, min_distance, maximum=False)
    return KeyPoints(peaks=tuple(peaks), valleys=tuple(valleys))


def subperiod_boundaries(key_points: KeyPoints, window_length: int) -> List[Tuple[int, int]]:
    """Partition ``[0, window_length)`` into sub-periods delimited by key points.

    The returned list of ``(start, end)`` half-open intervals always covers the
    whole window: the first sub-period starts at 0 and the last one ends at
    ``window_length`` even if no key point falls at the boundaries.
    """
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    cuts = [point for point in key_points.all_points if 0 < point < window_length]
    boundaries = [0] + cuts + [window_length]
    intervals = [
        (start, end)
        for start, end in zip(boundaries[:-1], boundaries[1:])
        if end > start
    ]
    return intervals
