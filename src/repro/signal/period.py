"""Main-period identification via the Fourier transform (paper Section IV-A-2).

The energy signal of an IMU window is transformed to the frequency domain;
the frequency with the largest (non-DC) amplitude defines the main period
``T_main = L_win / k_max`` in samples, where ``k_max`` is the dominant DFT
bin.  The period-level masking task removes one whole main period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class MainPeriod:
    """Result of main-period analysis of one window."""

    period: int
    """Main period length in samples (``T_main``)."""

    frequency_bin: int
    """Index of the dominant non-DC DFT bin."""

    amplitude: float
    """Amplitude of the dominant bin."""

    spectrum: Tuple[float, ...]
    """Magnitude spectrum (one-sided, including DC) — useful for diagnostics."""


def magnitude_spectrum(signal: np.ndarray) -> np.ndarray:
    """One-sided magnitude spectrum of a real 1-D signal (DC included)."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    return np.abs(np.fft.rfft(signal - signal.mean()))


def find_main_period(
    energy: np.ndarray,
    min_period: int = 4,
    max_period: int | None = None,
) -> MainPeriod:
    """Find the dominant period of an energy signal.

    Parameters
    ----------
    energy:
        1-D energy signal of length ``L_win``.
    min_period:
        Ignore periods shorter than this many samples (suppresses
        high-frequency sensor noise claiming the maximum amplitude).
    max_period:
        Ignore periods longer than this; defaults to the window length, i.e.
        no upper constraint beyond excluding DC.

    Returns
    -------
    :class:`MainPeriod` with ``period`` clamped into ``[min_period, L_win]``.
    """
    energy = np.asarray(energy, dtype=np.float64)
    if energy.ndim != 1:
        raise ValueError(f"energy must be 1-D, got shape {energy.shape}")
    length = energy.size
    if length < 4:
        raise ValueError("energy signal too short for period analysis")
    if min_period < 1:
        raise ValueError("min_period must be at least 1")
    max_period = length if max_period is None else min(max_period, length)

    spectrum = magnitude_spectrum(energy)
    # Bin k corresponds to period length / k; exclude DC (k = 0).
    candidate_bins = []
    for bin_index in range(1, spectrum.size):
        period = length / bin_index
        if min_period <= period <= max_period:
            candidate_bins.append(bin_index)
    if not candidate_bins:
        # Degenerate window (e.g. constant signal): fall back to the full window.
        return MainPeriod(
            period=length,
            frequency_bin=0,
            amplitude=float(spectrum[0]) if spectrum.size else 0.0,
            spectrum=tuple(spectrum.tolist()),
        )

    best_bin = max(candidate_bins, key=lambda k: spectrum[k])
    period = int(round(length / best_bin))
    period = max(min_period, min(period, length))
    return MainPeriod(
        period=period,
        frequency_bin=int(best_bin),
        amplitude=float(spectrum[best_bin]),
        spectrum=tuple(spectrum.tolist()),
    )


def period_boundaries(period: int, window_length: int) -> List[Tuple[int, int]]:
    """Partition ``[0, window_length)`` into consecutive main periods.

    The last interval may be shorter than ``period`` if the window length is
    not an exact multiple; it is still a valid masking unit.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    boundaries = []
    start = 0
    while start < window_length:
        end = min(start + period, window_length)
        boundaries.append((start, end))
        start = end
    return boundaries
