"""Acceleration energy signal (paper Section IV-A-1).

The paper computes, for each time step ``i``, the energy
``e_i = a_i1^2 + a_i2^2 + a_i3^2`` over the three accelerometer axes, and
derives both the key points (peaks/valleys) and the main period from this
scalar signal rather than from the raw multi-axis data.  Because the three
axes of an IMU are time-dependent (a zero crossing on one axis co-occurs with
a peak on another), the energy transform does not confuse key points.
"""

from __future__ import annotations

import numpy as np


def acceleration_energy(window: np.ndarray, accel_axes: int = 3) -> np.ndarray:
    """Compute the per-step acceleration energy of an IMU window.

    Parameters
    ----------
    window:
        Array of shape ``(L_win, channels)`` where the first ``accel_axes``
        channels are the accelerometer axes (the paper's datasets store
        channels as ``[acc_x, acc_y, acc_z, gyr_x, gyr_y, gyr_z, ...]``).
    accel_axes:
        Number of leading accelerometer channels to include.

    Returns
    -------
    ndarray of shape ``(L_win,)`` with ``e_i = sum_k a_ik^2``.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2:
        raise ValueError(f"window must be 2-D (length, channels), got shape {window.shape}")
    if window.shape[1] < accel_axes:
        raise ValueError(
            f"window has {window.shape[1]} channels but {accel_axes} accelerometer axes requested"
        )
    accel = window[:, :accel_axes]
    return np.sum(accel * accel, axis=1)


def normalized_energy(window: np.ndarray, accel_axes: int = 3) -> np.ndarray:
    """Energy signal linearly rescaled to ``[0, 1]`` (used for plotting/tests)."""
    energy = acceleration_energy(window, accel_axes=accel_axes)
    span = energy.max() - energy.min()
    if span <= 0:
        return np.zeros_like(energy)
    return (energy - energy.min()) / span
