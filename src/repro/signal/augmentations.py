"""IMU data augmentations used by the contrastive baselines (CL-HAR, TPN).

The paper's baselines rely on "complete data augmentations" — transformations
that can be expressed entirely in terms of the original observations and
known physical states (Section VII-A-3).  The standard augmentation set from
the TPN / CL-HAR literature is provided: jitter, scaling, rotation, axis
permutation, time-warping, magnitude-warping, channel shuffling and negation.

Every augmentation takes and returns an array of shape ``(L, C)`` or a batch
``(N, L, C)`` and leaves its input untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np


def _apply_per_window(
    windows: np.ndarray,
    func: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:
        return func(windows, rng)
    if windows.ndim == 3:
        return np.stack([func(window, rng) for window in windows], axis=0)
    raise ValueError(f"expected 2-D or 3-D input, got shape {windows.shape}")


def jitter(windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.05) -> np.ndarray:
    """Add zero-mean Gaussian noise to every sample."""
    windows = np.asarray(windows, dtype=np.float64)
    return windows + rng.normal(0.0, sigma, size=windows.shape)


def scaling(windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.1) -> np.ndarray:
    """Multiply each channel by a random factor close to 1."""

    def _scale(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        factors = generator.normal(1.0, sigma, size=(1, window.shape[1]))
        return window * factors

    return _apply_per_window(windows, _scale, rng)


def negation(windows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Negate the signal (mirror about zero)."""
    del rng  # deterministic transform; signature kept uniform
    return -np.asarray(windows, dtype=np.float64)


def time_reversal(windows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Reverse the time axis."""
    del rng
    windows = np.asarray(windows, dtype=np.float64)
    return windows[..., ::-1, :].copy()


def channel_shuffle(windows: np.ndarray, rng: np.random.Generator, group_size: int = 3) -> np.ndarray:
    """Randomly permute axes within each sensor triad (e.g. acc_x/acc_y/acc_z)."""

    def _shuffle(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        result = window.copy()
        channels = window.shape[1]
        for start in range(0, channels - channels % group_size, group_size):
            permutation = generator.permutation(group_size)
            result[:, start:start + group_size] = window[:, start + permutation]
        return result

    return _apply_per_window(windows, _shuffle, rng)


def rotation(windows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply a random 3-D rotation to every sensor triad.

    Models a different (unknown) device orientation, a physically complete
    transformation for IMU data.
    """

    def _random_rotation_matrix(generator: np.random.Generator) -> np.ndarray:
        # Random rotation via QR decomposition of a Gaussian matrix.
        gaussian = generator.normal(size=(3, 3))
        q, r = np.linalg.qr(gaussian)
        q = q * np.sign(np.diag(r))
        if np.linalg.det(q) < 0:
            q[:, 0] = -q[:, 0]
        return q

    def _rotate(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        result = window.copy()
        channels = window.shape[1]
        matrix = _random_rotation_matrix(generator)
        for start in range(0, channels - channels % 3, 3):
            result[:, start:start + 3] = window[:, start:start + 3] @ matrix.T
        return result

    return _apply_per_window(windows, _rotate, rng)


def permutation(windows: np.ndarray, rng: np.random.Generator, num_segments: int = 4) -> np.ndarray:
    """Split the window into segments and permute their order."""
    if num_segments < 2:
        raise ValueError("num_segments must be at least 2")

    def _permute(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        length = window.shape[0]
        segments = np.array_split(np.arange(length), num_segments)
        order = generator.permutation(len(segments))
        indices = np.concatenate([segments[i] for i in order])
        return window[indices]

    return _apply_per_window(windows, _permute, rng)


def time_warp(windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.2, knots: int = 4) -> np.ndarray:
    """Smoothly warp the time axis using a random cubic-ish warping curve."""

    def _warp(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        length = window.shape[0]
        anchor_positions = np.linspace(0, length - 1, knots + 2)
        anchor_offsets = generator.normal(1.0, sigma, size=knots + 2)
        warp_steps = np.interp(np.arange(length), anchor_positions, anchor_offsets)
        cumulative = np.cumsum(warp_steps)
        cumulative = cumulative / cumulative[-1] * (length - 1)
        warped = np.empty_like(window)
        for channel in range(window.shape[1]):
            warped[:, channel] = np.interp(np.arange(length), cumulative, window[:, channel])
        return warped

    return _apply_per_window(windows, _warp, rng)


def magnitude_warp(windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.2, knots: int = 4) -> np.ndarray:
    """Multiply the signal by a smooth random envelope."""

    def _warp(window: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        length = window.shape[0]
        anchor_positions = np.linspace(0, length - 1, knots + 2)
        envelope = np.empty_like(window)
        for channel in range(window.shape[1]):
            anchors = generator.normal(1.0, sigma, size=knots + 2)
            envelope[:, channel] = np.interp(np.arange(length), anchor_positions, anchors)
        return window * envelope

    return _apply_per_window(windows, _warp, rng)


AUGMENTATION_REGISTRY: Dict[str, Callable[..., np.ndarray]] = {
    "jitter": jitter,
    "scaling": scaling,
    "negation": negation,
    "time_reversal": time_reversal,
    "channel_shuffle": channel_shuffle,
    "rotation": rotation,
    "permutation": permutation,
    "time_warp": time_warp,
    "magnitude_warp": magnitude_warp,
}
"""Name -> augmentation function registry, used by the TPN baseline heads."""


def get_augmentation(name: str) -> Callable[..., np.ndarray]:
    """Look up an augmentation by name."""
    if name not in AUGMENTATION_REGISTRY:
        raise KeyError(
            f"unknown augmentation {name!r}; available: {sorted(AUGMENTATION_REGISTRY)}"
        )
    return AUGMENTATION_REGISTRY[name]


def compose(names: Sequence[str]) -> Callable[[np.ndarray, np.random.Generator], np.ndarray]:
    """Compose several named augmentations into a single callable."""
    functions: List[Callable[..., np.ndarray]] = [get_augmentation(name) for name in names]

    def _composed(windows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        result = np.asarray(windows, dtype=np.float64)
        for function in functions:
            result = function(result, rng)
        return result

    return _composed
