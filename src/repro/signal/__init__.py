"""IMU signal-processing substrate (energy, key points, periods, preprocessing)."""

from .augmentations import (
    AUGMENTATION_REGISTRY,
    channel_shuffle,
    compose,
    get_augmentation,
    jitter,
    magnitude_warp,
    negation,
    permutation,
    rotation,
    scaling,
    time_reversal,
    time_warp,
)
from .energy import acceleration_energy, normalized_energy
from .keypoints import (
    KeyPoints,
    filter_extrema,
    find_key_points,
    local_maxima,
    local_minima,
    subperiod_boundaries,
)
from .period import MainPeriod, find_main_period, magnitude_spectrum, period_boundaries
from .preprocessing import GRAVITY, downsample, normalize_imu, slice_windows, standardize

__all__ = [
    "acceleration_energy",
    "normalized_energy",
    "KeyPoints",
    "local_maxima",
    "local_minima",
    "filter_extrema",
    "find_key_points",
    "subperiod_boundaries",
    "MainPeriod",
    "magnitude_spectrum",
    "find_main_period",
    "period_boundaries",
    "GRAVITY",
    "downsample",
    "slice_windows",
    "normalize_imu",
    "standardize",
    "AUGMENTATION_REGISTRY",
    "get_augmentation",
    "compose",
    "jitter",
    "scaling",
    "negation",
    "time_reversal",
    "channel_shuffle",
    "rotation",
    "permutation",
    "time_warp",
    "magnitude_warp",
]
