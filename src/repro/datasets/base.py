"""Dataset container, splits, and low-label subsetting.

The central object is :class:`IMUDataset`: a batch of fixed-length IMU
windows together with one integer label array per downstream task (activity,
user, placement).  It supports the evaluation protocol of the paper:

* 6:2:2 train/validation/test splits (Section VII-A-2);
* labelling-rate subsetting — keeping only ``r%`` of the training labels,
  stratified per class (Section VII-B evaluates r in {5, 10, 15, 20}%);
* per-class few-shot sampling ("about 100 training samples per class").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataError
from ..rng import make_rng

TASK_ACTIVITY = "activity"
TASK_USER = "user"
TASK_PLACEMENT = "placement"

KNOWN_TASKS = (TASK_ACTIVITY, TASK_USER, TASK_PLACEMENT)


@dataclass
class DatasetMetadata:
    """Descriptive metadata of an IMU dataset."""

    name: str
    sensor_channels: Tuple[str, ...]
    sampling_rate_hz: float
    window_length: int
    class_names: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def num_channels(self) -> int:
        return len(self.sensor_channels)

    def num_classes(self, task: str) -> int:
        if task not in self.class_names:
            raise DataError(f"dataset {self.name!r} has no labels for task {task!r}")
        return len(self.class_names[task])


class IMUDataset:
    """A set of IMU windows with per-task labels.

    Parameters
    ----------
    windows:
        Array of shape ``(N, L_win, C)``.
    labels:
        Mapping ``task name -> integer label array of shape (N,)``.
    metadata:
        Dataset description (name, channels, class names, ...).
    """

    def __init__(
        self,
        windows: np.ndarray,
        labels: Mapping[str, np.ndarray],
        metadata: DatasetMetadata,
    ) -> None:
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise DataError(f"windows must have shape (N, L, C), got {windows.shape}")
        self.windows = windows
        self.labels: Dict[str, np.ndarray] = {}
        for task, values in labels.items():
            values = np.asarray(values, dtype=np.int64)
            if values.shape != (windows.shape[0],):
                raise DataError(
                    f"label array for task {task!r} has shape {values.shape}, "
                    f"expected ({windows.shape[0]},)"
                )
            self.labels[task] = values
        self.metadata = metadata
        if metadata.window_length != windows.shape[1]:
            raise DataError(
                f"metadata window_length {metadata.window_length} does not match data "
                f"window length {windows.shape[1]}"
            )
        if metadata.num_channels != windows.shape[2]:
            raise DataError(
                f"metadata declares {metadata.num_channels} channels but data has "
                f"{windows.shape[2]}"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.windows.shape[0]

    @property
    def window_length(self) -> int:
        return self.windows.shape[1]

    @property
    def num_channels(self) -> int:
        return self.windows.shape[2]

    @property
    def tasks(self) -> Tuple[str, ...]:
        return tuple(self.labels.keys())

    def num_classes(self, task: str) -> int:
        """Number of classes of ``task`` (from metadata when present, else labels)."""
        if task in self.metadata.class_names:
            return self.metadata.num_classes(task)
        if task not in self.labels:
            raise DataError(f"unknown task {task!r}; available: {self.tasks}")
        return int(self.labels[task].max()) + 1

    def task_labels(self, task: str) -> np.ndarray:
        if task not in self.labels:
            raise DataError(f"unknown task {task!r}; available: {self.tasks}")
        return self.labels[task]

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "IMUDataset":
        """Return a new dataset restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise DataError("subset indices out of range")
        return IMUDataset(
            windows=self.windows[indices],
            labels={task: values[indices] for task, values in self.labels.items()},
            metadata=self.metadata,
        )

    def split(
        self,
        ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
        rng: Optional[np.random.Generator] = None,
        stratify_task: Optional[str] = None,
    ) -> "DatasetSplits":
        """Split into train/validation/test subsets.

        The paper uses a 6:2:2 split.  When ``stratify_task`` is given, the
        split preserves per-class proportions for that task, which keeps every
        class represented even at small dataset sizes.
        """
        if len(ratios) != 3 or abs(sum(ratios) - 1.0) > 1e-6:
            raise DataError(f"split ratios must have length 3 and sum to 1, got {ratios}")
        generator = rng if rng is not None else make_rng()

        if stratify_task is None:
            permutation = generator.permutation(len(self))
            groups = [permutation]
        else:
            labels = self.task_labels(stratify_task)
            groups = [
                generator.permutation(np.flatnonzero(labels == cls))
                for cls in np.unique(labels)
            ]

        train_idx: List[int] = []
        val_idx: List[int] = []
        test_idx: List[int] = []
        for group in groups:
            n = len(group)
            n_train = int(round(ratios[0] * n))
            n_val = int(round(ratios[1] * n))
            train_idx.extend(group[:n_train].tolist())
            val_idx.extend(group[n_train:n_train + n_val].tolist())
            test_idx.extend(group[n_train + n_val:].tolist())

        return DatasetSplits(
            train=self.subset(sorted(train_idx)),
            validation=self.subset(sorted(val_idx)),
            test=self.subset(sorted(test_idx)),
        )

    def labelled_fraction(
        self,
        task: str,
        labelling_rate: float,
        rng: Optional[np.random.Generator] = None,
        min_per_class: int = 1,
    ) -> "IMUDataset":
        """Keep only ``labelling_rate`` of the samples, stratified per class.

        This models the paper's low-label regime: the remaining samples are
        treated as unlabelled and are only used for pre-training.
        """
        if not 0.0 < labelling_rate <= 1.0:
            raise DataError(f"labelling_rate must be in (0, 1], got {labelling_rate}")
        generator = rng if rng is not None else make_rng()
        labels = self.task_labels(task)
        kept: List[int] = []
        for cls in np.unique(labels):
            class_indices = np.flatnonzero(labels == cls)
            count = max(min_per_class, int(round(labelling_rate * class_indices.size)))
            count = min(count, class_indices.size)
            chosen = generator.choice(class_indices, size=count, replace=False)
            kept.extend(chosen.tolist())
        return self.subset(sorted(kept))

    def few_shot(
        self,
        task: str,
        samples_per_class: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "IMUDataset":
        """Keep at most ``samples_per_class`` samples of every class of ``task``."""
        if samples_per_class <= 0:
            raise DataError("samples_per_class must be positive")
        generator = rng if rng is not None else make_rng()
        labels = self.task_labels(task)
        kept: List[int] = []
        for cls in np.unique(labels):
            class_indices = np.flatnonzero(labels == cls)
            count = min(samples_per_class, class_indices.size)
            chosen = generator.choice(class_indices, size=count, replace=False)
            kept.extend(chosen.tolist())
        return self.subset(sorted(kept))

    def class_distribution(self, task: str) -> Dict[int, int]:
        """Return ``class -> count`` for ``task``."""
        labels = self.task_labels(task)
        unique, counts = np.unique(labels, return_counts=True)
        return {int(cls): int(count) for cls, count in zip(unique, counts)}

    def __repr__(self) -> str:
        return (
            f"IMUDataset(name={self.metadata.name!r}, n={len(self)}, "
            f"window={self.window_length}, channels={self.num_channels}, tasks={self.tasks})"
        )


@dataclass
class DatasetSplits:
    """Train / validation / test subsets of one dataset."""

    train: IMUDataset
    validation: IMUDataset
    test: IMUDataset

    def __iter__(self):
        return iter((self.train, self.validation, self.test))

    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))
