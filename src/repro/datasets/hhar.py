"""Simulated HHAR dataset (Stisen et al., SenSys 2015).

Paper Table II: accelerometer + gyroscope, 6 activities, 9 users, window 120,
9,166 samples after preprocessing.  HHAR's defining property is *device
heterogeneity* (several phone models with different sampling behaviour),
which we model with a larger pool of device profiles.

The real recordings are unavailable offline; see DESIGN.md for the
substitution rationale.  The factory accepts a ``scale`` argument so tests
and benchmarks can work with a smaller (but identically structured) dataset.
"""

from __future__ import annotations

from ..exceptions import DataError
from .base import IMUDataset
from .synthetic import SyntheticIMUConfig, SyntheticIMUGenerator

HHAR_ACTIVITIES = ("walking", "jogging", "sitting", "standing", "upstairs", "downstairs")
HHAR_NUM_USERS = 9
HHAR_WINDOW_LENGTH = 120
HHAR_TARGET_SAMPLES = 9166


def make_hhar(scale: float = 1.0, seed: int = 11, window_length: int = HHAR_WINDOW_LENGTH) -> IMUDataset:
    """Build the simulated HHAR dataset.

    Parameters
    ----------
    scale:
        Fraction of the paper's sample count to generate (1.0 -> about 9,166
        windows).  Values below 1 keep the same users/activities but fewer
        windows per combination.
    seed:
        Seed of the synthetic generator (fixed default for reproducibility).
    window_length:
        Window length in samples; the paper uses 120 (6 s at 20 Hz).
    """
    if scale <= 0:
        raise DataError("scale must be positive")
    combinations = HHAR_NUM_USERS * len(HHAR_ACTIVITIES)
    windows_per_combination = max(1, int(round(HHAR_TARGET_SAMPLES * scale / combinations)))
    config = SyntheticIMUConfig(
        num_users=HHAR_NUM_USERS,
        activities=HHAR_ACTIVITIES,
        placements=(),
        num_devices=6,
        windows_per_combination=windows_per_combination,
        window_length=window_length,
        include_magnetometer=False,
        seed=seed,
        name="hhar",
    )
    return SyntheticIMUGenerator(config).generate()
