"""Datasets: synthetic IMU generator and the paper's three evaluation datasets."""

from .base import (
    KNOWN_TASKS,
    TASK_ACTIVITY,
    TASK_PLACEMENT,
    TASK_USER,
    DatasetMetadata,
    DatasetSplits,
    IMUDataset,
)
from .hhar import HHAR_ACTIVITIES, HHAR_NUM_USERS, make_hhar
from .loaders import Batch, DataLoader, train_validation_batches
from .motion import MOTION_ACTIVITIES, MOTION_NUM_USERS, make_motion
from .registry import DATASET_REGISTRY, available_datasets, load_dataset
from .shoaib import SHOAIB_ACTIVITIES, SHOAIB_NUM_USERS, SHOAIB_PLACEMENTS, make_shoaib
from .synthetic import (
    DEFAULT_ACTIVITIES,
    DEFAULT_PLACEMENTS,
    ActivityProfile,
    SyntheticIMUConfig,
    SyntheticIMUGenerator,
    generate_synthetic_dataset,
)

__all__ = [
    "IMUDataset",
    "DatasetMetadata",
    "DatasetSplits",
    "TASK_ACTIVITY",
    "TASK_USER",
    "TASK_PLACEMENT",
    "KNOWN_TASKS",
    "Batch",
    "DataLoader",
    "train_validation_batches",
    "ActivityProfile",
    "SyntheticIMUConfig",
    "SyntheticIMUGenerator",
    "generate_synthetic_dataset",
    "DEFAULT_ACTIVITIES",
    "DEFAULT_PLACEMENTS",
    "make_hhar",
    "make_motion",
    "make_shoaib",
    "HHAR_ACTIVITIES",
    "HHAR_NUM_USERS",
    "MOTION_ACTIVITIES",
    "MOTION_NUM_USERS",
    "SHOAIB_ACTIVITIES",
    "SHOAIB_NUM_USERS",
    "SHOAIB_PLACEMENTS",
    "DATASET_REGISTRY",
    "available_datasets",
    "load_dataset",
]
