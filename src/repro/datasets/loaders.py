"""Mini-batch iteration over :class:`~repro.datasets.base.IMUDataset`.

Two sampling modes are supported:

* **Legacy stream mode** (``rng=...`` or nothing): every epoch draws a fresh
  permutation from a single generator stream, so the order of epoch ``e``
  depends on how many epochs were consumed before it.  This is kept for
  backward compatibility with the single-process trainers.
* **Seeded epoch mode** (``seed=...``): the order of epoch ``e`` is a pure
  function of ``(seed, e)`` — independent of consumption history.  This is
  what the data-parallel subsystem (:mod:`repro.parallel`) requires: every
  replica derives the *same* global permutation for an epoch and then takes a
  disjoint shard of it, so shard contents are deterministic given
  ``(seed, epoch, shard_index)``.

Sharding (``num_shards`` > 1) is aligned to *global batches*: the epoch order
is cut into consecutive blocks of ``batch_size * num_shards`` samples and
shard ``w`` receives the ``w``-th chunk of every block.  The union of all
shards' step-``t`` batches is therefore exactly the step-``t`` batch a
single-process loader with batch size ``batch_size * num_shards`` would see —
the property that makes data-parallel SGD equivalent to large-batch SGD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DataError
from ..rng import make_rng
from .base import IMUDataset


@dataclass
class Batch:
    """One mini-batch of windows (and optionally labels for one task)."""

    windows: np.ndarray
    labels: Optional[np.ndarray] = None
    indices: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.windows.shape[0]


class DataLoader:
    """Iterate over a dataset in shuffled (or ordered) mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate over.
    batch_size:
        Number of windows per batch (per shard, when sharded).
    task:
        When given, each batch also carries the integer labels for this task.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch (useful for contrastive losses that
        need a fixed batch size).  When sharded, the final incomplete *global*
        block is dropped so every shard drops the same steps.
    rng:
        Legacy stream-mode generator used for shuffling; defaults to a fresh
        unseeded generator.  Ignored when ``seed`` is given.
    seed:
        When given, switches to seeded epoch mode: the epoch-``e`` order is
        ``default_rng(SeedSequence([seed, e]))`` regardless of history.  Use
        :meth:`set_epoch` to pin the epoch explicitly (it otherwise advances
        by one per completed ``__iter__``).
    num_shards / shard_index:
        Partition every epoch across ``num_shards`` replicas; this loader
        yields only shard ``shard_index``.  Shuffled sharded loading requires
        ``seed`` so all replicas agree on the global permutation.
    """

    def __init__(
        self,
        dataset: IMUDataset,
        batch_size: int,
        task: Optional[str] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        num_shards: int = 1,
        shard_index: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        if len(dataset) == 0:
            raise DataError("cannot build a DataLoader over an empty dataset")
        if num_shards < 1:
            raise DataError(f"num_shards must be >= 1, got {num_shards}")
        if not 0 <= shard_index < num_shards:
            raise DataError(
                f"shard_index must be in [0, {num_shards}), got {shard_index}"
            )
        if num_shards > 1 and shuffle and seed is None:
            raise DataError(
                "sharded shuffled loading requires a seed so that every shard "
                "derives the same global permutation"
            )
        self.dataset = dataset
        self.batch_size = batch_size
        self.task = task
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self.num_shards = num_shards
        self.shard_index = shard_index
        self._rng = rng if rng is not None else make_rng()
        self._epoch = 0
        if task is not None and task not in dataset.labels:
            raise DataError(f"dataset has no labels for task {task!r}")

    # ------------------------------------------------------------------
    # Epoch bookkeeping (seeded mode)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The epoch whose order the next ``__iter__`` will use (seeded mode)."""
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Pin the epoch used for the next iteration (replica synchronisation)."""
        self._epoch = int(epoch)

    def _epoch_order(self) -> np.ndarray:
        if not self.shuffle:
            return np.arange(len(self.dataset))
        if self.seed is not None:
            rng = np.random.default_rng(
                np.random.SeedSequence([int(self.seed), int(self._epoch)])
            )
            return rng.permutation(len(self.dataset))
        return self._rng.permutation(len(self.dataset))

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        global_batch = self.batch_size * self.num_shards
        full, remainder = divmod(len(self.dataset), global_batch)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def _make_batch(self, indices: np.ndarray, labels: Optional[np.ndarray]) -> Batch:
        return Batch(
            windows=self.dataset.windows[indices],
            labels=labels[indices] if labels is not None else None,
            indices=indices,
        )

    def __iter__(self) -> Iterator[Batch]:
        order = self._epoch_order()
        labels = self.dataset.task_labels(self.task) if self.task is not None else None
        global_batch = self.batch_size * self.num_shards
        for start in range(0, len(order), global_batch):
            block = order[start:start + global_batch]
            if self.drop_last and block.size < global_batch:
                break
            if self.num_shards == 1:
                yield self._make_batch(block, labels)
            else:
                # Chunk w of every global block goes to shard w; chunks of a
                # short final block may be empty, but every shard still yields
                # the same number of steps, keeping replicas in lockstep.
                chunk = np.array_split(block, self.num_shards)[self.shard_index]
                yield self._make_batch(chunk, labels)
        # Advance only on epoch completion: an abandoned iteration replays the
        # same (seed, epoch) order, so replicas cannot silently drift.
        self._epoch += 1


def train_validation_batches(
    splits,
    batch_size: int,
    task: str,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DataLoader, DataLoader]:
    """Convenience helper returning train and validation loaders for a task."""
    train_loader = DataLoader(splits.train, batch_size=batch_size, task=task, shuffle=True, rng=rng)
    val_loader = DataLoader(splits.validation, batch_size=batch_size, task=task, shuffle=False, rng=rng)
    return train_loader, val_loader
