"""Mini-batch iteration over :class:`~repro.datasets.base.IMUDataset`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DataError
from .base import IMUDataset


@dataclass
class Batch:
    """One mini-batch of windows (and optionally labels for one task)."""

    windows: np.ndarray
    labels: Optional[np.ndarray] = None
    indices: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.windows.shape[0]


class DataLoader:
    """Iterate over a dataset in shuffled (or ordered) mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate over.
    batch_size:
        Number of windows per batch.
    task:
        When given, each batch also carries the integer labels for this task.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    drop_last:
        Drop the final incomplete batch (useful for contrastive losses that
        need a fixed batch size).
    rng:
        Generator used for shuffling; defaults to a fresh unseeded generator.
    """

    def __init__(
        self,
        dataset: IMUDataset,
        batch_size: int,
        task: Optional[str] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        if len(dataset) == 0:
            raise DataError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.task = task
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()
        if task is not None and task not in dataset.labels:
            raise DataError(f"dataset has no labels for task {task!r}")

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            order = self._rng.permutation(order)
        labels = self.dataset.task_labels(self.task) if self.task is not None else None
        for start in range(0, len(order), self.batch_size):
            indices = order[start:start + self.batch_size]
            if self.drop_last and indices.size < self.batch_size:
                break
            yield Batch(
                windows=self.dataset.windows[indices],
                labels=labels[indices] if labels is not None else None,
                indices=indices,
            )


def train_validation_batches(
    splits,
    batch_size: int,
    task: str,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DataLoader, DataLoader]:
    """Convenience helper returning train and validation loaders for a task."""
    train_loader = DataLoader(splits.train, batch_size=batch_size, task=task, shuffle=True, rng=rng)
    val_loader = DataLoader(splits.validation, batch_size=batch_size, task=task, shuffle=False, rng=rng)
    return train_loader, val_loader
