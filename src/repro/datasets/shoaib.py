"""Simulated Shoaib dataset (Shoaib et al., Sensors 2014).

Paper Table II: accelerometer + gyroscope + magnetometer, 7 activities, 10
users, 5 device placements (right pocket, left pocket, belt, upper arm,
wrist), window 120, 10,500 samples.  Shoaib is the only dataset providing the
device-placement (DP) downstream task.
"""

from __future__ import annotations

from ..exceptions import DataError
from .base import IMUDataset
from .synthetic import DEFAULT_PLACEMENTS, SyntheticIMUConfig, SyntheticIMUGenerator

SHOAIB_ACTIVITIES = (
    "walking", "sitting", "standing", "jogging", "biking", "upstairs", "downstairs",
)
SHOAIB_NUM_USERS = 10
SHOAIB_PLACEMENTS = DEFAULT_PLACEMENTS
SHOAIB_WINDOW_LENGTH = 120
SHOAIB_TARGET_SAMPLES = 10500


def make_shoaib(scale: float = 1.0, seed: int = 37, window_length: int = SHOAIB_WINDOW_LENGTH) -> IMUDataset:
    """Build the simulated Shoaib dataset (see :func:`repro.datasets.hhar.make_hhar`)."""
    if scale <= 0:
        raise DataError("scale must be positive")
    combinations = SHOAIB_NUM_USERS * len(SHOAIB_ACTIVITIES) * len(SHOAIB_PLACEMENTS)
    windows_per_combination = max(1, int(round(SHOAIB_TARGET_SAMPLES * scale / combinations)))
    config = SyntheticIMUConfig(
        num_users=SHOAIB_NUM_USERS,
        activities=SHOAIB_ACTIVITIES,
        placements=SHOAIB_PLACEMENTS,
        num_devices=1,
        windows_per_combination=windows_per_combination,
        window_length=window_length,
        include_magnetometer=True,
        seed=seed,
        name="shoaib",
    )
    return SyntheticIMUGenerator(config).generate()
