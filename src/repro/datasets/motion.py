"""Simulated MotionSense dataset (Malekzadeh et al., IoTDI 2019).

Paper Table II: accelerometer + gyroscope, 6 activities, 24 users, window
120, 4,534 samples after preprocessing.  Data was collected with an iPhone 6s
in the subjects' front trouser pockets, so there is a single placement and a
single device model.
"""

from __future__ import annotations

from ..exceptions import DataError
from .base import IMUDataset
from .synthetic import SyntheticIMUConfig, SyntheticIMUGenerator

MOTION_ACTIVITIES = ("walking", "jogging", "sitting", "standing", "upstairs", "downstairs")
MOTION_NUM_USERS = 24
MOTION_WINDOW_LENGTH = 120
MOTION_TARGET_SAMPLES = 4534


def make_motion(scale: float = 1.0, seed: int = 23, window_length: int = MOTION_WINDOW_LENGTH) -> IMUDataset:
    """Build the simulated Motion dataset (see :func:`repro.datasets.hhar.make_hhar`)."""
    if scale <= 0:
        raise DataError("scale must be positive")
    combinations = MOTION_NUM_USERS * len(MOTION_ACTIVITIES)
    windows_per_combination = max(1, int(round(MOTION_TARGET_SAMPLES * scale / combinations)))
    config = SyntheticIMUConfig(
        num_users=MOTION_NUM_USERS,
        activities=MOTION_ACTIVITIES,
        placements=(),
        num_devices=1,
        windows_per_combination=windows_per_combination,
        window_length=window_length,
        include_magnetometer=False,
        seed=seed,
        name="motion",
    )
    return SyntheticIMUGenerator(config).generate()
