"""Parametric synthetic IMU motion generator.

The public IMU datasets the paper evaluates on (HHAR, Motion, Shoaib) cannot
be downloaded in the offline reproduction environment, so this module
synthesises datasets with the same shapes and — crucially — the same
*semantic structure* that Saga's pre-training tasks exploit:

* **Periodicity** — locomotion activities (walk, run, bike, stairs) are
  quasi-periodic with an activity-specific base cadence; the period-level
  masking task depends on this.
* **Sub-period structure** — each gait cycle is built from harmonics with
  user-specific phases/amplitudes, producing the peaks and valleys that the
  key-point detector partitions into sub-periods.
* **Per-user signatures** — every simulated user has an idiosyncratic cadence
  offset, harmonic amplitude profile, micro-tremor frequency, and posture
  bias.  These make the user-authentication (UA) task learnable.
* **Per-placement orientation** — device placements (pocket, belt, wrist, ...)
  apply distinct rotations, gains and noise to the body-frame motion, making
  the device-placement (DP) task learnable.
* **Cross-axis dependence** — gyroscope channels are generated as phase-
  shifted derivatives of the acceleration pattern, so all channels experience
  key points simultaneously (paper Figure 3, observation 2), which is what the
  sensor-level masking task exploits.
* **Per-device heterogeneity** — device models add bias and noise, mirroring
  the hardware heterogeneity of HHAR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import DataError
from .base import (
    TASK_ACTIVITY,
    TASK_PLACEMENT,
    TASK_USER,
    DatasetMetadata,
    IMUDataset,
)


@dataclass(frozen=True)
class ActivityProfile:
    """Motion template of a single activity class."""

    name: str
    base_frequency_hz: float
    """Dominant cadence of the activity (0 for static postures)."""

    amplitude_g: float
    """Peak acceleration amplitude in units of g."""

    harmonic_weights: Tuple[float, ...] = (1.0, 0.45, 0.2)
    """Relative weights of the harmonic components of each cycle."""

    vertical_bias_g: float = 0.0
    """Extra quasi-static vertical acceleration (e.g. stair climbing)."""

    gyro_scale: float = 1.0
    """Ratio of angular-rate amplitude to acceleration amplitude."""

    noise_g: float = 0.02
    """Standard deviation of the per-sample measurement noise (in g)."""

    @property
    def is_static(self) -> bool:
        return self.base_frequency_hz <= 0.0


DEFAULT_ACTIVITIES: Dict[str, ActivityProfile] = {
    "walking": ActivityProfile("walking", base_frequency_hz=1.8, amplitude_g=0.45,
                               harmonic_weights=(1.0, 0.5, 0.22), gyro_scale=1.1),
    "jogging": ActivityProfile("jogging", base_frequency_hz=2.7, amplitude_g=1.1,
                               harmonic_weights=(1.0, 0.6, 0.3), gyro_scale=1.4, noise_g=0.03),
    "sitting": ActivityProfile("sitting", base_frequency_hz=0.0, amplitude_g=0.03,
                               harmonic_weights=(1.0,), gyro_scale=0.4, noise_g=0.01),
    "standing": ActivityProfile("standing", base_frequency_hz=0.0, amplitude_g=0.05,
                                harmonic_weights=(1.0,), gyro_scale=0.5, noise_g=0.012),
    "upstairs": ActivityProfile("upstairs", base_frequency_hz=1.5, amplitude_g=0.55,
                                harmonic_weights=(1.0, 0.4, 0.3), vertical_bias_g=0.12,
                                gyro_scale=1.2),
    "downstairs": ActivityProfile("downstairs", base_frequency_hz=1.6, amplitude_g=0.6,
                                  harmonic_weights=(1.0, 0.35, 0.32), vertical_bias_g=-0.12,
                                  gyro_scale=1.25),
    "biking": ActivityProfile("biking", base_frequency_hz=1.2, amplitude_g=0.35,
                              harmonic_weights=(1.0, 0.25, 0.1), gyro_scale=0.9),
}
"""Activity templates covering the union of HHAR / Motion / Shoaib label sets."""


DEFAULT_PLACEMENTS: Tuple[str, ...] = (
    "right_pocket", "left_pocket", "belt", "upper_arm", "wrist",
)
"""The five body positions of the Shoaib dataset."""


@dataclass(frozen=True)
class UserProfile:
    """Idiosyncratic motion signature of a simulated user."""

    user_id: int
    cadence_scale: float
    amplitude_scale: float
    harmonic_phases: Tuple[float, ...]
    harmonic_gains: Tuple[float, ...]
    tremor_frequency_hz: float
    tremor_amplitude_g: float
    posture_tilt_rad: Tuple[float, float]
    axis_mixing: Tuple[float, float, float]


@dataclass(frozen=True)
class PlacementProfile:
    """Orientation and gain signature of a device placement on the body."""

    name: str
    rotation: np.ndarray
    gain: float
    noise_scale: float
    sway_frequency_hz: float
    sway_amplitude_g: float


@dataclass(frozen=True)
class DeviceProfile:
    """Per-device-model measurement characteristics (HHAR-style heterogeneity)."""

    name: str
    accel_bias_g: Tuple[float, float, float]
    gyro_bias: Tuple[float, float, float]
    noise_multiplier: float


@dataclass
class SyntheticIMUConfig:
    """Configuration of the synthetic IMU generator."""

    num_users: int = 9
    activities: Tuple[str, ...] = ("walking", "jogging", "sitting", "standing", "upstairs", "downstairs")
    placements: Tuple[str, ...] = ()
    num_devices: int = 4
    windows_per_combination: int = 8
    window_length: int = 120
    sampling_rate_hz: float = 20.0
    include_magnetometer: bool = False
    normalize: bool = True
    """Apply the paper's normalisation (acc / g, mag / |m|) to generated windows."""

    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise DataError("num_users must be positive")
        if self.window_length <= 0:
            raise DataError("window_length must be positive")
        if self.windows_per_combination <= 0:
            raise DataError("windows_per_combination must be positive")
        unknown = [a for a in self.activities if a not in DEFAULT_ACTIVITIES]
        if unknown:
            raise DataError(f"unknown activities: {unknown}; known: {sorted(DEFAULT_ACTIVITIES)}")

    @property
    def channels(self) -> Tuple[str, ...]:
        base = ("acc_x", "acc_y", "acc_z", "gyr_x", "gyr_y", "gyr_z")
        if self.include_magnetometer:
            return base + ("mag_x", "mag_y", "mag_z")
        return base


def _rotation_matrix(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Intrinsic XYZ rotation matrix."""
    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cy, sy = np.cos(yaw), np.sin(yaw)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    return rz @ ry @ rx


class SyntheticIMUGenerator:
    """Generate :class:`IMUDataset` objects from a :class:`SyntheticIMUConfig`."""

    def __init__(self, config: SyntheticIMUConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.users = self._make_users()
        self.placements = self._make_placements()
        self.devices = self._make_devices()

    # ------------------------------------------------------------------
    # Profile synthesis
    # ------------------------------------------------------------------
    def _make_users(self) -> Tuple[UserProfile, ...]:
        users = []
        for user_id in range(self.config.num_users):
            users.append(
                UserProfile(
                    user_id=user_id,
                    cadence_scale=float(self._rng.uniform(0.85, 1.15)),
                    amplitude_scale=float(self._rng.uniform(0.75, 1.3)),
                    harmonic_phases=tuple(self._rng.uniform(0, 2 * np.pi, size=4).tolist()),
                    harmonic_gains=tuple(self._rng.uniform(0.6, 1.4, size=4).tolist()),
                    tremor_frequency_hz=float(self._rng.uniform(7.0, 9.5)),
                    tremor_amplitude_g=float(self._rng.uniform(0.004, 0.02)),
                    posture_tilt_rad=(
                        float(self._rng.uniform(-0.25, 0.25)),
                        float(self._rng.uniform(-0.25, 0.25)),
                    ),
                    axis_mixing=tuple(self._rng.uniform(0.7, 1.3, size=3).tolist()),
                )
            )
        return tuple(users)

    def _make_placements(self) -> Tuple[PlacementProfile, ...]:
        profiles = []
        names = self.config.placements if self.config.placements else ("default",)
        for index, name in enumerate(names):
            angles = self._rng.uniform(-np.pi / 3, np.pi / 3, size=3)
            profiles.append(
                PlacementProfile(
                    name=name,
                    rotation=_rotation_matrix(*angles),
                    gain=float(self._rng.uniform(0.8, 1.2)),
                    noise_scale=float(self._rng.uniform(0.9, 1.4)),
                    sway_frequency_hz=float(self._rng.uniform(0.3, 0.9)),
                    sway_amplitude_g=float(self._rng.uniform(0.01, 0.08)) * (index + 1) / len(names),
                )
            )
        return tuple(profiles)

    def _make_devices(self) -> Tuple[DeviceProfile, ...]:
        devices = []
        for index in range(max(1, self.config.num_devices)):
            devices.append(
                DeviceProfile(
                    name=f"device_{index}",
                    accel_bias_g=tuple(self._rng.normal(0.0, 0.015, size=3).tolist()),
                    gyro_bias=tuple(self._rng.normal(0.0, 0.01, size=3).tolist()),
                    noise_multiplier=float(self._rng.uniform(0.8, 1.5)),
                )
            )
        return tuple(devices)

    # ------------------------------------------------------------------
    # Window synthesis
    # ------------------------------------------------------------------
    def _synthesize_body_motion(
        self,
        activity: ActivityProfile,
        user: UserProfile,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return body-frame acceleration (in g) and angular rate for one window."""
        length = self.config.window_length
        dt = 1.0 / self.config.sampling_rate_hz
        time = np.arange(length) * dt
        phase_offset = rng.uniform(0, 2 * np.pi)

        accel = np.zeros((length, 3))
        gyro = np.zeros((length, 3))

        if activity.is_static:
            # Static postures: micro-tremor plus slow drift; the tremor
            # frequency is a user signature.
            tremor = user.tremor_amplitude_g * np.sin(
                2 * np.pi * user.tremor_frequency_hz * time + phase_offset
            )
            drift = 0.01 * np.sin(2 * np.pi * 0.2 * time + rng.uniform(0, 2 * np.pi))
            accel[:, 0] = tremor * user.axis_mixing[0]
            accel[:, 1] = (tremor * 0.6 + drift) * user.axis_mixing[1]
            accel[:, 2] = activity.amplitude_g * 0.5 * np.sin(
                2 * np.pi * 0.15 * time + phase_offset
            ) * user.axis_mixing[2]
            gyro[:, :] = activity.gyro_scale * np.stack(
                [
                    0.3 * tremor,
                    0.2 * drift * np.ones(length) if np.ndim(drift) else np.full(length, drift),
                    0.25 * tremor,
                ],
                axis=1,
            )
            return accel, gyro

        frequency = activity.base_frequency_hz * user.cadence_scale
        amplitude = activity.amplitude_g * user.amplitude_scale
        for harmonic_index, weight in enumerate(activity.harmonic_weights, start=1):
            user_gain = user.harmonic_gains[(harmonic_index - 1) % len(user.harmonic_gains)]
            user_phase = user.harmonic_phases[(harmonic_index - 1) % len(user.harmonic_phases)]
            omega = 2 * np.pi * frequency * harmonic_index
            component = weight * user_gain * amplitude * np.sin(omega * time + phase_offset + user_phase)
            # Vertical axis carries the dominant gait oscillation; the
            # horizontal axes carry phase-shifted, attenuated copies.
            accel[:, 2] += component
            accel[:, 0] += 0.55 * weight * user_gain * amplitude * np.sin(
                omega * time + phase_offset + user_phase + np.pi / 3
            )
            accel[:, 1] += 0.4 * weight * user_gain * amplitude * np.sin(
                omega * time + phase_offset + user_phase + 2 * np.pi / 3
            )
            # Angular rate approximately follows the derivative of acceleration,
            # keeping key points aligned across sensors (paper Figure 3).
            gyro[:, 0] += activity.gyro_scale * 0.8 * weight * amplitude * np.cos(
                omega * time + phase_offset + user_phase
            )
            gyro[:, 1] += activity.gyro_scale * 0.6 * weight * amplitude * np.cos(
                omega * time + phase_offset + user_phase + np.pi / 4
            )
            gyro[:, 2] += activity.gyro_scale * 0.3 * weight * amplitude * np.cos(
                omega * time + phase_offset + user_phase + np.pi / 2
            )

        accel[:, 2] += activity.vertical_bias_g
        accel *= np.asarray(user.axis_mixing)[None, :]
        return accel, gyro

    def _generate_window(
        self,
        activity: ActivityProfile,
        user: UserProfile,
        placement: PlacementProfile,
        device: DeviceProfile,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate one sensor-frame window ``(L, C)`` in physical units (g / rad/s)."""
        length = self.config.window_length
        dt = 1.0 / self.config.sampling_rate_hz
        time = np.arange(length) * dt

        accel, gyro = self._synthesize_body_motion(activity, user, rng)

        # Gravity in the body frame, tilted by the user's posture.
        tilt_roll, tilt_pitch = user.posture_tilt_rad
        gravity_direction = _rotation_matrix(tilt_roll, tilt_pitch, 0.0) @ np.array([0.0, 0.0, 1.0])
        accel = accel + gravity_direction[None, :]

        # Placement sway (e.g. arm swing for wrist placement).
        sway = placement.sway_amplitude_g * np.sin(
            2 * np.pi * placement.sway_frequency_hz * time + rng.uniform(0, 2 * np.pi)
        )
        accel[:, 0] += sway
        gyro[:, 2] += 0.5 * sway

        # Rotate into the device frame for this placement and apply gain.
        accel = (accel @ placement.rotation.T) * placement.gain
        gyro = (gyro @ placement.rotation.T) * placement.gain

        # Device bias and measurement noise.
        noise_std = activity.noise_g * device.noise_multiplier * placement.noise_scale
        accel = accel + np.asarray(device.accel_bias_g)[None, :]
        accel = accel + rng.normal(0.0, noise_std, size=accel.shape)
        gyro = gyro + np.asarray(device.gyro_bias)[None, :]
        gyro = gyro + rng.normal(0.0, noise_std, size=gyro.shape)

        channels = [accel, gyro]
        if self.config.include_magnetometer:
            # Earth's magnetic field rotated into the device frame plus noise;
            # slightly modulated by motion so it is not a constant channel.
            field = placement.rotation @ np.array([0.6, 0.0, 0.8])
            magnetometer = np.tile(field, (length, 1))
            magnetometer += 0.05 * np.sin(2 * np.pi * 0.5 * time)[:, None]
            magnetometer += rng.normal(0.0, 0.02, size=magnetometer.shape)
            channels.append(magnetometer)

        # Convert acceleration from g to m/s^2 so that the preprocessing
        # normalisation (divide by g) matches the paper's pipeline.
        window = np.concatenate(channels, axis=1)
        window[:, :3] *= 9.80665
        return window

    # ------------------------------------------------------------------
    # Dataset assembly
    # ------------------------------------------------------------------
    def generate(self) -> IMUDataset:
        """Generate the full dataset described by the configuration."""
        config = self.config
        activity_names = list(config.activities)
        placement_names = [p.name for p in self.placements]
        has_placement_task = bool(config.placements)

        windows = []
        activity_labels = []
        user_labels = []
        placement_labels = []

        for user in self.users:
            for activity_index, activity_name in enumerate(activity_names):
                activity = DEFAULT_ACTIVITIES[activity_name]
                for placement_index, placement in enumerate(self.placements):
                    for _ in range(config.windows_per_combination):
                        device = self.devices[
                            int(self._rng.integers(0, len(self.devices)))
                        ]
                        window = self._generate_window(
                            activity, user, placement, device, self._rng
                        )
                        windows.append(window)
                        activity_labels.append(activity_index)
                        user_labels.append(user.user_id)
                        placement_labels.append(placement_index)

        data = np.stack(windows, axis=0)
        if config.normalize:
            from ..signal.preprocessing import normalize_imu

            magnetometer_axes = (6, 7, 8) if config.include_magnetometer else ()
            data = normalize_imu(
                data, accel_axes=(0, 1, 2), magnetometer_axes=magnetometer_axes
            )
        labels: Dict[str, np.ndarray] = {
            TASK_ACTIVITY: np.asarray(activity_labels),
            TASK_USER: np.asarray(user_labels),
        }
        class_names: Dict[str, Tuple[str, ...]] = {
            TASK_ACTIVITY: tuple(activity_names),
            TASK_USER: tuple(f"user_{u.user_id}" for u in self.users),
        }
        if has_placement_task:
            labels[TASK_PLACEMENT] = np.asarray(placement_labels)
            class_names[TASK_PLACEMENT] = tuple(placement_names)

        metadata = DatasetMetadata(
            name=config.name,
            sensor_channels=config.channels,
            sampling_rate_hz=config.sampling_rate_hz,
            window_length=config.window_length,
            class_names=class_names,
        )
        return IMUDataset(windows=data, labels=labels, metadata=metadata)


def generate_synthetic_dataset(config: Optional[SyntheticIMUConfig] = None) -> IMUDataset:
    """Convenience wrapper: build a generator and produce one dataset."""
    return SyntheticIMUGenerator(config if config is not None else SyntheticIMUConfig()).generate()
