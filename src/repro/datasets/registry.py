"""Dataset registry mapping paper dataset names to factory functions."""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import DataError
from .base import IMUDataset
from .hhar import make_hhar
from .motion import make_motion
from .shoaib import make_shoaib

DatasetFactory = Callable[..., IMUDataset]

DATASET_REGISTRY: Dict[str, DatasetFactory] = {
    "hhar": make_hhar,
    "motion": make_motion,
    "shoaib": make_shoaib,
}
"""The three evaluation datasets of the paper (Table II)."""


def available_datasets() -> tuple:
    """Names of all registered datasets."""
    return tuple(sorted(DATASET_REGISTRY))


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> IMUDataset:
    """Build a registered dataset by name.

    Parameters
    ----------
    name:
        One of ``hhar``, ``motion``, ``shoaib`` (case-insensitive).
    scale:
        Fraction of the paper's sample count to generate.
    seed:
        Optional seed override; each dataset has a fixed default seed.
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise DataError(f"unknown dataset {name!r}; available: {available_datasets()}")
    factory = DATASET_REGISTRY[key]
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
