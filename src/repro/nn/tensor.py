"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
reference implementation uses PyTorch; this reproduction runs in an offline
environment without PyTorch, so a small but complete autograd engine is
provided instead.  The engine supports every operation required by the Saga
models (transformer encoder, GRU classifier, reconstruction decoder) and the
baselines (CL-HAR contrastive projector, TPN multi-head transform classifier).

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (``float64`` by default) and
  records the operations that produced it.  Calling :meth:`Tensor.backward`
  performs a topological sort of the recorded graph and accumulates gradients
  into ``Tensor.grad`` for every tensor with ``requires_grad=True``.
* Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand shape by :func:`unbroadcast`.
* The engine is intentionally eager and define-by-run, mirroring PyTorch, so
  the model code in :mod:`repro.models` reads almost identically to the
  paper's reference PyTorch code.
* Every op has two exits: the graph-recording path (grad mode on and at least
  one operand requires grad) builds ``_prev``/``_op`` metadata and a backward
  closure; the detached fast path builds none of that — no parent tuple, no
  op string, no closure, and no backward-only precomputation (``np.sign`` for
  ``abs``, the inverse permutation for ``transpose``, the pass-through mask
  for ``clip``).  The fast path is where :func:`no_grad` inference runs and
  where the :mod:`repro.nn.jit` tracer hooks in: when a trace session is
  active in the current thread, each detached op is recorded onto its tape.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

DTypeLike = Union[str, type, np.dtype]

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _validate_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise ``dtype`` to a supported floating :class:`numpy.dtype`."""
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported tensor dtype {resolved}; choose one of "
            f"{[str(d) for d in _SUPPORTED_DTYPES]}"
        )
    return resolved


# The process-wide precision policy.  ``REPRO_DTYPE`` selects the policy at
# import time (the CI float32 leg runs the suite under REPRO_DTYPE=float32);
# training keeps the float64 default so figure numerics and the experiments
# cache are byte-identical to earlier versions.
_DEFAULT_DTYPE = _validate_dtype(os.environ.get("REPRO_DTYPE", "float64"))


class _GradMode(threading.local):
    """Per-thread flag controlling whether ops record the autograd graph."""

    enabled: bool = True


_grad_mode = _GradMode()


class _TraceState(threading.local):
    """Per-thread handle to the active :mod:`repro.nn.jit` trace session.

    ``None`` in normal operation; set by the jit tracer for the duration of a
    trace so that the detached op fast path records each primitive onto the
    tape.  Thread-local, so a worker thread can trace while other threads
    train or serve eagerly.
    """

    session = None


_trace_state = _TraceState()


def is_grad_enabled() -> bool:
    """True when operations record the autograd graph in the current thread."""
    return _grad_mode.enabled


def set_grad_enabled(mode: bool) -> bool:
    """Set graph recording on/off for the current thread; returns the previous mode."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = bool(mode)
    return previous


class _GradContext:
    """Base for :class:`no_grad` / :class:`enable_grad` — context manager and decorator."""

    _mode: bool = True

    def __init__(self) -> None:
        self._previous: Optional[bool] = None

    def __enter__(self) -> "_GradContext":
        self._previous = set_grad_enabled(self._mode)
        return self

    def __exit__(self, *exc_info) -> None:
        set_grad_enabled(True if self._previous is None else self._previous)

    def __call__(self, func: Callable) -> Callable:
        import functools

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with type(self)():
                return func(*args, **kwargs)

        return wrapper


class no_grad(_GradContext):
    """Disable graph recording: the inference fast path.

    Inside the context (or a decorated function) every operation produces a
    detached tensor — no backward closures are built and no parent references
    are kept — so forwards allocate less, run faster, and never retain the
    graph.  The flag is thread-local, making the context safe to use in the
    serving worker threads while another thread trains.
    """

    _mode = False


class enable_grad(_GradContext):
    """Re-enable graph recording inside an enclosing :class:`no_grad` block."""

    _mode = True


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the floating dtype used when constructing tensors from python
    scalars, lists and integer arrays, and by every parameter initialiser.

    Accepts ``"float32"``/``"float64"`` (or the numpy equivalents) and returns
    the previous default so callers can restore it.  Arrays passed in as
    ``numpy.ndarray`` keep their own dtype — the policy governs construction,
    and the ops preserve operand dtype from there.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate_dtype(dtype)
    return previous


def get_default_dtype() -> np.dtype:
    """Return the current default floating dtype for new tensors."""
    return np.dtype(_DEFAULT_DTYPE)


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block.

    >>> with default_dtype("float32"):
    ...     model = SagaBackbone(config, rng=rng)  # float32 parameters
    """

    def __init__(self, dtype: DTypeLike) -> None:
        self._dtype = _validate_dtype(dtype)
        self._previous: Optional[np.dtype] = None

    def __enter__(self) -> np.dtype:
        self._previous = set_default_dtype(self._dtype)
        return self._dtype

    def __exit__(self, *exc_info) -> None:
        if self._previous is not None:
            set_default_dtype(self._previous)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand of shape ``shape`` was broadcast to the shape of ``grad``
    during the forward pass, the gradient flowing back must be summed over the
    broadcast dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype: Optional[np.dtype] = None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if dtype is None:
        if arr.dtype.kind in "iub":
            arr = arr.astype(_DEFAULT_DTYPE)
        elif arr.dtype.kind == "f" and not isinstance(value, (np.ndarray, np.generic)):
            # Python floats / float lists adopt the policy dtype; numpy arrays
            # and numpy scalars keep whatever dtype the caller chose (reduction
            # ops like ndarray.sum() hand back np.float32/64 scalars).
            arr = arr.astype(_DEFAULT_DTYPE, copy=False)
    return arr


def _noop_backward() -> None:
    return None


def ensure_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy if already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _coerce_operand(value: ArrayLike, dtype: np.dtype) -> "Tensor":
    """Coerce the second operand of a binary op, preserving the first's dtype.

    Python scalars (and numpy scalar types) adopt ``dtype`` so that constants
    like ``x * 0.5`` or ``1.0 - x`` never promote a float32 operand to
    float64: under NEP 50 a wrapped scalar becomes a 0-d float64 *array*,
    which numpy treats as a strong type.  Tensors and explicit numpy arrays
    keep their own dtype (mixed-array arithmetic promotes as numpy does).
    """
    if isinstance(value, Tensor):
        return value
    if isinstance(value, (bool, int, float, np.number)):
        return Tensor(np.asarray(value, dtype=dtype))
    return Tensor(value)


def _detached(out_data: np.ndarray, op: str, inputs: Tuple["Tensor", ...], attrs=None) -> "Tensor":
    """Finish an op on the detached fast path (no grad needed, or no_grad mode).

    No parent tuple, op string or backward closure is attached; when the
    current thread has an active jit trace session, the op is recorded onto
    its tape instead (the tape is the compiled executor's program).
    """
    out = Tensor(out_data)
    session = _trace_state.session
    if session is not None:
        session.record(out, op, inputs, attrs)
    return out


class Tensor:
    """A multi-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_prev", "_op", "name", "_trace_id",
    )
    __array_priority__ = 200  # ensure numpy defers to Tensor's operators

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Iterable["Tensor"] = (),
        _op: str = "",
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        if _prev and not _grad_mode.enabled:
            # Inference fast path: op results created under no_grad() are
            # detached — no parent references, no gradient requirement.
            requires_grad = False
            _prev = ()
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[], None] = _noop_backward
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self._op: str = _op
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_fn = f", op={self._op!r}" if self._op else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{grad_fn})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor(self.data, requires_grad=False)
        session = _trace_state.session
        if session is not None:
            # On a tape, detaching is the identity: the replayed value must
            # still flow from the producing op, not freeze into a constant.
            session.record(out, "alias", (self,), None)
        return out

    def astype(self, dtype: DTypeLike) -> "Tensor":
        """Cast to ``dtype`` as a differentiable op (gradient casts back).

        Returns ``self`` unchanged when the dtype already matches, so the cast
        is free on the homogeneous fast path.
        """
        dtype = np.dtype(dtype)
        if self.data.dtype == dtype:
            return self
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(
                self.data.astype(dtype),
                requires_grad=True,
                _prev=(self,),
                _op="astype",
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad)

            out._backward = _backward
            return out
        return _detached(self.data.astype(dtype), "astype", (self,), {"dtype": str(dtype)})

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor."""
        out = Tensor(self.data.copy(), requires_grad=False)
        session = _trace_state.session
        if session is not None:
            session.record(out, "copy", (self,), None)
        return out

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  If
            omitted, this tensor must be a scalar and the seed gradient is 1.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor; "
                    f"got shape {self.shape}"
                )
            seed = np.ones_like(self.data)
        else:
            seed = _as_array(grad).astype(self.data.dtype, copy=False)
            if seed.shape != self.data.shape:
                seed = np.broadcast_to(seed, self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = seed if self.grad is None else self.grad + seed
        for node in reversed(topo):
            node._backward()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _coerce_operand(other, self.data.dtype)
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):
            out = Tensor(
                self.data + other.data,
                requires_grad=True,
                _prev=(self, other),
                _op="add",
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                if self.requires_grad:
                    self._accumulate_grad(unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate_grad(unbroadcast(out.grad, other.shape))

            out._backward = _backward
            return out
        return _detached(self.data + other.data, "add", (self, other))

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_coerce_operand(other, self.data.dtype))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _coerce_operand(other, self.data.dtype) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _coerce_operand(other, self.data.dtype)
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):
            out = Tensor(
                self.data * other.data,
                requires_grad=True,
                _prev=(self, other),
                _op="mul",
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                if self.requires_grad:
                    self._accumulate_grad(unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate_grad(unbroadcast(out.grad * self.data, other.shape))

            out._backward = _backward
            return out
        return _detached(self.data * other.data, "mul", (self, other))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _coerce_operand(other, self.data.dtype)
        return self * other ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _coerce_operand(other, self.data.dtype) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(
                self.data ** exponent,
                requires_grad=True,
                _prev=(self,),
                _op="pow",
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
            return out
        return _detached(self.data ** exponent, "pow", (self,), {"exponent": float(exponent)})

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product following numpy ``@`` semantics (with batching)."""
        other = ensure_tensor(other)
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):
            out = Tensor(
                self.data @ other.data,
                requires_grad=True,
                _prev=(self, other),
                _op="matmul",
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                grad = out.grad
                a, b = self.data, other.data
                if self.requires_grad:
                    if b.ndim == 1:
                        grad_a = np.expand_dims(grad, -1) * b
                    elif a.ndim == 1:
                        grad_a = grad @ np.swapaxes(b, -1, -2)
                    else:
                        grad_a = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate_grad(unbroadcast(grad_a, self.shape))
                if other.requires_grad:
                    if a.ndim == 1:
                        grad_b = np.expand_dims(a, -1) * grad
                    elif b.ndim == 1:
                        grad_b = np.swapaxes(a, -1, -2) @ grad if grad.ndim > 1 else a.T @ grad
                    else:
                        grad_b = np.swapaxes(a, -1, -2) @ grad
                    other._accumulate_grad(unbroadcast(grad_b, other.shape))

            out._backward = _backward
            return out
        return _detached(self.data @ other.data, "matmul", (self, other))

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="exp")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * out_data)

            out._backward = _backward
            return out
        return _detached(out_data, "exp", (self,))

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="log")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad / self.data)

            out._backward = _backward
            return out
        return _detached(out_data, "log", (self,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="tanh")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * (1.0 - out_data ** 2))

            out._backward = _backward
            return out
        return _detached(out_data, "tanh", (self,))

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="sigmoid")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * out_data * (1.0 - out_data))

            out._backward = _backward
            return out
        return _detached(out_data, "sigmoid", (self,))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="relu")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * mask)

            out._backward = _backward
            return out
        return _detached(out_data, "relu", (self,))

    def gelu(self) -> "Tensor":
        """Gaussian Error Linear Unit (tanh approximation, as used by BERT)."""
        x = self.data
        # float(): an np.float64 scalar is a *strong* type under NEP 50 and
        # would promote a float32 forward; a python float stays weak.
        c = float(np.sqrt(2.0 / np.pi))
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="gelu")

            def _backward() -> None:
                if out.grad is None:
                    return
                sech2 = 1.0 - tanh_inner ** 2
                d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
                grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate_grad(out.grad * grad)

            out._backward = _backward
            return out
        return _detached(out_data, "gelu", (self,))

    def abs(self) -> "Tensor":
        if _grad_mode.enabled and self.requires_grad:
            sign = np.sign(self.data)
            out = Tensor(np.abs(self.data), requires_grad=True, _prev=(self,), _op="abs")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * sign)

            out._backward = _backward
            return out
        return _detached(np.abs(self.data), "abs", (self,))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]`` (gradient is passed only inside the range)."""
        clipped = np.clip(self.data, low, high)
        if _grad_mode.enabled and self.requires_grad:
            mask = (self.data >= low) & (self.data <= high)
            out = Tensor(clipped, requires_grad=True, _prev=(self,), _op="clip")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad * mask)

            out._backward = _backward
            return out
        return _detached(clipped, "clip", (self,), {"low": low, "high": high})

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="sum")

            def _backward() -> None:
                if out.grad is None:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else tuple(axis)
                    axes = tuple(a % self.data.ndim for a in axes)
                    for a in sorted(axes):
                        grad = np.expand_dims(grad, a)
                self._accumulate_grad(np.broadcast_to(grad, self.shape).copy())

            out._backward = _backward
            return out
        return _detached(out_data, "sum", (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="max")
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
            else:
                mask = (self.data == self.data.max(axis=axis, keepdims=True)).astype(self.data.dtype)
            mask = mask / np.maximum(
                mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0
            )

            def _backward() -> None:
                if out.grad is None:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate_grad(mask * grad)

            out._backward = _backward
            return out
        return _detached(out_data, "max", (self,), {"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="reshape")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad.reshape(original_shape))

            out._backward = _backward
            return out
        # Record the *resolved* shape (any -1 already expanded by numpy).
        return _detached(out_data, "reshape", (self,), {"shape": out_data.shape})

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="transpose")
            inverse = np.argsort(axes)

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad.transpose(inverse))

            out._backward = _backward
            return out
        return _detached(out_data, "transpose", (self,), {"axes": tuple(axes)})

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="getitem")

            def _backward() -> None:
                if out.grad is None:
                    return
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate_grad(grad)

            out._backward = _backward
            return out
        return _detached(out_data, "getitem", (self,), {"index": index})

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="expand_dims")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(np.squeeze(out.grad, axis=axis))

            out._backward = _backward
            return out
        return _detached(out_data, "expand_dims", (self,), {"axis": axis})

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        original_shape = self.shape
        out_data = np.squeeze(self.data, axis=axis) if axis is not None else np.squeeze(self.data)
        if _grad_mode.enabled and self.requires_grad:
            out = Tensor(out_data, requires_grad=True, _prev=(self,), _op="squeeze")

            def _backward() -> None:
                if out.grad is None:
                    return
                self._accumulate_grad(out.grad.reshape(original_shape))

            out._backward = _backward
            return out
        return _detached(out_data, "squeeze", (self,), {"axis": axis})

    # ------------------------------------------------------------------
    # Comparison helpers (return plain numpy arrays, no gradient)
    # ------------------------------------------------------------------
    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


# ----------------------------------------------------------------------
# Free functions that combine several tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate a sequence of tensors along ``axis`` with gradient support."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if _grad_mode.enabled and any(t.requires_grad for t in tensors):
        out = Tensor(data, requires_grad=True, _prev=tuple(tensors), _op="concatenate")
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward() -> None:
            if out.grad is None:
                return
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if not tensor.requires_grad:
                    continue
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate_grad(out.grad[tuple(slicer)])

        out._backward = _backward
        return out
    return _detached(data, "concatenate", tuple(tensors), {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    if _grad_mode.enabled and any(t.requires_grad for t in tensors):
        out = Tensor(data, requires_grad=True, _prev=tuple(tensors), _op="stack")

        def _backward() -> None:
            if out.grad is None:
                return
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, grad in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor._accumulate_grad(np.squeeze(grad, axis=axis))

        out._backward = _backward
        return out
    return _detached(data, "stack", tuple(tensors), {"axis": axis})


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise selection: ``condition ? a : b`` with gradient support."""
    if isinstance(a, Tensor):
        a, b = a, _coerce_operand(b, a.data.dtype)
    elif isinstance(b, Tensor):
        a = _coerce_operand(a, b.data.dtype)
    else:
        a, b = ensure_tensor(a), ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)
    if _grad_mode.enabled and (a.requires_grad or b.requires_grad):
        out = Tensor(out_data, requires_grad=True, _prev=(a, b), _op="where")

        def _backward() -> None:
            if out.grad is None:
                return
            if a.requires_grad:
                a._accumulate_grad(unbroadcast(out.grad * cond, a.shape))
            if b.requires_grad:
                b._accumulate_grad(unbroadcast(out.grad * (~cond), b.shape))

        out._backward = _backward
        return out
    return _detached(out_data, "where", (a, b), {"condition": cond})


def no_grad_tensor(data: ArrayLike) -> Tensor:
    """Construct a tensor that never requires gradient (convenience helper)."""
    return Tensor(data, requires_grad=False)
