"""Minimal neural-network framework (autograd, layers, losses, optimizers).

This package substitutes for PyTorch in the offline reproduction environment.
See ``DESIGN.md`` for the substitution rationale.
"""

from . import functional
from .attention import FeedForward, MultiHeadSelfAttention, TransformerBlock, TransformerEncoder
from .conv import Conv1d, GlobalAveragePool1d, GlobalMaxPool1d
from .layers import (
    Dropout,
    Embedding,
    Flatten,
    GELUActivation,
    LayerNorm,
    Linear,
    PositionalEmbedding,
    ReLUActivation,
    TanhActivation,
)
from .jit import CompiledModule, compile_module
from .losses import CrossEntropyLoss, MSELoss, NTXentLoss, WeightedReconstructionLoss
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, CosineAnnealingLR, LRScheduler, StepLR, WarmupLR, clip_grad_norm
from .recurrent import GRU, GRUCell
from .serialization import (
    load_module,
    load_state_dict,
    save_module,
    save_state_dict,
    state_dict_num_bytes,
)
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    enable_grad,
    ensure_tensor,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    set_grad_enabled,
    stack,
    where,
)
from .utils import (
    check_gradient,
    count_parameters,
    gradients_to_vector,
    modules_allclose,
    numerical_gradient,
    parameters_to_vector,
    vector_to_gradients,
    vector_to_parameters,
)

__all__ = [
    "functional",
    "Tensor",
    "concatenate",
    "ensure_tensor",
    "stack",
    "where",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "CompiledModule",
    "compile_module",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "PositionalEmbedding",
    "Flatten",
    "GELUActivation",
    "ReLUActivation",
    "TanhActivation",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "TransformerEncoder",
    "GRU",
    "GRUCell",
    "Conv1d",
    "GlobalMaxPool1d",
    "GlobalAveragePool1d",
    "MSELoss",
    "CrossEntropyLoss",
    "NTXentLoss",
    "WeightedReconstructionLoss",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "save_state_dict",
    "load_state_dict",
    "state_dict_num_bytes",
    "count_parameters",
    "parameter_summary",
    "modules_allclose",
    "numerical_gradient",
    "check_gradient",
    "parameters_to_vector",
    "vector_to_parameters",
    "gradients_to_vector",
    "vector_to_gradients",
]

from .utils import parameter_summary  # noqa: E402  (re-export after __all__)
