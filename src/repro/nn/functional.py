"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These mirror the subset of ``torch.nn.functional`` that the Saga models and
baselines need: softmax, log-softmax, layer normalisation, dropout, one-hot
encoding, and the masked reconstruction helpers used during pre-training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import DTypeLike, Tensor, _trace_state, ensure_tensor, get_default_dtype


def _softmax_impl(x: Tensor, axis: int) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Under a jit trace this records as one fused ``softmax`` tape node: the
    eager implementation subtracts the *concrete* per-row maximum (a plain
    array, invisible to the tracer), which would otherwise be baked into the
    tape as a constant from the trace batch.
    """
    x = ensure_tensor(x)
    session = _trace_state.session
    if session is None:
        return _softmax_impl(x, axis)
    with session.suspended():
        out = _softmax_impl(x, axis)
    session.record(out, "softmax", (x,), {"axis": axis})
    return out


def _log_softmax_impl(x: Tensor, axis: int) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` (fused under a jit trace,
    for the same shifted-maximum reason as :func:`softmax`)."""
    x = ensure_tensor(x)
    session = _trace_state.session
    if session is None:
        return _log_softmax_impl(x, axis)
    with session.suspended():
        out = _log_softmax_impl(x, axis)
    session.record(out, "log_softmax", (x,), {"axis": axis})
    return out


def relu(x: Tensor) -> Tensor:
    return ensure_tensor(x).relu()


def gelu(x: Tensor) -> Tensor:
    return ensure_tensor(x).gelu()


def sigmoid(x: Tensor) -> Tensor:
    return ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return ensure_tensor(x).tanh()


def _layer_norm_impl(x: Tensor, weight: Tensor, bias: Tensor, eps: float) -> Tensor:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalised = (x - mean) * ((var + eps) ** -0.5)
    return normalised * weight + bias


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension.

    Under a jit trace this records as one fused ``layer_norm`` tape node
    instead of the ~10 primitive ops of the eager decomposition, so the
    compiled executor can normalise in two scratch buffers with no
    intermediate allocations.
    """
    session = _trace_state.session
    if session is None:
        return _layer_norm_impl(x, weight, bias, eps)
    with session.suspended():
        out = _layer_norm_impl(x, weight, bias, eps)
    session.record(out, "layer_norm", (x, weight, bias), {"eps": eps})
    return out


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: active only while training.

    A training-mode call *must* pass a generator: silently falling back to an
    unseeded ``np.random.default_rng()`` would make every training run draw
    different masks regardless of the experiment seed, breaking run-to-run
    reproducibility without any visible failure.  (Eval-mode calls never draw,
    so they may omit ``rng``.)
    """
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError(f"dropout probability must be < 1, got {p}")
    if rng is None:
        raise ValueError(
            "dropout in training mode requires an explicit numpy Generator; "
            "an unseeded fallback would silently break reproducibility"
        )
    mask = ((rng.random(x.shape) >= p) / (1.0 - p)).astype(x.dtype, copy=False)
    return x * Tensor(mask)


def one_hot(
    labels: np.ndarray, num_classes: int, dtype: Optional[DTypeLike] = None
) -> np.ndarray:
    """Encode integer labels ``(N,)`` as a one-hot matrix ``(N, num_classes)``.

    The encoding is built in ``dtype`` (default: the policy dtype from
    :func:`~repro.nn.tensor.get_default_dtype`) so that losses over float32
    logits are not silently promoted back to float64.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for the requested number of classes")
    encoded = np.zeros(
        (labels.shape[0], num_classes),
        dtype=get_default_dtype() if dtype is None else np.dtype(dtype),
    )
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def masked_mse(prediction: Tensor, target: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
    """Mean squared error, optionally restricted to the masked positions.

    The paper's reconstruction loss (Section V-A) averages the squared error
    over the window; when ``mask`` is provided we average only over the
    positions that were actually masked, which is the behaviour of the
    LIMU-BERT reference implementation Saga builds on.
    """
    prediction, target = ensure_tensor(prediction), ensure_tensor(target)
    diff = prediction - target
    squared = diff * diff
    if mask is None:
        return squared.mean()
    mask = np.asarray(mask, dtype=prediction.dtype)
    masked_count = float(mask.sum())
    if masked_count == 0:
        return squared.mean() * 0.0
    return (squared * Tensor(mask)).sum() * (1.0 / masked_count)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis``."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps) ** 0.5
    norm_b = ((b * b).sum(axis=axis) + eps) ** 0.5
    return dot / (norm_a * norm_b)
