"""Recurrent layers: GRU cell and multi-step GRU.

The paper fine-tunes the pre-trained backbone with a GRU classifier head
(Section VII-A-1: "we opt for a GRU classifier, as it has demonstrated
superior performance in classification tasks according to [LIMU-BERT]").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from ..rng import make_rng

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate, ensure_tensor


class GRUCell(Module):
    """Single-step gated recurrent unit.

    Gates follow the standard formulation::

        r = sigmoid(x W_ir + h W_hr + b_r)
        z = sigmoid(x W_iz + h W_hz + b_z)
        n = tanh(x W_in + r * (h W_hn) + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Input-to-hidden and hidden-to-hidden weights for the three gates,
        # packed as single matrices for efficiency: columns are [r | z | n].
        self.weight_ih = Parameter(init.xavier_uniform((input_dim, 3 * hidden_dim), generator))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_dim, 3 * hidden_dim), generator))
        self.bias_ih = Parameter(init.zeros((3 * hidden_dim,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        x, hidden = ensure_tensor(x), ensure_tensor(hidden)
        gates_x = x.matmul(self.weight_ih) + self.bias_ih
        gates_h = hidden.matmul(self.weight_hh) + self.bias_hh
        h = self.hidden_dim
        reset = (gates_x[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_x[:, h:2 * h] + gates_h[:, h:2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h:] + reset * gates_h[:, 2 * h:]).tanh()
        # The scalar path (__rsub__) avoids allocating a ones-array per
        # timestep per layer — this runs in the classifier's inner loop.
        return (1.0 - update) * candidate + update * hidden


class GRU(Module):
    """Multi-step (optionally multi-layer) GRU over sequences ``(batch, length, dim)``."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("GRU requires at least one layer")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        for layer_index in range(num_layers):
            cell_input = input_dim if layer_index == 0 else hidden_dim
            setattr(self, f"cell{layer_index}", GRUCell(cell_input, hidden_dim, rng=rng))

    def _cell(self, layer_index: int) -> GRUCell:
        return getattr(self, f"cell{layer_index}")

    def forward(
        self,
        x: Tensor,
        initial_hidden: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Run the GRU over a full sequence.

        Parameters
        ----------
        x:
            Input of shape ``(batch, length, input_dim)``.
        initial_hidden:
            Optional initial hidden state of shape ``(num_layers, batch, hidden_dim)``.

        Returns
        -------
        outputs:
            Hidden states of the top layer at every step, ``(batch, length, hidden_dim)``.
        final_hidden:
            Final hidden state of the top layer, ``(batch, hidden_dim)``.
        """
        x = ensure_tensor(x)
        batch, length, _ = x.shape
        hiddens = []
        for layer_index in range(self.num_layers):
            if initial_hidden is not None:
                hiddens.append(initial_hidden[layer_index])
            else:
                hiddens.append(Tensor(np.zeros((batch, self.hidden_dim), dtype=x.dtype)))

        layer_input_steps = [x[:, t, :] for t in range(length)]
        for layer_index in range(self.num_layers):
            cell = self._cell(layer_index)
            hidden = hiddens[layer_index]
            outputs = []
            for step_input in layer_input_steps:
                hidden = cell(step_input, hidden)
                outputs.append(hidden)
            hiddens[layer_index] = hidden
            layer_input_steps = outputs

        stacked = concatenate([h.expand_dims(1) for h in layer_input_steps], axis=1)
        return stacked, hiddens[-1]
