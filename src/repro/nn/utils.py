"""Utilities for inspecting and comparing modules.

Besides the introspection helpers this module provides the flat-vector
parameter/gradient codec (:func:`parameters_to_vector` and friends) that the
data-parallel subsystem (:mod:`repro.parallel`) uses to ship whole models and
gradients through shared-memory all-reduce buffers as single contiguous
``float64`` arrays.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from .module import Module, Parameter
from .tensor import Tensor


def count_parameters(module: Module) -> int:
    """Number of scalar trainable parameters in ``module``."""
    return module.num_parameters()


def parameter_summary(module: Module) -> Dict[str, Tuple[int, ...]]:
    """Mapping ``parameter name -> shape`` for every parameter in ``module``."""
    return {name: tuple(param.shape) for name, param in module.named_parameters()}


def modules_allclose(a: Module, b: Module, atol: float = 1e-8) -> bool:
    """True if two modules have identical parameter names and near-equal values."""
    state_a, state_b = a.state_dict(), b.state_dict()
    if set(state_a) != set(state_b):
        return False
    return all(np.allclose(state_a[name], state_b[name], atol=atol) for name in state_a)


def _materialised(parameters: Iterable[Parameter]) -> List[Parameter]:
    params = list(parameters)
    if not params:
        raise ValueError("expected at least one parameter")
    return params


def _check_vector(vector: np.ndarray, params: List[Parameter], what: str) -> np.ndarray:
    vector = np.asarray(vector)
    total = sum(p.data.size for p in params)
    if vector.ndim != 1 or vector.size != total:
        raise ValueError(
            f"{what} vector has shape {vector.shape}, expected a flat vector "
            f"of {total} elements for {len(params)} parameters"
        )
    return vector


def parameters_to_vector(parameters: Iterable[Parameter]) -> np.ndarray:
    """Concatenate every parameter's values into one flat ``float64`` vector.

    The parameter order is the iteration order of ``parameters`` (for a
    module, ``module.parameters()``), so the inverse
    :func:`vector_to_parameters` must be called with the same ordering.
    """
    params = _materialised(parameters)
    return np.concatenate([np.asarray(p.data, dtype=np.float64).reshape(-1) for p in params])


def vector_to_parameters(vector: np.ndarray, parameters: Iterable[Parameter]) -> None:
    """Write a flat vector produced by :func:`parameters_to_vector` back in-place.

    Each slice is reshaped to the parameter's shape and cast back to the
    parameter's dtype, so dtype and shape are preserved exactly.
    """
    params = _materialised(parameters)
    vector = _check_vector(vector, params, "parameter")
    offset = 0
    for param in params:
        size = param.data.size
        chunk = vector[offset:offset + size]
        param.data = chunk.reshape(param.data.shape).astype(param.data.dtype, copy=True)
        offset += size


def gradients_to_vector(parameters: Iterable[Parameter]) -> np.ndarray:
    """Concatenate every parameter's gradient into one flat ``float64`` vector.

    Parameters whose ``grad`` is ``None`` (e.g. never touched by the loss)
    contribute zeros, so the result always has the same length as
    :func:`parameters_to_vector` on the same parameter list.
    """
    params = _materialised(parameters)
    chunks = []
    for param in params:
        if param.grad is None:
            chunks.append(np.zeros(param.data.size, dtype=np.float64))
        else:
            chunks.append(np.asarray(param.grad, dtype=np.float64).reshape(-1))
    return np.concatenate(chunks)


def vector_to_gradients(vector: np.ndarray, parameters: Iterable[Parameter]) -> None:
    """Scatter a flat gradient vector into each parameter's ``grad`` field.

    This overwrites (not accumulates into) the existing gradients; it is the
    write-back half of a gradient all-reduce.
    """
    params = _materialised(parameters)
    vector = _check_vector(vector, params, "gradient")
    offset = 0
    for param in params:
        size = param.data.size
        chunk = vector[offset:offset + size]
        param.grad = chunk.reshape(param.data.shape).astype(np.float64, copy=True)
        offset += size


def numerical_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``x``.

    Used by the test-suite to verify the autograd engine against finite
    differences.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + eps
        plus = func(x)
        flat_x[index] = original - eps
        minus = func(x)
        flat_x[index] = original
        flat_grad[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(
    func: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare the autograd gradient of ``func`` with finite differences."""
    tensor = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    output = func(tensor)
    output.backward()
    analytic = tensor.grad

    def scalar_func(values: np.ndarray) -> float:
        return float(func(Tensor(values)).data)

    numeric = numerical_gradient(scalar_func, np.asarray(x, dtype=np.float64), eps=eps)
    return np.allclose(analytic, numeric, atol=atol, rtol=rtol)
