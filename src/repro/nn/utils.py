"""Utilities for inspecting and comparing modules."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .module import Module
from .tensor import Tensor


def count_parameters(module: Module) -> int:
    """Number of scalar trainable parameters in ``module``."""
    return module.num_parameters()


def parameter_summary(module: Module) -> Dict[str, Tuple[int, ...]]:
    """Mapping ``parameter name -> shape`` for every parameter in ``module``."""
    return {name: tuple(param.shape) for name, param in module.named_parameters()}


def modules_allclose(a: Module, b: Module, atol: float = 1e-8) -> bool:
    """True if two modules have identical parameter names and near-equal values."""
    state_a, state_b = a.state_dict(), b.state_dict()
    if set(state_a) != set(state_b):
        return False
    return all(np.allclose(state_a[name], state_b[name], atol=atol) for name in state_a)


def numerical_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``x``.

    Used by the test-suite to verify the autograd engine against finite
    differences.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + eps
        plus = func(x)
        flat_x[index] = original - eps
        minus = func(x)
        flat_x[index] = original
        flat_grad[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(
    func: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare the autograd gradient of ``func`` with finite differences."""
    tensor = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    output = func(tensor)
    output.backward()
    analytic = tensor.grad

    def scalar_func(values: np.ndarray) -> float:
        return float(func(Tensor(values)).data)

    numeric = numerical_gradient(scalar_func, np.asarray(x, dtype=np.float64), eps=eps)
    return np.allclose(analytic, numeric, atol=atol, rtol=rtol)
