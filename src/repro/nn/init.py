"""Weight initialisation schemes for :mod:`repro.nn` modules.

Every initialiser constructs its array in the precision policy's default
dtype (see :func:`repro.nn.tensor.get_default_dtype`), or an explicit
``dtype`` override, so a model built under ``set_default_dtype("float32")``
is float32 end to end.  The random *draws* always happen in float64 (numpy
generators have no float32 sampling path for these distributions) and are
cast afterwards, so a float32 model is bit-identical to the cast of the
float64 model built from the same seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import DTypeLike, get_default_dtype


def _resolve(dtype: Optional[DTypeLike]) -> np.dtype:
    return get_default_dtype() if dtype is None else np.dtype(dtype)


def xavier_uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    gain: float = 1.0,
    dtype: Optional[DTypeLike] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Fan-in and fan-out are taken from the last two dimensions, matching the
    PyTorch convention for linear layers.
    """
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(_resolve(dtype), copy=False)


def xavier_normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    gain: float = 1.0,
    dtype: Optional[DTypeLike] = None,
) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(_resolve(dtype), copy=False)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    dtype: Optional[DTypeLike] = None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation (fan-in mode, ReLU gain)."""
    fan_in = shape[0] if len(shape) < 2 else shape[-2]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(_resolve(dtype), copy=False)


def normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    std: float = 0.02,
    dtype: Optional[DTypeLike] = None,
) -> np.ndarray:
    """Small-variance normal initialisation (BERT-style)."""
    return rng.normal(0.0, std, size=shape).astype(_resolve(dtype), copy=False)


def zeros(shape: Tuple[int, ...], dtype: Optional[DTypeLike] = None) -> np.ndarray:
    """All-zero initialisation (biases, layer-norm offsets)."""
    return np.zeros(shape, dtype=_resolve(dtype))


def ones(shape: Tuple[int, ...], dtype: Optional[DTypeLike] = None) -> np.ndarray:
    """All-one initialisation (layer-norm scales)."""
    return np.ones(shape, dtype=_resolve(dtype))
