"""Weight initialisation schemes for :mod:`repro.nn` modules."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Fan-in and fan-out are taken from the last two dimensions, matching the
    PyTorch convention for linear layers.
    """
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (fan-in mode, ReLU gain)."""
    fan_in = shape[0] if len(shape) < 2 else shape[-2]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-variance normal initialisation (BERT-style)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, layer-norm offsets)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (layer-norm scales)."""
    return np.ones(shape, dtype=np.float64)
