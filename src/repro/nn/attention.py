"""Multi-head self-attention and transformer encoder blocks.

The Saga backbone is the LIMU-BERT encoder: 4 lightweight transformer blocks
with hidden dimension 72 (Section VII-A-1 of the paper).  The blocks here are
standard post-norm transformer encoder blocks (attention -> add & norm ->
feed-forward -> add & norm), matching the BERT reference the paper builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor, ensure_tensor


def mask_to_bias(attention_mask: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Turn a ``(batch, length)`` validity mask into an additive score bias.

    Valid positions (1) map to 0, padding positions (0) to ``-1e9``, shaped
    ``(batch, 1, 1, length)`` so it broadcasts over heads and query positions.
    Computing this once per *forward* instead of once per encoder block is the
    point: the bias only depends on the mask and the compute dtype, never on
    the layer.
    """
    mask = np.asarray(attention_mask, dtype=dtype)
    return (1.0 - mask)[:, None, None, :] * -1e9


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with multiple heads."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError(
                f"hidden_dim ({hidden_dim}) must be divisible by num_heads ({num_heads})"
            )
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.query = Linear(hidden_dim, hidden_dim, rng=rng)
        self.key = Linear(hidden_dim, hidden_dim, rng=rng)
        self.value = Linear(hidden_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, hidden_dim, rng=rng)
        self.attention_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        """Reshape ``(batch, length, hidden)`` to ``(batch, heads, length, head_dim)``."""
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        """Reshape ``(batch, heads, length, head_dim)`` back to ``(batch, length, hidden)``."""
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.hidden_dim)

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        attention_bias: Optional[np.ndarray] = None,
    ) -> Tensor:
        x = ensure_tensor(x)
        queries = self._split_heads(self.query(x))
        keys = self._split_heads(self.key(x))
        values = self._split_heads(self.value(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = queries.matmul(keys.transpose(0, 1, 3, 2)) * scale
        if attention_bias is None and attention_mask is not None:
            # attention_mask: (batch, length) with 1 for valid and 0 for padding.
            # Callers that own a block stack (TransformerEncoder) convert the
            # mask once and pass attention_bias down instead.
            attention_bias = mask_to_bias(attention_mask, x.dtype)
        if attention_bias is not None:
            scores = scores + Tensor(attention_bias)
        weights = F.softmax(scores, axis=-1)
        weights = self.attention_dropout(weights)
        context = weights.matmul(values)
        return self.output(self._merge_heads(context))


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(
        self,
        hidden_dim: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_in = Linear(hidden_dim, intermediate_dim, rng=rng)
        self.dense_out = Linear(intermediate_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.dense_out(self.dense_in(x).gelu()))


class TransformerBlock(Module):
    """Post-norm transformer encoder block (attention + feed-forward)."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(hidden_dim, num_heads, dropout=dropout, rng=rng)
        self.attention_norm = LayerNorm(hidden_dim)
        self.feed_forward = FeedForward(hidden_dim, intermediate_dim, dropout=dropout, rng=rng)
        self.output_norm = LayerNorm(hidden_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        attention_bias: Optional[np.ndarray] = None,
    ) -> Tensor:
        attended = self.attention(
            x, attention_mask=attention_mask, attention_bias=attention_bias
        )
        x = self.attention_norm(x + self.dropout(attended))
        x = self.output_norm(x + self.feed_forward(x))
        return x


class TransformerEncoder(Module):
    """Stack of :class:`TransformerBlock` modules."""

    def __init__(
        self,
        num_layers: int,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("TransformerEncoder requires at least one layer")
        self.blocks = ModuleList(
            [
                TransformerBlock(hidden_dim, num_heads, intermediate_dim, dropout=dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )
        # (mask object, dtype) -> bias cache.  Streaming callers hand the same
        # mask array to every forward; keying on identity + dtype lets them
        # skip even the once-per-forward conversion.  The cached mask is held
        # by reference, so an ``id`` can never be recycled while cached —
        # but a caller mutating the mask array *in place* must pass a fresh
        # array instead (identity keying cannot see value changes).
        self._bias_cache: Optional[tuple] = None

    def _attention_bias(self, attention_mask: np.ndarray, dtype: np.dtype) -> np.ndarray:
        cached = self._bias_cache
        if cached is not None and cached[0] is attention_mask and cached[1] == dtype:
            return cached[2]
        bias = mask_to_bias(attention_mask, dtype)
        self._bias_cache = (attention_mask, dtype, bias)
        return bias

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        x = ensure_tensor(x)
        attention_bias = None
        if attention_mask is not None:
            # Convert the mask exactly once per forward (cached across
            # forwards on mask identity), not once per block.
            attention_bias = self._attention_bias(attention_mask, x.dtype)
        for block in self.blocks:
            x = block(x, attention_bias=attention_bias)
        return x
