"""Multi-head self-attention and transformer encoder blocks.

The Saga backbone is the LIMU-BERT encoder: 4 lightweight transformer blocks
with hidden dimension 72 (Section VII-A-1 of the paper).  The blocks here are
standard post-norm transformer encoder blocks (attention -> add & norm ->
feed-forward -> add & norm), matching the BERT reference the paper builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor, ensure_tensor


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with multiple heads."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError(
                f"hidden_dim ({hidden_dim}) must be divisible by num_heads ({num_heads})"
            )
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.query = Linear(hidden_dim, hidden_dim, rng=rng)
        self.key = Linear(hidden_dim, hidden_dim, rng=rng)
        self.value = Linear(hidden_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, hidden_dim, rng=rng)
        self.attention_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        """Reshape ``(batch, length, hidden)`` to ``(batch, heads, length, head_dim)``."""
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        """Reshape ``(batch, heads, length, head_dim)`` back to ``(batch, length, hidden)``."""
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.hidden_dim)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        x = ensure_tensor(x)
        queries = self._split_heads(self.query(x))
        keys = self._split_heads(self.key(x))
        values = self._split_heads(self.value(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = queries.matmul(keys.transpose(0, 1, 3, 2)) * scale
        if attention_mask is not None:
            # attention_mask: (batch, length) with 1 for valid and 0 for padding.
            mask = np.asarray(attention_mask, dtype=scores.dtype)
            bias = (1.0 - mask)[:, None, None, :] * -1e9
            scores = scores + Tensor(bias)
        weights = F.softmax(scores, axis=-1)
        weights = self.attention_dropout(weights)
        context = weights.matmul(values)
        return self.output(self._merge_heads(context))


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(
        self,
        hidden_dim: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dense_in = Linear(hidden_dim, intermediate_dim, rng=rng)
        self.dense_out = Linear(intermediate_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.dense_out(self.dense_in(x).gelu()))


class TransformerBlock(Module):
    """Post-norm transformer encoder block (attention + feed-forward)."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(hidden_dim, num_heads, dropout=dropout, rng=rng)
        self.attention_norm = LayerNorm(hidden_dim)
        self.feed_forward = FeedForward(hidden_dim, intermediate_dim, dropout=dropout, rng=rng)
        self.output_norm = LayerNorm(hidden_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask)
        x = self.attention_norm(x + self.dropout(attended))
        x = self.output_norm(x + self.feed_forward(x))
        return x


class TransformerEncoder(Module):
    """Stack of :class:`TransformerBlock` modules."""

    def __init__(
        self,
        num_layers: int,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("TransformerEncoder requires at least one layer")
        self.blocks = ModuleList(
            [
                TransformerBlock(hidden_dim, num_heads, intermediate_dim, dropout=dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        for block in self.blocks:
            x = block(x, attention_mask=attention_mask)
        return x
