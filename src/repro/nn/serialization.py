"""Model checkpoint serialization.

State dicts are flat ``{name: ndarray}`` mappings saved as ``.npz`` archives,
so checkpoints are portable and need no pickling of custom classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .module import Module
from .tensor import DTypeLike

PathLike = Union[str, Path]

_METADATA_KEY = "__metadata_json__"
DTYPE_METADATA_KEY = "dtype"


def checkpoint_dtype(state: Dict[str, np.ndarray]) -> Optional[str]:
    """The uniform floating dtype of ``state``, or ``None`` when mixed/empty."""
    dtypes = {str(array.dtype) for array in state.values()}
    return dtypes.pop() if len(dtypes) == 1 else None


def save_state_dict(
    state: Dict[str, np.ndarray],
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Save a state dict (plus optional JSON-serialisable metadata) to ``path``.

    The checkpoint's parameter dtype is recorded under the ``"dtype"``
    metadata key (when the state is dtype-uniform), so registries can report
    a model's stored precision without decompressing its weights.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    stored_dtype = checkpoint_dtype(state)
    if metadata is not None or stored_dtype is not None:
        metadata = dict(metadata) if metadata is not None else {}
        if stored_dtype is not None:
            metadata.setdefault(DTYPE_METADATA_KEY, stored_dtype)
        payload[_METADATA_KEY] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **payload)
    # np.savez appends ".npz" when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(
    path: PathLike, dtype: Optional[DTypeLike] = None
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load a state dict and its metadata from an ``.npz`` checkpoint.

    ``dtype`` selects the precision of the returned arrays: ``None`` keeps
    the stored precision, anything else casts on load — the cheap way to turn
    a float64 training checkpoint into a float32 serving artefact.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    requested = np.dtype(dtype) if dtype is not None else None
    with np.load(path) as archive:
        state = {
            name: (
                archive[name].astype(requested, copy=False)
                if requested is not None
                else archive[name]
            )
            for name in archive.files
            if name != _METADATA_KEY
        }
        metadata: Dict[str, Any] = {}
        if _METADATA_KEY in archive.files:
            metadata = json.loads(bytes(archive[_METADATA_KEY].tobytes()).decode("utf-8"))
    return state, metadata


def load_metadata(path: PathLike) -> Dict[str, Any]:
    """Read only the JSON metadata from a checkpoint, without touching weights.

    ``np.load`` is lazy, so extracting the single metadata entry avoids
    decompressing the (much larger) parameter arrays — registries scan many
    checkpoints for their metadata.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        if _METADATA_KEY not in archive.files:
            return {}
        return json.loads(bytes(archive[_METADATA_KEY].tobytes()).decode("utf-8"))


def save_module(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Save a module's parameters to ``path``."""
    return save_state_dict(module.state_dict(), path, metadata=metadata)


def load_module(
    module: Module,
    path: PathLike,
    strict: bool = True,
    dtype: Optional[DTypeLike] = None,
) -> Dict[str, Any]:
    """Load parameters into ``module`` from ``path``; returns the stored metadata.

    When ``dtype`` is given, the module is cast to that precision *before*
    loading (``Module.load_state_dict`` conforms incoming arrays to the
    parameter dtype), so the loaded model computes in the requested precision
    regardless of the precision it was trained in.
    """
    if dtype is not None:
        module.to(dtype)
    state, metadata = load_state_dict(path, dtype=dtype)
    module.load_state_dict(state, strict=strict)
    return metadata


def state_dict_num_bytes(state: Dict[str, np.ndarray], dtype_bytes: int = 4) -> int:
    """Size of a state dict on disk assuming ``dtype_bytes`` per scalar.

    The paper reports model disk sizes for float32 checkpoints (Table IV), so
    the default is 4 bytes per parameter regardless of the precision the
    in-memory arrays happen to use.
    """
    return sum(array.size * dtype_bytes for array in state.values())
