"""Model checkpoint serialization.

State dicts are flat ``{name: ndarray}`` mappings saved as ``.npz`` archives,
so checkpoints are portable and need no pickling of custom classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]

_METADATA_KEY = "__metadata_json__"


def save_state_dict(
    state: Dict[str, np.ndarray],
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Save a state dict (plus optional JSON-serialisable metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if metadata is not None:
        payload[_METADATA_KEY] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **payload)
    # np.savez appends ".npz" when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: PathLike) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load a state dict and its metadata from an ``.npz`` checkpoint."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files if name != _METADATA_KEY}
        metadata: Dict[str, Any] = {}
        if _METADATA_KEY in archive.files:
            metadata = json.loads(bytes(archive[_METADATA_KEY].tobytes()).decode("utf-8"))
    return state, metadata


def load_metadata(path: PathLike) -> Dict[str, Any]:
    """Read only the JSON metadata from a checkpoint, without touching weights.

    ``np.load`` is lazy, so extracting the single metadata entry avoids
    decompressing the (much larger) parameter arrays — registries scan many
    checkpoints for their metadata.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        if _METADATA_KEY not in archive.files:
            return {}
        return json.loads(bytes(archive[_METADATA_KEY].tobytes()).decode("utf-8"))


def save_module(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Save a module's parameters to ``path``."""
    return save_state_dict(module.state_dict(), path, metadata=metadata)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Dict[str, Any]:
    """Load parameters into ``module`` from ``path``; returns the stored metadata."""
    state, metadata = load_state_dict(path)
    module.load_state_dict(state, strict=strict)
    return metadata


def state_dict_num_bytes(state: Dict[str, np.ndarray], dtype_bytes: int = 4) -> int:
    """Size of a state dict on disk assuming ``dtype_bytes`` per scalar.

    The paper reports model disk sizes for float32 checkpoints (Table IV), so
    the default is 4 bytes per parameter even though the in-memory arrays here
    are float64.
    """
    return sum(array.size * dtype_bytes for array in state.values())
