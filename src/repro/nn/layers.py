"""Core layers: Linear, LayerNorm, Dropout, Embedding, PositionalEmbedding.

These are the building blocks of the LIMU-BERT-style backbone used by Saga
(Section V of the paper: 4 lightweight transformer blocks, hidden dim 72).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from ..rng import make_rng
from . import init
from .module import Module, Parameter
from .tensor import Tensor, ensure_tensor


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        generator = rng if rng is not None else make_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), generator))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable scale/offset."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(ensure_tensor(x), self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode.

    The generator is *not* defaulted: a layer built without ``rng`` works in
    eval mode but raises on the first training-mode forward (via
    :func:`~repro.nn.functional.dropout`), because silently falling back to
    an unseeded stream would make training runs irreproducible with no
    visible failure.  Every model constructor in this repo threads its
    construction generator through.
    """

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(ensure_tensor(x), self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), generator))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class PositionalEmbedding(Module):
    """Learned positional embedding added to the projected IMU sequence.

    LIMU-BERT (and therefore Saga) uses learned positional embeddings over the
    fixed window length ``L_win`` rather than sinusoidal encodings.
    """

    def __init__(self, max_length: int, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        generator = rng if rng is not None else make_rng()
        self.max_length = max_length
        self.dim = dim
        self.weight = Parameter(init.normal((max_length, dim), generator))

    def forward(self, x: Tensor) -> Tensor:
        """Add positional embeddings to ``x`` of shape ``(batch, length, dim)``."""
        x = ensure_tensor(x)
        length = x.shape[-2]
        if length > self.max_length:
            raise ValueError(
                f"sequence length {length} exceeds maximum positional length {self.max_length}"
            )
        return x + self.weight[np.arange(length)]

    def __repr__(self) -> str:
        return f"PositionalEmbedding(max_length={self.max_length}, dim={self.dim})"


class GELUActivation(Module):
    """GELU as a module (for use inside Sequential stacks)."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).gelu()


class ReLUActivation(Module):
    """ReLU as a module (for use inside Sequential stacks)."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).relu()


class TanhActivation(Module):
    """Tanh as a module (for use inside Sequential stacks)."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).tanh()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        batch = x.shape[0]
        return x.reshape(batch, int(np.prod(x.shape[1:])))
