"""Loss functions used across pre-training, fine-tuning and the baselines.

* :class:`MSELoss` — masked-reconstruction pre-training (paper Eq. in V-A).
* :class:`CrossEntropyLoss` — downstream classifier fine-tuning (paper Eq. 8).
* :class:`NTXentLoss` — normalised temperature-scaled cross-entropy used by the
  CL-HAR contrastive baseline (SimCLR-style).
* :class:`WeightedReconstructionLoss` — the weighted sum of the four per-level
  reconstruction losses (paper Eq. 7).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor, concatenate, ensure_tensor


class MSELoss(Module):
    """Mean squared error, optionally restricted to masked positions."""

    def forward(
        self,
        prediction: Tensor,
        target: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        return F.masked_mse(prediction, target, mask=mask)


class CrossEntropyLoss(Module):
    """Cross-entropy over logits with integer class labels (paper Eq. 8)."""

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        logits = ensure_tensor(logits)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError("labels must be 1-D and match the batch dimension of logits")
        num_classes = logits.shape[1]
        log_probs = F.log_softmax(logits, axis=-1)
        target = F.one_hot(labels, num_classes, dtype=logits.dtype)
        return -(log_probs * Tensor(target)).sum() * (1.0 / labels.shape[0])


class NTXentLoss(Module):
    """Normalised temperature-scaled cross-entropy (SimCLR / CL-HAR).

    Given two batches of projections ``z1`` and ``z2`` where ``z1[i]`` and
    ``z2[i]`` are two augmented views of the same IMU window, each view is
    attracted to its positive pair and repelled from the other ``2N - 2``
    samples in the combined batch.
    """

    def __init__(self, temperature: float = 0.5) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, z1: Tensor, z2: Tensor) -> Tensor:
        z1, z2 = ensure_tensor(z1), ensure_tensor(z2)
        if z1.shape != z2.shape:
            raise ValueError("the two views must have identical shapes")
        batch = z1.shape[0]
        z = concatenate([z1, z2], axis=0)
        # L2-normalise each projection.
        norms = ((z * z).sum(axis=-1, keepdims=True) + 1e-12) ** 0.5
        z = z / norms
        similarity = z.matmul(z.transpose()) * (1.0 / self.temperature)
        # Mask out self-similarity with a large negative constant.
        self_mask = np.eye(2 * batch, dtype=similarity.dtype) * -1e9
        similarity = similarity + Tensor(self_mask)
        positives = np.concatenate([np.arange(batch, 2 * batch), np.arange(0, batch)])
        log_probs = F.log_softmax(similarity, axis=-1)
        target = F.one_hot(positives, 2 * batch, dtype=similarity.dtype)
        return -(log_probs * Tensor(target)).sum() * (1.0 / (2 * batch))


class WeightedReconstructionLoss(Module):
    """Weighted combination of per-level reconstruction losses (paper Eq. 7).

    ``L = w_se * L_se + w_po * L_po + w_sp * L_sp + w_pe * L_pe``
    """

    def __init__(self, level_names: Optional[tuple] = None) -> None:
        super().__init__()
        self.level_names = tuple(level_names) if level_names is not None else (
            "sensor", "point", "subperiod", "period",
        )
        self.mse = MSELoss()

    def forward(
        self,
        per_level_losses: Mapping[str, Tensor],
        weights: Mapping[str, float],
    ) -> Tensor:
        """Combine already-computed per-level losses with the given weights."""
        unknown = set(per_level_losses) - set(self.level_names)
        if unknown:
            raise KeyError(f"unknown loss levels: {sorted(unknown)}")
        total: Optional[Tensor] = None
        for level in self.level_names:
            if level not in per_level_losses:
                continue
            weight = float(weights.get(level, 0.0))
            term = per_level_losses[level] * weight
            total = term if total is None else total + term
        if total is None:
            raise ValueError("no per-level losses were provided")
        return total

    def compute(
        self,
        reconstructions: Mapping[str, Tensor],
        target: Tensor,
        masks: Mapping[str, np.ndarray],
        weights: Mapping[str, float],
    ) -> Dict[str, Tensor]:
        """Compute per-level masked MSE losses plus the weighted total.

        Returns a dict with one entry per level plus the key ``"total"``.
        """
        per_level: Dict[str, Tensor] = {}
        for level, reconstruction in reconstructions.items():
            per_level[level] = self.mse(reconstruction, target, mask=masks.get(level))
        per_level["total"] = self.forward(per_level, weights)
        return per_level
