"""Optimisation passes over a traced :class:`~repro.nn.jit.tape.Tape`.

Run order (see :func:`optimize`):

1. **Dead-node elimination** — drop every op whose value the output never
   depends on.  The eager forward computes some of these unconditionally:
   the GRU stacks all per-step hidden states for its sequence output even
   though the classifier only reads the final state, so the entire
   ``expand_dims``/``concatenate`` tail (window_length + 1 nodes and the
   biggest allocation of the classifier head) vanishes from the tape.
2. **Constant folding** — evaluate nodes whose operands are all trace-time
   constants once at compile time (scalar coercions, positional-embedding
   index chains over constants…).  Parameters are *not* constants: they stay
   rebindable so weight updates never require a retrace.
3. **Constant dedup** — the eager engine coerces python scalars to 0-d
   arrays per call site, so a traced GRU carries hundreds of identical
   ``1.0``/``-1.0`` constants; merge small value-equal constants into one
   slot.
4. **Strength reduction** (float32 tapes only) — flag ``pow`` / ``gelu`` /
   ``layer_norm`` nodes ``fast`` so their kernels replace ``np.power`` with
   algebraically equal multiply/sqrt/divide forms.  ``np.power`` with a
   non-integer or negative exponent is by far the slowest primitive on the
   serving hot path (the gelu cube dominates the eager forward).  float64
   tapes keep reference numerics: replay stays bit-identical to eager.

Elementwise-chain *fusion* is not a tape rewrite: the executor's buffer
planner fuses chains structurally by computing them in place through a single
arena buffer (see :mod:`repro.nn.jit.executor`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .executor import eval_node
from .tape import KIND_CONST, Slot, Tape

#: Largest constant (in elements) considered for value-based deduplication.
_DEDUP_MAX_ELEMENTS = 64


def eliminate_dead_nodes(tape: Tape) -> int:
    """Drop nodes the output slot does not (transitively) depend on."""
    live_slots = {tape.output_slot}
    stack = [tape.output_slot]
    while stack:
        slot = stack.pop()
        producer = tape.slots[slot].producer
        if producer < 0:
            continue
        for upstream in tape.nodes[producer].inputs:
            if upstream not in live_slots:
                live_slots.add(upstream)
                stack.append(upstream)
    kept = [
        node
        for node in tape.nodes
        if node.out in live_slots or node.out == tape.output_slot
    ]
    removed = len(tape.nodes) - len(kept)
    if removed:
        tape.nodes = kept
        tape.renumber_producers()
    return removed


def fold_constants(tape: Tape) -> int:
    """Evaluate const-only nodes at compile time and inline their results."""
    folded = 0
    kept = []
    for node in tape.nodes:
        if all(tape.slots[s].kind == KIND_CONST for s in node.inputs):
            value = eval_node(node.op, [tape.slots[s].ref for s in node.inputs], node.attrs)
            out = tape.slots[node.out]
            tape.slots[node.out] = Slot(
                kind=KIND_CONST, shape=out.shape, dtype=out.dtype, ref=np.asarray(value)
            )
            folded += 1
        else:
            kept.append(node)
    if folded:
        tape.nodes = kept
        tape.renumber_producers()
    return folded


def dedup_constants(tape: Tape) -> int:
    """Merge small value-identical constant slots into a canonical one."""
    canonical: Dict[tuple, int] = {}
    remap: Dict[int, int] = {}
    for index, slot in enumerate(tape.slots):
        if slot.kind != KIND_CONST or slot.ref is None or slot.ref.size > _DEDUP_MAX_ELEMENTS:
            continue
        key = (slot.dtype.str, slot.shape, slot.ref.tobytes())
        first = canonical.setdefault(key, index)
        if first != index:
            remap[index] = first
    if not remap:
        return 0
    for node in tape.nodes:
        node.inputs = tuple(remap.get(s, s) for s in node.inputs)
    if tape.output_slot in remap:
        tape.output_slot = remap[tape.output_slot]
    return len(remap)


#: Ops the strength-reduction pass may flag ``fast`` on float32 tapes.
_FAST_OPS = frozenset({"pow", "gelu", "layer_norm"})


def strength_reduce(tape: Tape) -> int:
    """Flag float32 pow/gelu/layer_norm nodes for the fast kernels."""
    flagged = 0
    for node in tape.nodes:
        if node.op in _FAST_OPS and tape.slots[node.out].dtype == np.float32:
            node.attrs = dict(node.attrs or {})
            node.attrs["fast"] = True
            flagged += 1
    return flagged


def optimize(tape: Tape, fast_math: bool) -> Dict[str, int]:
    """Run all passes in order; returns per-pass change counts."""
    report = {
        "dead_nodes_removed": eliminate_dead_nodes(tape),
        "constants_folded": fold_constants(tape),
        "constants_deduped": dedup_constants(tape),
        "fast_nodes": strength_reduce(tape) if fast_math else 0,
    }
    # Folding may orphan nodes whose only consumer got folded; sweep again.
    report["dead_nodes_removed"] += eliminate_dead_nodes(tape)
    return report
