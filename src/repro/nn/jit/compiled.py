"""`CompiledModule`: bucketed trace-and-replay execution with eager fallback.

A :class:`CompiledModule` wraps an eager :class:`~repro.nn.module.Module` and
behaves like :meth:`Module.inference`: eval-mode semantics, detached output.
The first call for each input signature traces the forward into a tape,
optimises it and compiles an executor; subsequent calls with the same
signature replay the tape on raw ndarrays.

Bucket policy
-------------
Tapes are keyed on ``(trailing input shape, dtype, batch bucket)``.  By
default each distinct batch size is its own bucket (exact replay).  Serving
callers pass ``bucket_sizes`` (e.g. powers of two up to the micro-batcher's
maximum): a partial batch is padded up to the nearest bucket by repeating its
first row and the padded rows are sliced off the output — valid because every
model on the serving path is row-independent (no cross-batch reductions), and
guarded by the same self-check as every other tape.  At most ``max_buckets``
tapes are kept (least recently used wins).

Fallback semantics
------------------
Anything the tracer cannot prove safe runs eagerly instead, forever or per
call as appropriate:

* extra positional/keyword arguments (e.g. an ``attention_mask``): per-call
  eager fallback — masks are baked into a tape as constants, so they cannot
  be replayed generically;
* non-floating inputs (integer index tensors are data, not shapes): permanent
  fallback for the module;
* a trace failure (unsupported op, non-Tensor output) or a self-check
  mismatch (a value-dependent forward): the signature is poisoned and served
  eagerly, with a warning;
* a parameter dtype change (``module.to(...)`` after compile): all tapes are
  invalidated and retraced on demand.

Every decision is counted in :class:`CompileStats` so tests and telemetry can
assert the executor actually ran.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ...exceptions import ConfigurationError, TraceError
from ...faults import site as _fault_site
from ..tensor import Tensor
from .executor import SUPPORTED_OPS, TapeExecutor
from .passes import optimize
from .tracing import trace_module

logger = logging.getLogger(__name__)

#: Replay failures tolerated per input signature before the signature is
#: poisoned permanently (served eagerly, never re-traced).  Below the cap a
#: quarantine discards the damaged tape and lets the lazy-trace path build a
#: fresh one, so a transient corruption self-heals at full speed.
MAX_TAPE_QUARANTINES = 2


@dataclass
class CompileStats:
    """Counters describing how a :class:`CompiledModule` has executed."""

    traces: int = 0
    replays: int = 0
    fallbacks: int = 0
    padded_replays: int = 0
    self_check_failures: int = 0
    evictions: int = 0
    quarantines: int = 0
    pass_report: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "traces": self.traces,
            "replays": self.replays,
            "fallbacks": self.fallbacks,
            "padded_replays": self.padded_replays,
            "self_check_failures": self.self_check_failures,
            "evictions": self.evictions,
            "quarantines": self.quarantines,
        }


def power_of_two_buckets(max_batch: int) -> list:
    """Power-of-two batch buckets up to (and always including) ``max_batch``.

    The canonical bucket policy for row-independent serving models: partial
    batches pad up to the nearest bucket, so varying traffic compiles
    ``log2(max_batch)`` tapes instead of one per distinct batch size.
    """
    if max_batch < 1:
        raise ConfigurationError("max_batch must be at least 1")
    sizes = []
    size = 1
    while size < max_batch:
        sizes.append(size)
        size *= 2
    sizes.append(max_batch)
    return sizes


class CompiledModule:
    """Trace-and-replay wrapper around a module's inference forward."""

    def __init__(
        self,
        module,
        *,
        max_buckets: int = 8,
        bucket_sizes: Optional[Sequence[int]] = None,
        self_check: bool = True,
        fast_math: Optional[bool] = None,
        copy_output: bool = True,
    ) -> None:
        if max_buckets < 1:
            raise ConfigurationError("max_buckets must be at least 1")
        self.module = module
        self.max_buckets = max_buckets
        self.bucket_sizes = tuple(sorted(set(bucket_sizes))) if bucket_sizes else None
        self.self_check = self_check
        self.fast_math = fast_math
        self.copy_output = copy_output
        self.stats = CompileStats()
        self._tapes: "OrderedDict[tuple, Optional[TapeExecutor]]" = OrderedDict()
        self._quarantine_counts: Dict[tuple, int] = {}
        self._lock = threading.RLock()
        self._unsupported = False
        self._traced_param_dtype: Optional[np.dtype] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __call__(self, x=None, *args, **kwargs):
        return self.forward(x, *args, **kwargs)

    def forward(self, x=None, *args, **kwargs) -> Tensor:
        """Inference-mode forward: replay when possible, else eager fallback."""
        if args or kwargs or x is None:
            return self._fallback(x, *args, **kwargs)
        array = x.data if isinstance(x, Tensor) else np.asarray(x)
        result = self._try_replay(array)
        if result is None:
            return self._fallback(x)
        return Tensor(result)

    def run(self, array: np.ndarray) -> np.ndarray:
        """Raw ndarray-in / ndarray-out hot path (what the server calls)."""
        array = np.asarray(array)
        result = self._try_replay(array)
        if result is not None:
            return result
        with self._lock:
            self.stats.fallbacks += 1
        return self.module.inference(array).data

    def warmup(self, example: np.ndarray) -> "CompiledModule":
        """Trace and self-check the bucket for ``example`` ahead of traffic."""
        self.run(np.asarray(example))
        return self

    def compiled_bucket_count(self) -> int:
        with self._lock:
            return sum(1 for executor in self._tapes.values() if executor is not None)

    def __getattr__(self, name):
        # Delegate everything else (predict, backbone, dtype, eval, ...) to
        # the wrapped module so the compiled wrapper is a drop-in.
        return getattr(self.module, name)

    # ------------------------------------------------------------------
    # Replay machinery
    # ------------------------------------------------------------------
    def _bucket_batch(self, batch: int) -> int:
        if self.bucket_sizes:
            for size in self.bucket_sizes:
                if size >= batch:
                    return size
        return batch

    def _try_replay(self, array: np.ndarray) -> Optional[np.ndarray]:
        if self._unsupported or array.dtype.kind != "f" or array.ndim < 1:
            if not self._unsupported and array.dtype.kind != "f":
                # Integer inputs are indices, i.e. *data*: a tape would bake
                # the trace batch's lookups in and silently mispredict.
                self._unsupported = True
                logger.warning(
                    "%s: non-floating input; compiled execution disabled",
                    type(self.module).__name__,
                )
            return None
        batch = array.shape[0]
        if batch == 0:
            # Nothing to pad a bucket from; eager handles the empty batch.
            return None
        bucket = self._bucket_batch(batch)
        key = (bucket, array.shape[1:], array.dtype.str)
        executor = self._executor_for(key, array, bucket)
        if executor is None:
            return None
        try:
            # The serving forward-path fault site lives *inside* the replay
            # attempt: an injected error is indistinguishable from a tape
            # whose replay organically raises, which is exactly the failure
            # the quarantine below must absorb.
            _fault_site("serving.forward", bucket=bucket)
            if bucket != batch:
                padded = np.empty((bucket,) + array.shape[1:], array.dtype)
                padded[:batch] = array
                padded[batch:] = array[:1]
                output = executor.run(padded)[:batch]
                with self._lock:
                    self.stats.replays += 1
                    self.stats.padded_replays += 1
                return output.copy() if self.copy_output else output
            output = executor.run(array)
            with self._lock:
                self.stats.replays += 1
            return output.copy() if self.copy_output else output
        except Exception as exc:
            self._quarantine(key, exc)
            return None

    def _quarantine(self, key: tuple, exc: BaseException) -> None:
        """Discard a tape whose replay raised; the request falls back to eager.

        Replays are supposed to be infallible once a tape passed its
        self-check, so any exception here means the tape (or the process
        around it) is damaged.  The damaged tape is dropped, the failed
        request is answered eagerly, and the normal lazy-trace path builds a
        *fresh* tape on a later request — a transiently corrupted tape costs
        one fallback plus one re-trace, not degraded serving forever.  A
        signature that keeps failing (``MAX_TAPE_QUARANTINES`` times) is
        poisoned permanently instead: the cause is then in the trace or the
        model, and flapping trace → fail → retrace would burn CPU on every
        miss without ever recovering.
        """
        with self._lock:
            count = self._quarantine_counts.get(key, 0) + 1
            self._quarantine_counts[key] = count
            permanent = count >= MAX_TAPE_QUARANTINES
            if permanent:
                self._tapes[key] = None
            else:
                self._tapes.pop(key, None)
            self.stats.quarantines += 1
        logger.warning(
            "%s: replay for signature %s raised (%s: %s); tape quarantined "
            "(failure %d/%d) — %s",
            type(self.module).__name__, key, type(exc).__name__, exc,
            count, MAX_TAPE_QUARANTINES,
            "serving this signature eagerly from now on" if permanent
            else "a fresh tape will be traced on a later request",
        )

    def _executor_for(self, key: tuple, array: np.ndarray, bucket: int) -> Optional[TapeExecutor]:
        with self._lock:
            module_dtype = self.module.dtype
            if self._traced_param_dtype is not None and module_dtype != self._traced_param_dtype:
                # module.to(...) after compile: every tape's buffers and
                # constants are in the old precision.  Retrace on demand.
                # (Quiescent switches only: casting the module *while* other
                # threads are mid-replay is not synchronised — the serving
                # stack never does this, it casts a private copy before
                # serving.  An in-flight replay may then error, never
                # mispredict silently: mixed dtypes fail the `out=` kernels.)
                self._tapes.clear()
                self._traced_param_dtype = None
            if key in self._tapes:
                self._tapes.move_to_end(key)
                return self._tapes[key]
            example = array
            if bucket != array.shape[0]:
                example = np.empty((bucket,) + array.shape[1:], array.dtype)
                example[: array.shape[0]] = array
                example[array.shape[0]:] = array[:1]
            executor = self._trace(example)
            self._tapes[key] = executor
            self._traced_param_dtype = module_dtype
            while len(self._tapes) > self.max_buckets:
                self._tapes.popitem(last=False)
                self.stats.evictions += 1
            return executor

    def _trace(self, example: np.ndarray) -> Optional[TapeExecutor]:
        try:
            tape, reference = trace_module(self.module, [example], SUPPORTED_OPS)
        except TraceError as exc:
            self._unsupported = True
            logger.warning(
                "%s: cannot trace forward (%s); compiled execution disabled",
                type(self.module).__name__,
                exc,
            )
            return None
        fast_math = self.fast_math
        if fast_math is None:
            fast_math = example.dtype == np.float32
        self.stats.pass_report = optimize(tape, fast_math=fast_math)
        executor = TapeExecutor(tape)
        self.stats.traces += 1
        if self.self_check and not self._self_check(executor, example, reference, fast_math):
            self.stats.self_check_failures += 1
            logger.warning(
                "%s: tape self-check failed for signature %s; serving this "
                "signature eagerly (is the forward value-dependent?)",
                type(self.module).__name__,
                example.shape,
            )
            return None
        return executor

    def _self_check(
        self,
        executor: TapeExecutor,
        example: np.ndarray,
        reference: np.ndarray,
        fast_math: bool,
    ) -> bool:
        """Replay the trace input *and* an independent random input.

        The second probe is what catches a value-dependent forward: a tape
        that baked the trace batch's values in as constants still reproduces
        ``reference`` exactly, but disagrees with eager on fresh data.
        """
        def matches(replayed: np.ndarray, expected: np.ndarray) -> bool:
            if fast_math:
                return np.allclose(replayed, expected, rtol=1e-4, atol=1e-5)
            return np.array_equal(replayed, expected)

        if not matches(executor.run(example), reference):
            return False
        probe = np.random.default_rng(0x5EED).standard_normal(example.shape)
        probe = probe.astype(example.dtype, copy=False)
        # Tensor-wrapped, exactly like the traced input: forwards that coerce
        # raw arrays to the policy dtype must see the same entry conditions.
        probe_reference = self.module.inference(Tensor(probe)).data
        return matches(executor.run(probe), probe_reference)

    def _fallback(self, x, *args, **kwargs) -> Tensor:
        with self._lock:
            self.stats.fallbacks += 1
        return self.module.inference(x, *args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"CompiledModule({type(self.module).__name__}, "
            f"buckets={self.compiled_bucket_count()}, replays={self.stats.replays}, "
            f"fallbacks={self.stats.fallbacks})"
        )


def compile_module(module, **kwargs) -> CompiledModule:
    """Functional alias for :meth:`repro.nn.Module.compile`."""
    return CompiledModule(module, **kwargs)
