"""Trace-and-replay compiled execution for the inference hot path.

``repro.nn.jit`` removes the eager engine's per-op python overhead from
serving forwards: a module's forward is traced once per input-signature
bucket into a flat :class:`~repro.nn.jit.tape.Tape` of primitive ops,
optimised (dead-node elimination, constant folding and dedup, float32
strength reduction) and replayed on plain ndarrays through a liveness-planned
buffer arena — zero :class:`~repro.nn.tensor.Tensor` construction, no
closures, no allocation churn.  Anything untraceable falls back to the eager
``no_grad`` path.  Entry points:

>>> compiled = model.compile()          # Module.compile -> CompiledModule
>>> probs = compiled(batch)             # traces on first call per bucket
>>> raw = compiled.run(batch_ndarray)   # ndarray-in / ndarray-out

See ``DESIGN.md`` ("Compiled execution") for the tracing model, fusion rules,
bucket policy and fallback semantics.
"""

from .compiled import CompiledModule, CompileStats, compile_module
from .executor import SUPPORTED_OPS, Plan, TapeExecutor, plan_buffers
from .passes import optimize
from .tape import Node, Slot, Tape
from .tracing import TraceSession, build_tape, trace_module, trace_session

__all__ = [
    "CompiledModule",
    "CompileStats",
    "compile_module",
    "Tape",
    "Node",
    "Slot",
    "TapeExecutor",
    "Plan",
    "plan_buffers",
    "optimize",
    "SUPPORTED_OPS",
    "TraceSession",
    "trace_session",
    "trace_module",
    "build_tape",
]
