"""Replay a :class:`~repro.nn.jit.tape.Tape` on plain ndarrays.

The executor is where the eager engine's per-op costs disappear: a replay
builds **zero** :class:`~repro.nn.tensor.Tensor` objects, performs no dtype
coercion, no module ``__call__`` dispatch and no graph bookkeeping — each tape
node compiles once into a small closure over pre-bound value slots and a
pre-planned arena buffer, and a forward is a straight loop over those
closures.

Numerics contract
-----------------
Every kernel mirrors the eager op's exact numpy expression (same ufuncs, same
association order), so a reference-mode replay is **bit-identical** to the
eager forward in both float32 and float64.  The only deviation is opt-in:
nodes flagged ``fast`` by the strength-reduction pass (float32 tapes only)
replace ``np.power`` with algebraically equal multiply/sqrt/divide forms,
which agree to within float32 round-off (``allclose``), never bit-for-bit.

Buffer planning
---------------
``plan_buffers`` runs a liveness analysis over the tape (views alias their
base, so a lifetime is per alias-*group*) and assigns every buffer-producing
node an arena buffer keyed on ``(shape, dtype)``:

* a buffer is returned to the free pool one node *after* its group's last
  read, so an ``out=`` target can never alias an operand by accident;
* elementwise nodes whose dying input has the same shape and dtype instead
  *take over* that input's buffer and compute in place — this is what fuses
  ``x@W + b -> gelu -> layer_norm`` chains into two buffers with no
  intermediate allocations;
* nodes that need scratch (gelu, layer_norm, log-softmax) borrow one pool
  buffer for the duration of the node.

Arena buffers are instantiated per *thread* (the plan is shared), so replays
from concurrent serving workers never race on the same memory.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...obs.profiling import op_profiling_enabled, record_op_timings
from ..conv import im2col
from .tape import KIND_CONST, KIND_NODE, KIND_PARAM, Node, Tape, VIEW_OPS

_GELU_C = float(np.sqrt(2.0 / np.pi))

#: Ops that never produce a new buffer (views / cheap python-side rebinds).
NO_BUFFER_OPS = VIEW_OPS | {"where", "im2col"}

#: Elementwise ops whose kernel may safely write over a dying same-shape
#: operand (verified per kernel: every kernel below reads each operand for
#: the last time no later than the first write into ``out``).
INPLACE_SAFE_OPS = frozenset(
    {
        "add", "mul", "pow", "exp", "log", "tanh", "sigmoid", "relu", "gelu",
        "abs", "clip", "softmax", "log_softmax", "layer_norm",
    }
)

#: Ops that need one scratch buffer of the output's shape and dtype.
SCRATCH_OPS = frozenset({"gelu", "log_softmax", "layer_norm", "pow"})


def _out(buf: Optional[np.ndarray], like: np.ndarray) -> np.ndarray:
    return buf if buf is not None else np.empty(like.shape, like.dtype)


# ----------------------------------------------------------------------
# Kernel factories: (inputs, attrs, values, out, buf, scratch) -> step()
# Each step computes values[out]; `values` is the shared slot environment.
# ----------------------------------------------------------------------
def _f_add(ins, attrs, values, out, buf, scratch):
    a, b = ins
    if buf is None:
        def step():
            values[out] = np.add(values[a], values[b])
    else:
        def step():
            values[out] = np.add(values[a], values[b], out=buf)
    return step


def _f_mul(ins, attrs, values, out, buf, scratch):
    a, b = ins
    if buf is None:
        def step():
            values[out] = np.multiply(values[a], values[b])
    else:
        def step():
            values[out] = np.multiply(values[a], values[b], out=buf)
    return step


def _f_matmul(ins, attrs, values, out, buf, scratch):
    a, b = ins
    if buf is None:
        def step():
            values[out] = np.matmul(values[a], values[b])
    else:
        def step():
            values[out] = np.matmul(values[a], values[b], out=buf)
    return step


def _f_pow(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    exponent = attrs["exponent"]
    fast = bool(attrs.get("fast"))
    if fast and exponent == -1.0:
        def step():
            values[out] = np.divide(1.0, values[a], out=_out(buf, values[a]))
    elif fast and exponent == -0.5:
        def step():
            o = np.sqrt(values[a], out=_out(buf, values[a]))
            values[out] = np.divide(1.0, o, out=o)
    elif fast and exponent == 0.5:
        def step():
            values[out] = np.sqrt(values[a], out=_out(buf, values[a]))
    elif fast and exponent == 2.0:
        def step():
            x = values[a]
            values[out] = np.multiply(x, x, out=_out(buf, x))
    elif fast and exponent == 3.0:
        def step():
            x = values[a]
            s = scratch if scratch is not None else np.empty(x.shape, x.dtype)
            np.multiply(x, x, out=s)
            values[out] = np.multiply(s, x, out=_out(buf, x))
    else:
        def step():
            values[out] = np.power(values[a], exponent, out=_out(buf, values[a]))
    return step


def _make_unary(ufunc):
    def factory(ins, attrs, values, out, buf, scratch):
        (a,) = ins
        if buf is None:
            def step():
                values[out] = ufunc(values[a])
        else:
            def step():
                values[out] = ufunc(values[a], out=buf)
        return step
    return factory


def _f_sigmoid(ins, attrs, values, out, buf, scratch):
    (a,) = ins

    def step():
        x = values[a]
        o = _out(buf, x)
        np.negative(x, out=o)
        np.exp(o, out=o)
        np.add(o, 1.0, out=o)
        values[out] = np.divide(1.0, o, out=o)
    return step


def _f_relu(ins, attrs, values, out, buf, scratch):
    (a,) = ins

    def step():
        x = values[a]
        values[out] = np.multiply(x, x > 0, out=_out(buf, x))
    return step


def _f_gelu(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    fast = attrs is not None and bool(attrs.get("fast"))

    def step():
        x = values[a]
        s = scratch if scratch is not None else np.empty(x.shape, x.dtype)
        o = _out(buf, x)
        if fast:
            np.multiply(x, x, out=s)
            np.multiply(s, x, out=s)
        else:
            np.power(x, 3, out=s)
        np.multiply(s, 0.044715, out=s)
        np.add(x, s, out=s)
        np.multiply(s, _GELU_C, out=s)
        np.tanh(s, out=s)
        np.add(s, 1.0, out=s)
        np.multiply(x, 0.5, out=o)  # x read for the last time: o may alias x
        values[out] = np.multiply(o, s, out=o)
    return step


def _f_clip(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    low, high = attrs["low"], attrs["high"]

    def step():
        x = values[a]
        values[out] = np.clip(x, low, high, out=_out(buf, x))
    return step


def _f_sum(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis, keepdims = attrs["axis"], attrs["keepdims"]
    if buf is None:
        def step():
            values[out] = values[a].sum(axis=axis, keepdims=keepdims)
    else:
        def step():
            values[out] = np.sum(values[a], axis=axis, keepdims=keepdims, out=buf)
    return step


def _f_max(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis, keepdims = attrs["axis"], attrs["keepdims"]
    if buf is None:
        def step():
            values[out] = values[a].max(axis=axis, keepdims=keepdims)
    else:
        def step():
            values[out] = np.amax(values[a], axis=axis, keepdims=keepdims, out=buf)
    return step


def _f_softmax(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis = attrs["axis"]

    def step():
        x = values[a]
        o = _out(buf, x)
        m = x.max(axis=axis, keepdims=True)
        np.subtract(x, m, out=o)  # x read for the last time: o may alias x
        np.exp(o, out=o)
        s = o.sum(axis=axis, keepdims=True)
        np.power(s, -1.0, out=s)  # mirrors the eager `exp / sum` = exp * sum**-1
        values[out] = np.multiply(o, s, out=o)
    return step


def _f_log_softmax(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis = attrs["axis"]

    def step():
        x = values[a]
        o = _out(buf, x)
        e = scratch if scratch is not None else np.empty(x.shape, x.dtype)
        m = x.max(axis=axis, keepdims=True)
        np.subtract(x, m, out=o)  # shifted
        np.exp(o, out=e)
        s = e.sum(axis=axis, keepdims=True)
        np.log(s, out=s)
        np.multiply(s, -1.0, out=s)  # mirrors the eager `shifted - log(...)`
        values[out] = np.add(o, s, out=o)
    return step


def _f_layer_norm(ins, attrs, values, out, buf, scratch):
    a, wi, bi = ins
    eps = attrs["eps"]
    fast = bool(attrs.get("fast"))

    def step():
        x = values[a]
        w, b = values[wi], values[bi]
        o = _out(buf, x)
        c = scratch if scratch is not None else np.empty(x.shape, x.dtype)
        inv_n = 1.0 / x.shape[-1]
        mu = x.sum(axis=-1, keepdims=True)
        np.multiply(mu, inv_n, out=mu)
        np.subtract(x, mu, out=c)      # centered; x read for the last time
        np.multiply(c, c, out=o)       # o may alias x from here on
        var = o.sum(axis=-1, keepdims=True)
        np.multiply(var, inv_n, out=var)
        np.add(var, eps, out=var)
        if fast:
            np.sqrt(var, out=var)
            np.divide(1.0, var, out=var)
        else:
            np.power(var, -0.5, out=var)
        np.multiply(c, var, out=o)
        np.multiply(o, w, out=o)
        values[out] = np.add(o, b, out=o)
    return step


def _f_reshape(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    shape = attrs["shape"]

    def step():
        values[out] = values[a].reshape(shape)
    return step


def _f_transpose(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axes = attrs["axes"]

    def step():
        values[out] = values[a].transpose(axes)
    return step


def _f_expand_dims(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis = attrs["axis"]

    def step():
        values[out] = np.expand_dims(values[a], axis)
    return step


def _f_squeeze(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    axis = attrs["axis"]
    if axis is None:
        def step():
            values[out] = np.squeeze(values[a])
    else:
        def step():
            values[out] = np.squeeze(values[a], axis=axis)
    return step


def _f_getitem(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    index = attrs["index"]

    def step():
        values[out] = values[a][index]
    return step


def _f_alias(ins, attrs, values, out, buf, scratch):
    (a,) = ins

    def step():
        values[out] = values[a]
    return step


def _f_copy(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    if buf is None:
        def step():
            values[out] = values[a].copy()
    else:
        def step():
            np.copyto(buf, values[a])
            values[out] = buf
    return step


def _f_astype(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    dtype = attrs["dtype"]
    if buf is None:
        def step():
            values[out] = values[a].astype(dtype)
    else:
        def step():
            np.copyto(buf, values[a], casting="unsafe")
            values[out] = buf
    return step


def _f_concatenate(ins, attrs, values, out, buf, scratch):
    axis = attrs["axis"]
    if buf is None:
        def step():
            values[out] = np.concatenate([values[s] for s in ins], axis=axis)
    else:
        def step():
            values[out] = np.concatenate([values[s] for s in ins], axis=axis, out=buf)
    return step


def _f_stack(ins, attrs, values, out, buf, scratch):
    axis = attrs["axis"]
    if buf is None:
        def step():
            values[out] = np.stack([values[s] for s in ins], axis=axis)
    else:
        def step():
            values[out] = np.stack([values[s] for s in ins], axis=axis, out=buf)
    return step


def _f_where(ins, attrs, values, out, buf, scratch):
    a, b = ins
    condition = attrs["condition"]

    def step():
        values[out] = np.where(condition, values[a], values[b])
    return step


def _f_im2col(ins, attrs, values, out, buf, scratch):
    (a,) = ins
    kernel_size, stride, padding = attrs["kernel_size"], attrs["stride"], attrs["padding"]

    def step():
        values[out] = im2col(values[a], kernel_size, stride, padding)
    return step


FACTORIES: Dict[str, Callable] = {
    "add": _f_add,
    "mul": _f_mul,
    "matmul": _f_matmul,
    "pow": _f_pow,
    "exp": _make_unary(np.exp),
    "log": _make_unary(np.log),
    "tanh": _make_unary(np.tanh),
    "abs": _make_unary(np.abs),
    "sigmoid": _f_sigmoid,
    "relu": _f_relu,
    "gelu": _f_gelu,
    "clip": _f_clip,
    "sum": _f_sum,
    "max": _f_max,
    "softmax": _f_softmax,
    "log_softmax": _f_log_softmax,
    "layer_norm": _f_layer_norm,
    "reshape": _f_reshape,
    "transpose": _f_transpose,
    "expand_dims": _f_expand_dims,
    "squeeze": _f_squeeze,
    "getitem": _f_getitem,
    "alias": _f_alias,
    "copy": _f_copy,
    "astype": _f_astype,
    "concatenate": _f_concatenate,
    "stack": _f_stack,
    "where": _f_where,
    "im2col": _f_im2col,
}

SUPPORTED_OPS = frozenset(FACTORIES)


def eval_node(op: str, arrays: Sequence[np.ndarray], attrs) -> np.ndarray:
    """Evaluate one op on concrete arrays (used by constant folding)."""
    values = list(arrays)
    out = len(values)
    values.append(None)
    step = FACTORIES[op](tuple(range(len(arrays))), attrs, values, out, None, None)
    step()
    return values[out]


def _needs_scratch(node: Node) -> bool:
    if node.op not in SCRATCH_OPS:
        return False
    if node.op == "pow":
        return bool(node.attrs.get("fast")) and node.attrs["exponent"] == 3.0
    return True


@dataclass
class Plan:
    """Symbolic arena: buffer specs plus per-node (out, scratch) assignments."""

    buffers: List[Tuple[Tuple[int, ...], np.dtype]]
    assignments: List[Tuple[Optional[int], Optional[int]]]
    inplace_nodes: int = 0


def plan_buffers(tape: Tape) -> Plan:
    """Liveness-based buffer assignment (see module docstring)."""
    slots = tape.slots
    roots = tape.roots()
    last_use: Dict[int, int] = {}
    for index, node in enumerate(tape.nodes):
        for s in node.inputs:
            last_use[roots[s]] = index
    last_use[roots[tape.output_slot]] = len(tape.nodes) + 1  # never recycled

    buffers: List[Tuple[Tuple[int, ...], np.dtype]] = []
    free: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
    owner: Dict[int, int] = {}  # alias-group root -> buffer id
    assignments: List[Tuple[Optional[int], Optional[int]]] = []
    inplace = 0

    def acquire(shape: Tuple[int, ...], dtype: np.dtype) -> int:
        key = (shape, dtype.str)
        pool = free.get(key)
        if pool:
            return pool.pop()
        buffers.append((shape, dtype))
        return len(buffers) - 1

    def release(buffer_id: int, shape: Tuple[int, ...], dtype: np.dtype) -> None:
        free.setdefault((shape, dtype.str), []).append(buffer_id)

    for index, node in enumerate(tape.nodes):
        out_slot = slots[node.out]
        buf_id: Optional[int] = None
        scratch_id: Optional[int] = None
        transferred_root: Optional[int] = None
        if node.op not in NO_BUFFER_OPS:
            if node.op in INPLACE_SAFE_OPS:
                # Fuse onto a dying operand of identical shape and dtype: the
                # chain x@W+b -> gelu -> ... keeps flowing through one buffer.
                for s in node.inputs:
                    root = roots[s]
                    in_slot = slots[s]
                    if (
                        in_slot.kind == KIND_NODE
                        and root in owner
                        and last_use.get(root) == index
                        and in_slot.shape == out_slot.shape
                        and in_slot.dtype == out_slot.dtype
                        # A view's buffer cannot be written through safely
                        # unless the view is the whole buffer; only take
                        # over buffers from non-view slots.
                        and root == s
                    ):
                        buf_id = owner.pop(root)
                        transferred_root = root
                        inplace += 1
                        break
            if buf_id is None:
                buf_id = acquire(out_slot.shape, out_slot.dtype)
            owner[roots[node.out]] = buf_id
        if _needs_scratch(node):
            scratch_id = acquire(out_slot.shape, out_slot.dtype)
            release(scratch_id, out_slot.shape, out_slot.dtype)
        assignments.append((buf_id, scratch_id))
        # Buffers whose group died at this node return to the pool for the
        # *next* node (never for this node's own out / scratch acquisition),
        # so an `out=` target can never alias an operand unless explicitly
        # taken over above.
        for s in node.inputs:
            root = roots[s]
            if root == transferred_root:
                continue
            if last_use.get(root) == index and root in owner:
                released = owner.pop(root)
                root_slot = slots[root]
                release(released, root_slot.shape, root_slot.dtype)
    return Plan(buffers=buffers, assignments=assignments, inplace_nodes=inplace)


class _Program:
    """One thread's materialised replay: arena buffers + compiled closures."""

    def __init__(self, tape: Tape, plan: Plan) -> None:
        slots = tape.slots
        self.values: List[Optional[np.ndarray]] = [None] * len(slots)
        self.param_bindings: List[Tuple[int, object]] = []
        for index, slot in enumerate(slots):
            if slot.kind == KIND_CONST:
                self.values[index] = slot.ref
            elif slot.kind == KIND_PARAM:
                self.param_bindings.append((index, slot.ref))
        arena = [np.empty(shape, dtype) for shape, dtype in plan.buffers]
        self.steps: List[Callable[[], None]] = []
        for node, (buf_id, scratch_id) in zip(tape.nodes, plan.assignments):
            factory = FACTORIES[node.op]
            self.steps.append(
                factory(
                    node.inputs,
                    node.attrs,
                    self.values,
                    node.out,
                    arena[buf_id] if buf_id is not None else None,
                    arena[scratch_id] if scratch_id is not None else None,
                )
            )
        self.op_kinds: List[str] = [node.op for node in tape.nodes]
        self.input_slots = tape.input_slots
        self.output_slot = tape.output_slot

    def run(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        values = self.values
        for index, array in zip(self.input_slots, inputs):
            values[index] = array
        for index, param in self.param_bindings:
            # Rebound every call: in-place weight updates stay visible.
            values[index] = param.data
        if op_profiling_enabled():
            return self._run_profiled()
        for step in self.steps:
            step()
        return values[self.output_slot]

    def _run_profiled(self) -> np.ndarray:
        """Timed replay: per-node perf_counter reads, aggregated by op kind.

        The aggregation dict is local and flushed once per replay, so a
        3k-node tape costs 3k timer reads but a handful of registry
        observations — cheap enough to profile a live server, but still
        strictly opt-in (:func:`repro.obs.enable_op_profiling`).
        """
        perf = time.perf_counter
        totals: Dict[str, Tuple[int, float]] = {}
        for op, step in zip(self.op_kinds, self.steps):
            started = perf()
            step()
            elapsed = perf() - started
            entry = totals.get(op)
            totals[op] = (1, elapsed) if entry is None else (entry[0] + 1, entry[1] + elapsed)
        record_op_timings(totals)
        return self.values[self.output_slot]


class TapeExecutor:
    """Shareable compiled artefact: one plan, per-thread arenas."""

    def __init__(self, tape: Tape) -> None:
        self.tape = tape
        self.plan = plan_buffers(tape)
        self._local = threading.local()

    def run(self, *inputs: np.ndarray) -> np.ndarray:
        program = getattr(self._local, "program", None)
        if program is None:
            program = _Program(self.tape, self.plan)
            self._local.program = program
        return program.run(inputs)
