"""The flat op tape: the IR of the trace-and-replay compiled executor.

A :class:`Tape` is a topologically ordered list of :class:`Node` primitives
over a flat value-slot table.  Slots come in four kinds:

* ``input`` — the traced forward's positional array argument(s); rebound on
  every replay;
* ``param`` — a module :class:`~repro.nn.module.Parameter` encountered as an
  op operand; held *by reference* and rebound from ``param.data`` on every
  replay, so in-place weight updates (``load_state_dict``, optimizer steps)
  are picked up without retracing;
* ``const`` — any other leaf tensor created during the forward (coerced
  python scalars, the GRU's zero initial hidden state, an attention bias);
  its array is snapshotted at trace time;
* ``node`` — the output of a tape op.

Shapes on the tape are concrete: the executor compiles one tape per
``(input shape, dtype)`` bucket and replays it only for exactly-matching
signatures (the batch axis is symbolic one level up, in
:class:`~repro.nn.jit.compiled.CompiledModule`, which buckets and pads
incoming batches and falls back to eager execution on any mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

KIND_INPUT = "input"
KIND_PARAM = "param"
KIND_CONST = "const"
KIND_NODE = "node"

#: Ops whose output is (conservatively) a view of their input: the planner
#: must treat output and input as one aliased lifetime group and never hand
#: the underlying buffer out for reuse while any member is live.
VIEW_OPS = frozenset(
    {"reshape", "transpose", "expand_dims", "squeeze", "getitem", "alias"}
)


@dataclass
class Slot:
    """One value in the tape's flat environment."""

    kind: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    ref: object = None  # Parameter (param) / ndarray (const); None otherwise
    producer: int = -1  # producing node index for kind == "node"


@dataclass
class Node:
    """One primitive op: ``slots[out] = op(*slots[inputs], **attrs)``."""

    op: str
    inputs: Tuple[int, ...]
    attrs: Optional[dict]
    out: int


@dataclass
class Tape:
    """A traced forward as a flat program over value slots."""

    slots: List[Slot]
    nodes: List[Node] = field(default_factory=list)
    input_slots: List[int] = field(default_factory=list)
    output_slot: int = -1

    def renumber_producers(self) -> None:
        """Re-point ``Slot.producer`` after a pass dropped or reordered nodes."""
        for slot in self.slots:
            if slot.kind == KIND_NODE:
                slot.producer = -1
        for index, node in enumerate(self.nodes):
            self.slots[node.out].producer = index

    def consumer_counts(self) -> Dict[int, int]:
        """How many times each slot is read (the output counts as one read)."""
        counts: Dict[int, int] = {}
        for node in self.nodes:
            for slot in node.inputs:
                counts[slot] = counts.get(slot, 0) + 1
        counts[self.output_slot] = counts.get(self.output_slot, 0) + 1
        return counts

    def roots(self) -> List[int]:
        """Alias-group root per slot: views share their base's lifetime."""
        roots = list(range(len(self.slots)))
        for node in self.nodes:
            if node.op in VIEW_OPS:
                roots[node.out] = roots[node.inputs[0]]
        return roots

    def stats(self) -> Dict[str, int]:
        ops: Dict[str, int] = {}
        for node in self.nodes:
            ops[node.op] = ops.get(node.op, 0) + 1
        return {
            "num_nodes": len(self.nodes),
            "num_slots": len(self.slots),
            "num_consts": sum(1 for s in self.slots if s.kind == KIND_CONST),
            "num_params": sum(1 for s in self.slots if s.kind == KIND_PARAM),
            **{f"op_{name}": count for name, count in sorted(ops.items())},
        }
