"""Record a module's eager forward into a :class:`~repro.nn.jit.tape.Tape`.

Tracing runs the *unmodified* eager forward once, under ``no_grad()``, with a
thread-local :class:`TraceSession` installed in :mod:`repro.nn.tensor`.  Every
op that takes the detached fast path reports itself to the session, which
assigns each produced tensor a session-scoped id and appends one entry per op.
Intermediate tensors are **not** pinned — only leaf operands (parameters and
constants) are kept alive — so tracing a deployment-scale forward costs the
same peak memory as running it.

The recorded forward must be *trace-stable*: python control flow may depend on
shapes (which are frozen per bucket) but not on the *values* flowing through
the tensors, and no op may smuggle traced values out through ``.data`` into a
fresh tensor (the tape would bake them in as constants from the trace batch).
The softmax / log-softmax / layer-norm helpers in :mod:`repro.nn.functional`
are intercepted as fused primitives for exactly that reason, and the compiled
module re-runs the tape against the eager output after tracing (the
self-check) so a value-dependent forward is caught and demoted to eager
execution instead of silently mispredicting.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ...exceptions import TraceError
from ..tensor import Tensor, _trace_state, no_grad
from .tape import KIND_CONST, KIND_INPUT, KIND_NODE, KIND_PARAM, Node, Slot, Tape

_session_tokens = itertools.count(1)


class TraceSession:
    """Collects op records for one trace.

    Traced tensors are identified by a ``(token, serial)`` pair written onto
    the tensor itself (``Tensor._trace_id``); the token is unique per session,
    so a stale id from an earlier trace can never be mistaken for one of ours
    even after python recycles the object's memory.
    """

    def __init__(self) -> None:
        self.token = next(_session_tokens)
        self._serial = 0
        # (out_serial, op, resolved_inputs, attrs, shape, dtype); a resolved
        # input is either an int (serial of a traced tensor) or the leaf
        # Tensor itself (pinned here until the tape is built).
        self.entries: List[tuple] = []
        self._suspend = 0

    def _assign(self, tensor: Tensor) -> int:
        serial = self._serial
        self._serial += 1
        tensor._trace_id = (self.token, serial)
        return serial

    def mark_input(self, tensor: Tensor) -> None:
        """Register a forward argument before running the traced call."""
        self._assign(tensor)

    def record(self, out: Tensor, op: str, inputs: Tuple[Tensor, ...], attrs) -> None:
        """Called from the tensor-op fast path for every detached primitive."""
        if self._suspend:
            return
        resolved = []
        for tensor in inputs:
            trace_id = getattr(tensor, "_trace_id", None)
            if trace_id is not None and trace_id[0] == self.token:
                resolved.append(trace_id[1])
            else:
                resolved.append(tensor)  # leaf: pin the tensor itself
        serial = self._assign(out)
        self.entries.append((serial, op, tuple(resolved), attrs, out.data.shape, out.data.dtype))

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily stop recording (used while a fused primitive runs its
        eager decomposition, which would otherwise double-record)."""
        self._suspend += 1
        try:
            yield
        finally:
            self._suspend -= 1


@contextmanager
def trace_session() -> Iterator[TraceSession]:
    """Install a fresh session for the current thread, under ``no_grad()``."""
    if _trace_state.session is not None:
        raise TraceError("a jit trace is already active in this thread")
    session = TraceSession()
    _trace_state.session = session
    try:
        with no_grad():
            yield session
    finally:
        _trace_state.session = None


def build_tape(
    session: TraceSession,
    inputs: Sequence[Tensor],
    output: Tensor,
    param_ids: Dict[int, Tensor],
    supported_ops: frozenset,
) -> Tape:
    """Turn a finished session into a :class:`Tape`.

    ``param_ids`` maps ``id(parameter) -> parameter`` for the traced module,
    so leaves split into rebindable params versus snapshot constants.
    """
    if not isinstance(output, Tensor):
        raise TraceError(
            f"traced forward must return a single Tensor, got {type(output).__name__}"
        )
    slots: List[Slot] = []
    nodes: List[Node] = []
    by_serial: Dict[int, int] = {}
    by_leaf: Dict[int, int] = {}
    input_ids = {id(t): t for t in inputs}

    def add_slot(slot: Slot) -> int:
        slots.append(slot)
        return len(slots) - 1

    def leaf_slot(tensor: Tensor) -> int:
        key = id(tensor)
        index = by_leaf.get(key)
        if index is not None:
            return index
        if key in input_ids:
            kind, ref = KIND_INPUT, None
        elif key in param_ids:
            kind, ref = KIND_PARAM, tensor
        else:
            kind, ref = KIND_CONST, tensor.data
        index = add_slot(Slot(kind=kind, shape=tensor.data.shape, dtype=tensor.data.dtype, ref=ref))
        by_leaf[key] = index
        return index

    input_slots = [leaf_slot(t) for t in inputs]
    for tensor, slot in zip(inputs, input_slots):
        trace_id = getattr(tensor, "_trace_id", None)
        if trace_id is not None and trace_id[0] == session.token:
            by_serial[trace_id[1]] = slot

    for serial, op, resolved, attrs, shape, dtype in session.entries:
        if op not in supported_ops:
            raise TraceError(f"op {op!r} has no compiled replay kernel")
        node_inputs = tuple(
            by_serial[item] if isinstance(item, int) else leaf_slot(item)
            for item in resolved
        )
        out_slot = add_slot(
            Slot(kind=KIND_NODE, shape=tuple(shape), dtype=dtype, producer=len(nodes))
        )
        by_serial[serial] = out_slot
        nodes.append(Node(op=op, inputs=node_inputs, attrs=attrs, out=out_slot))

    trace_id = getattr(output, "_trace_id", None)
    if trace_id is not None and trace_id[0] == session.token:
        output_slot = by_serial[trace_id[1]]
    else:
        # Degenerate forward: the output is the input itself, a parameter,
        # or a tensor built outside the recorded ops (a constant).
        output_slot = leaf_slot(output)

    tape = Tape(slots=slots, nodes=nodes, input_slots=input_slots, output_slot=output_slot)
    tape.renumber_producers()
    return tape


def trace_module(
    module,
    example_inputs: Sequence[np.ndarray],
    supported_ops: frozenset,
) -> Tuple[Tape, np.ndarray]:
    """Trace ``module.forward`` on ``example_inputs``.

    The module is flipped to eval mode for the trace (and restored), exactly
    like :meth:`~repro.nn.module.Module.inference` — a compiled module *is*
    the inference fast path, so dropout must be off and no graph recorded.
    Returns the tape and the eager reference output for the self-check.
    """
    tensors = [Tensor(np.asarray(array)) for array in example_inputs]
    param_ids = {id(param): param for _, param in module.named_parameters()}
    was_training = module.training
    if was_training:
        module.eval()
    try:
        with trace_session() as session:
            for tensor in tensors:
                session.mark_input(tensor)
            output = module.forward(*tensors)
    finally:
        if was_training:
            module.train(True)
    tape = build_tape(session, tensors, output, param_ids, supported_ops)
    if not isinstance(output, Tensor):  # pragma: no cover - raised in build_tape
        raise TraceError("traced forward must return a Tensor")
    return tape, output.data
