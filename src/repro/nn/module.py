"""Module / Parameter abstractions, mirroring ``torch.nn.Module``.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
exposes ``parameters()`` / ``named_parameters()`` / ``state_dict()`` /
``load_state_dict()``, and tracks a ``training`` flag toggled by
:meth:`Module.train` / :meth:`Module.eval` (used by dropout).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import DTypeLike, Tensor, _validate_dtype, no_grad


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment (PyTorch-style)
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            if "_parameters" not in self.__dict__:
                raise AttributeError("Module.__init__() must be called before assigning parameters")
            self._parameters[name] = value
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise AttributeError("Module.__init__() must be called before assigning sub-modules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def requires_grad_(self, requires_grad: bool = True) -> "Module":
        """Set ``requires_grad`` on every parameter (e.g. to freeze a deployed model)."""
        for param in self.parameters():
            param.requires_grad = requires_grad
        return self

    # ------------------------------------------------------------------
    # Precision
    # ------------------------------------------------------------------
    def to(self, dtype: DTypeLike) -> "Module":
        """Cast every parameter to ``dtype`` in place (grads are dropped).

        This is the deployment-time precision switch: a float64 training
        checkpoint becomes a float32 serving artefact via
        ``model.to("float32")``.  Optimizer state is *not* migrated — cast
        before building the optimizer, or treat the cast model as frozen.
        """
        resolved = _validate_dtype(dtype)  # float32/float64, like the policy
        for param in self.parameters():
            param.data = param.data.astype(resolved, copy=False)
            param.grad = None
        return self

    @property
    def dtype(self) -> np.dtype:
        """The parameter dtype (of the first parameter; uniform by construction)."""
        for param in self.parameters():
            return param.data.dtype
        return np.dtype(np.float64)

    # ------------------------------------------------------------------
    # Inference fast path
    # ------------------------------------------------------------------
    def inference(self, *args, **kwargs):
        """Run :meth:`forward` in eval mode under :func:`~repro.nn.tensor.no_grad`.

        This is the serving-time entry point: dropout is disabled, no autograd
        graph is recorded, and no grad buffers are touched, so repeated calls
        are faster and allocate strictly less than a training-mode forward.
        The previous training/eval mode is restored afterwards.
        """
        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                return self.forward(*args, **kwargs)
        finally:
            if was_training:
                self.train(True)

    def compile(self, example=None, **kwargs):
        """Wrap this module in a :class:`~repro.nn.jit.CompiledModule`.

        The compiled wrapper has :meth:`inference` semantics (eval mode, no
        graph, detached output) but replays a traced, optimised op tape on raw
        arrays instead of re-running the eager forward — the serving hot
        path.  Tracing happens lazily on the first call per input-signature
        bucket; pass ``example`` to trace (and self-check) eagerly.  Keyword
        arguments (``max_buckets``, ``bucket_sizes``, ``self_check``,
        ``fast_math``, ``copy_output``) are forwarded to
        :class:`~repro.nn.jit.CompiledModule`.
        """
        from .jit import CompiledModule

        compiled = CompiledModule(self, **kwargs)
        if example is not None:
            compiled.warmup(np.asarray(example))
        return compiled

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping ``name -> ndarray copy`` of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a flat mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def copy_from(self, other: "Module") -> None:
        """Copy all parameter values from another module with the same structure."""
        self.load_state_dict(other.state_dict())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class ModuleList(Module):
    """Hold sub-modules in a list, registering each for parameter traversal."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        setattr(self, f"item{index}", module)
        self._items.append(module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container and has no forward()")
