"""1-D convolution and pooling layers.

These are used by the contrastive baselines (CL-HAR and TPN both use
convolutional encoders over the IMU time axis in their reference
implementations), not by the Saga backbone itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, ensure_tensor


def _sliding_windows(data: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Extract sliding windows over the time axis.

    ``data`` has shape ``(batch, length, channels)``; the result has shape
    ``(batch, out_length, kernel_size, channels)``.
    """
    batch, length, channels = data.shape
    out_length = (length - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, kernel_size, axis=1)
    # sliding_window_view returns (batch, length - k + 1, channels, kernel);
    # subsample by stride and reorder to (batch, out_length, kernel, channels).
    windows = windows[:, ::stride][:, :out_length]
    return np.ascontiguousarray(np.transpose(windows, (0, 1, 3, 2)))


class Conv1d(Module):
    """1-D convolution over sequences of shape ``(batch, length, in_channels)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        generator = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        # Weight shape: (kernel_size * in_channels, out_channels) so the
        # convolution reduces to an im2col matmul that autograd handles.
        self.weight = Parameter(
            init.kaiming_uniform((kernel_size * in_channels, out_channels), generator)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def output_length(self, input_length: int) -> int:
        """Length of the time axis after convolution."""
        padded = input_length + 2 * self.padding
        return (padded - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        data = x.data
        if self.padding > 0:
            pad_width = ((0, 0), (self.padding, self.padding), (0, 0))
            data = np.pad(data, pad_width)
        batch, length, channels = data.shape
        if channels != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {channels}"
            )
        out_length = (length - self.kernel_size) // self.stride + 1
        if out_length <= 0:
            raise ValueError(
                f"kernel_size {self.kernel_size} too large for input length {length}"
            )

        windows = _sliding_windows(data, self.kernel_size, self.stride)
        columns = windows.reshape(batch, out_length, self.kernel_size * channels)

        columns_tensor = Tensor(
            columns,
            requires_grad=x.requires_grad,
            _prev=(x,),
            _op="im2col",
        )

        stride, kernel_size, padding = self.stride, self.kernel_size, self.padding
        input_shape = x.data.shape

        def _backward() -> None:
            if columns_tensor.grad is None or not x.requires_grad:
                return
            grad_cols = columns_tensor.grad.reshape(batch, out_length, kernel_size, channels)
            grad_padded = np.zeros((batch, length, channels), dtype=grad_cols.dtype)
            for window_index in range(out_length):
                start = window_index * stride
                grad_padded[:, start:start + kernel_size, :] += grad_cols[:, window_index]
            if padding > 0:
                grad_input = grad_padded[:, padding:padding + input_shape[1], :]
            else:
                grad_input = grad_padded
            x._accumulate_grad(grad_input)

        columns_tensor._backward = _backward

        out = columns_tensor.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Conv1d(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class GlobalMaxPool1d(Module):
    """Max pooling over the entire time axis: ``(batch, length, channels) -> (batch, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).max(axis=1)


class GlobalAveragePool1d(Module):
    """Average pooling over the entire time axis."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).mean(axis=1)
