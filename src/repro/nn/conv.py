"""1-D convolution and pooling layers.

These are used by the contrastive baselines (CL-HAR and TPN both use
convolutional encoders over the IMU time axis in their reference
implementations), not by the Saga backbone itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from ..rng import make_rng

from . import init
from .module import Module, Parameter
from .tensor import Tensor, _detached, _grad_mode, ensure_tensor


def _sliding_windows(data: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Extract sliding windows over the time axis.

    ``data`` has shape ``(batch, length, channels)``; the result has shape
    ``(batch, out_length, kernel_size, channels)``.
    """
    batch, length, channels = data.shape
    out_length = (length - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, kernel_size, axis=1)
    # sliding_window_view returns (batch, length - k + 1, channels, kernel);
    # subsample by stride and reorder to (batch, out_length, kernel, channels).
    windows = windows[:, ::stride][:, :out_length]
    return np.ascontiguousarray(np.transpose(windows, (0, 1, 3, 2)))


def im2col(data: np.ndarray, kernel_size: int, stride: int, padding: int) -> np.ndarray:
    """Pad and unfold ``(batch, length, channels)`` into im2col columns.

    The result has shape ``(batch, out_length, kernel_size * channels)`` and
    is exactly the array :class:`Conv1d` feeds its weight matmul — this is the
    replay kernel for the ``im2col`` tape op recorded by the jit tracer.
    """
    if padding > 0:
        data = np.pad(data, ((0, 0), (padding, padding), (0, 0)))
    batch, length, channels = data.shape
    out_length = (length - kernel_size) // stride + 1
    windows = _sliding_windows(data, kernel_size, stride)
    return windows.reshape(batch, out_length, kernel_size * channels)


def col2im_accumulate(
    grad_cols: np.ndarray, kernel_size: int, stride: int, padded_length: int
) -> np.ndarray:
    """Scatter window gradients back onto the (padded) time axis.

    ``grad_cols`` has shape ``(batch, out_length, kernel_size, channels)``.
    Instead of looping over the ``out_length`` windows in python (the seed
    implementation), accumulate one strided slice per *kernel offset*: for a
    fixed offset the windows touch disjoint, ``stride``-spaced positions, so
    each of the ``kernel_size`` iterations is a single vectorised ``+=`` —
    ``kernel_size`` is 3–7 for every encoder in this repo while ``out_length``
    grows with the input, so the python-level loop count drops by ~10x.
    """
    batch, out_length, _, channels = grad_cols.shape
    grad_padded = np.zeros((batch, padded_length, channels), dtype=grad_cols.dtype)
    for offset in range(kernel_size):
        stop = offset + (out_length - 1) * stride + 1
        grad_padded[:, offset:stop:stride, :] += grad_cols[:, :, offset, :]
    return grad_padded


class Conv1d(Module):
    """1-D convolution over sequences of shape ``(batch, length, in_channels)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        generator = rng if rng is not None else make_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        # Weight shape: (kernel_size * in_channels, out_channels) so the
        # convolution reduces to an im2col matmul that autograd handles.
        self.weight = Parameter(
            init.kaiming_uniform((kernel_size * in_channels, out_channels), generator)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def output_length(self, input_length: int) -> int:
        """Length of the time axis after convolution."""
        padded = input_length + 2 * self.padding
        return (padded - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        data = x.data
        if self.padding > 0:
            pad_width = ((0, 0), (self.padding, self.padding), (0, 0))
            data = np.pad(data, pad_width)
        batch, length, channels = data.shape
        if channels != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {channels}"
            )
        out_length = (length - self.kernel_size) // self.stride + 1
        if out_length <= 0:
            raise ValueError(
                f"kernel_size {self.kernel_size} too large for input length {length}"
            )

        windows = _sliding_windows(data, self.kernel_size, self.stride)
        columns = windows.reshape(batch, out_length, self.kernel_size * channels)

        if _grad_mode.enabled and x.requires_grad:
            columns_tensor = Tensor(
                columns,
                requires_grad=True,
                _prev=(x,),
                _op="im2col",
            )

            stride, kernel_size, padding = self.stride, self.kernel_size, self.padding
            input_shape = x.data.shape

            def _backward() -> None:
                if columns_tensor.grad is None:
                    return
                grad_cols = columns_tensor.grad.reshape(batch, out_length, kernel_size, channels)
                grad_padded = col2im_accumulate(grad_cols, kernel_size, stride, length)
                if padding > 0:
                    grad_input = grad_padded[:, padding:padding + input_shape[1], :]
                else:
                    grad_input = grad_padded
                x._accumulate_grad(grad_input)

            columns_tensor._backward = _backward
        else:
            columns_tensor = _detached(
                columns,
                "im2col",
                (x,),
                {"kernel_size": self.kernel_size, "stride": self.stride, "padding": self.padding},
            )

        out = columns_tensor.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Conv1d(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class GlobalMaxPool1d(Module):
    """Max pooling over the entire time axis: ``(batch, length, channels) -> (batch, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).max(axis=1)


class GlobalAveragePool1d(Module):
    """Average pooling over the entire time axis."""

    def forward(self, x: Tensor) -> Tensor:
        return ensure_tensor(x).mean(axis=1)
