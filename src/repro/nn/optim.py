"""Gradient-based optimizers and learning-rate schedules.

The paper trains with Adam at learning rate 1e-3 (Section VII-A-1); SGD with
momentum is provided as well for ablations and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocities: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocities.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity - self.lr * grad
                self._velocities[id(param)] = velocity
                param.data = param.data + velocity
            else:
                param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moments: Dict[int, np.ndarray] = {}
        self._second_moments: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._first_moments.get(id(param))
            v = self._second_moments.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._first_moments[id(param)] = m
            self._second_moments[id(param)] = v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base class for learning-rate schedules operating on an optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        self.step_count += 1
        self.optimizer.lr = self.compute_lr(self.step_count)
        return self.optimizer.lr

    def compute_lr(self, step: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warm-up followed by constant learning rate."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int) -> None:
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.warmup_steps = warmup_steps

    def compute_lr(self, step: int) -> float:
        return self.base_lr * min(1.0, step / self.warmup_steps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in-place; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad = param.grad * scale
    return total
