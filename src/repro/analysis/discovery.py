"""File discovery: enumerate the python files one analysis run covers.

The analysis root defaults to the installed ``repro`` package directory, so
``python -m repro.analysis check`` needs no arguments in CI or locally —
wherever the package imports from is what gets checked.  Paths in findings
are reported relative to the root's *parent* (``repro/nn/layers.py``), so
reports read the same from any checkout location.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List

from ..exceptions import AnalysisError
from .core import FileContext

__all__ = ["default_root", "discover", "iter_source_files"]


def default_root() -> Path:
    """The ``repro`` package directory (what CI checks by default)."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Path) -> Iterator[Path]:
    root = Path(root)
    if root.is_file():
        yield root
        return
    if not root.is_dir():
        raise AnalysisError(f"analysis root {root} does not exist")
    yield from sorted(root.rglob("*.py"))


def module_name(path: Path, root: Path) -> str:
    """Dotted import path of ``path`` (``repro.nn.layers``)."""
    relative = path.resolve().relative_to(Path(root).resolve().parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def discover(root: Path) -> List[FileContext]:
    """Parse every python file under ``root`` into a :class:`FileContext`."""
    root = Path(root).resolve()
    base = root.parent if root.is_dir() else root.parent.parent
    contexts: List[FileContext] = []
    for path in iter_source_files(root):
        source = path.read_text(encoding="utf-8")
        relpath = path.resolve().relative_to(base).as_posix()
        contexts.append(
            FileContext(
                path=path,
                relpath=relpath,
                module=module_name(path, root if root.is_dir() else root.parent),
                source=source,
            )
        )
    return contexts
