"""Command-line entry point: ``python -m repro.analysis``.

Three subcommands, mirroring the :mod:`repro.experiments` CLI shape:

``check``
    The CI gate: run every checker over the tree (default: the installed
    ``repro`` package) and exit non-zero on any finding that is neither
    ``# repro: noqa[RULE]``-suppressed nor covered by the committed
    baseline.
``explain RULE``
    Print one rule's catalog entry — what it flags and the shipped-bug
    rationale behind it.
``update-baseline``
    Rewrite the baseline file from the current findings (pruning stale
    entries).  Adoption aid only; permanent exemptions belong inline.

Exit codes: 0 clean, 1 findings (or stale baseline under ``--strict``),
2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..exceptions import ReproError
from .baseline import Baseline, default_baseline_path
from .checkers import all_checkers, checker_index
from .discovery import default_root
from .engine import run_analysis
from .reporters import REPORTERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static-analysis checks (AST invariants) with a CI gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run every checker; non-zero exit on findings")
    check.add_argument("--root", type=Path, default=None,
                       help="tree to analyse (default: the installed repro package)")
    check.add_argument("--baseline", type=Path, default=None,
                       help="baseline file (default: analysis_baseline.json next to the tree; "
                            "a missing file is an empty baseline)")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore the baseline entirely (report grandfathered findings too)")
    check.add_argument("--rules", default=None,
                       help="comma-separated rule ids to run (default: all)")
    check.add_argument("--format", choices=sorted(REPORTERS), default="text")
    check.add_argument("--strict", action="store_true",
                       help="also fail when baseline entries are stale (fixed lines not pruned)")

    explain = sub.add_parser("explain", help="print one rule's catalog entry and rationale")
    explain.add_argument("rule", help="rule id, e.g. REP104")

    update = sub.add_parser("update-baseline",
                            help="rewrite the baseline from current findings (prunes stale entries)")
    update.add_argument("--root", type=Path, default=None)
    update.add_argument("--baseline", type=Path, default=None)
    update.add_argument("--rules", default=None)
    return parser


def _split_rules(raw: Optional[str]) -> Optional[Sequence[str]]:
    if raw is None:
        return None
    return [rule.strip() for rule in raw.split(",") if rule.strip()]


def _cmd_check(args: argparse.Namespace) -> int:
    root = args.root if args.root is not None else default_root()
    baseline_path = args.baseline if args.baseline is not None else default_baseline_path(root)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    result = run_analysis(
        root, all_checkers(), baseline=baseline, rules=_split_rules(args.rules)
    )
    print(REPORTERS[args.format](result))
    if not result.ok:
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    index = checker_index()
    rule = args.rule.strip().upper()
    checker = index.get(rule)
    if checker is None:
        print(
            f"unknown rule {args.rule!r}; known rules: {', '.join(sorted(index))}",
            file=sys.stderr,
        )
        return 2
    print(f"{checker.rule} ({checker.name})")
    print(f"  {checker.description}")
    print()
    print("  Why this rule exists:")
    print(f"  {checker.rationale}")
    print()
    print(f"  Suppress a deliberate exemption with `# repro: noqa[{checker.rule}]`"
          " plus a justification comment.")
    return 0


def _cmd_update_baseline(args: argparse.Namespace) -> int:
    root = args.root if args.root is not None else default_root()
    baseline_path = args.baseline if args.baseline is not None else default_baseline_path(root)
    result = run_analysis(
        root, all_checkers(), baseline=Baseline(), rules=_split_rules(args.rules)
    )
    path = Baseline.from_findings(result.findings).save(baseline_path)
    print(f"baseline: {len(result.findings)} finding(s) recorded in {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _cmd_check,
        "explain": _cmd_explain,
        "update-baseline": _cmd_update_baseline,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
