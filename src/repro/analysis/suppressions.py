"""Inline suppressions: ``# repro: noqa[RULE]`` comments.

A finding is suppressed when the physical line it anchors to carries a
``# repro: noqa[REP104]`` comment naming its rule (several rules separate
with commas), or a bare ``# repro: noqa`` covering every rule.  The marker
is deliberately distinct from ruff/flake8's ``# noqa`` so the two tools
never swallow each other's suppressions, and the project convention
(enforced by review, surfaced by ``explain``) is that every marker carries
a justification comment — exemptions are *documented decisions*, not
silence.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

from .core import Finding

__all__ = ["SuppressionIndex", "parse_suppressions"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Sentinel rule set meaning "suppress everything on this line".
_ALL = frozenset({"*"})


def parse_suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    for index, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressed[index] = _ALL
        else:
            suppressed[index] = frozenset(
                rule.strip().upper() for rule in rules.split(",") if rule.strip()
            )
    return suppressed


class SuppressionIndex:
    """Per-file noqa lookup built once from the source lines."""

    def __init__(self, lines: List[str]) -> None:
        self._by_line = parse_suppressions(lines)

    def covers(self, finding: Finding) -> bool:
        rules = self._by_line.get(finding.line)
        if rules is None:
            return False
        return rules is _ALL or "*" in rules or finding.rule.upper() in rules

    @property
    def count(self) -> int:
        return len(self._by_line)
