"""``python -m repro.analysis`` dispatches to :mod:`repro.analysis.cli`."""

import sys

from .cli import main

sys.exit(main())
