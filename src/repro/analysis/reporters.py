"""Reporters: render an :class:`~repro.analysis.engine.AnalysisResult`.

``text`` is the human/CI log format (one ``path:line:col: RULE message``
per finding, ruff-style, plus a summary line); ``json`` is the structured
format downstream tooling can diff or annotate PRs from.
"""

from __future__ import annotations

import json
from typing import Dict

from .engine import AnalysisResult

__all__ = ["render_json", "render_text", "REPORTERS"]


def render_text(result: AnalysisResult) -> str:
    lines = [finding.format() for finding in result.findings]
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"note: {sum(result.stale_baseline.values())} stale baseline "
            "entr(y/ies) no longer match any finding — run "
            "`python -m repro.analysis update-baseline` to prune:"
        )
        for key in sorted(result.stale_baseline):
            lines.append(f"  {key}")
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({len(result.baselined)} baselined, {len(result.suppressed)} noqa-suppressed) "
        f"across {result.files_checked} file(s), rules: {', '.join(result.rules)}"
    )
    if result.findings:
        by_rule = ", ".join(
            f"{rule}×{count}" for rule, count in sorted(result.counts_by_rule().items())
        )
        summary += f" — {by_rule}"
    lines.append(summary)
    return "\n".join(line for line in lines if line is not None)


def _finding_dict(finding) -> Dict[str, object]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
    }


def render_json(result: AnalysisResult) -> str:
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules": result.rules,
        "findings": [_finding_dict(f) for f in result.findings],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "stale_baseline": result.stale_baseline,
        "counts_by_rule": result.counts_by_rule(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
