"""repro.analysis — project-specific static analysis with a CI gate.

A stdlib-``ast`` framework plus a suite of checkers for the semantic
invariants generic linters cannot see, each grounded in a bug this codebase
actually shipped (see ``docs/ANALYSIS.md`` for the rule catalog):

========  ====================  =====================================================
REP101    dtype-policy          no hard-coded float precision in ``repro.nn`` op paths
REP102    determinism           no unseeded/global/time-seeded randomness outside ``repro.rng``
REP103    asyncio-hygiene       no blocking calls inside ``async def`` in ``repro.serving``
REP104    lock-discipline       ``_GUARDED_BY`` attributes only touched under their lock
REP105    exception-policy      subsystems raise the ``repro.exceptions`` hierarchy
REP106    annotation-integrity  every annotation root name resolves in its module
========  ====================  =====================================================

Run ``python -m repro.analysis check`` (the CI gate), ``explain REP104``
for a rule's shipped-bug rationale, or ``update-baseline`` to grandfather
findings during adoption.  Deliberate exemptions are inline:
``# repro: noqa[RULE]`` with a justification comment.
"""

from .baseline import Baseline, default_baseline_path
from .checkers import all_checkers, checker_index
from .core import Checker, FileContext, Finding
from .discovery import default_root, discover
from .engine import AnalysisResult, run_analysis
from .reporters import render_json, render_text

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "checker_index",
    "default_baseline_path",
    "default_root",
    "discover",
    "render_json",
    "render_text",
    "run_analysis",
]
