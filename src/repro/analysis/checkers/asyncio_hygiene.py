"""REP103 — asyncio hygiene: no blocking calls inside ``async def`` in ``repro.serving``.

The PR 8 gateway runs every connection on one asyncio event loop thread: a
single blocking call inside any coroutine — a ``time.sleep``, a synchronous
socket read, a ``Future.result()`` — stalls *every* in-flight connection at
once, turning one slow handler into a full-gateway outage.  The gateway's
own discipline is to bridge the threaded batcher with
``asyncio.wrap_future`` + ``await`` and to do all socket I/O through the
asyncio stream API; this rule makes that discipline checkable.

Flagged inside any ``async def`` in ``repro.serving`` modules:

* ``time.sleep(...)`` (use ``await asyncio.sleep``);
* synchronous file/socket/network I/O: builtin ``open``, ``socket.*``
  module calls, ``urllib.request.*``, ``subprocess.*``, ``os.system``;
* blocking synchronisation: ``<x>.acquire()`` / ``<x>.wait()`` /
  ``<x>.result()`` / ``<x>.get()``-on-a-queue calls that are **not**
  awaited (``await lock.acquire()`` on an asyncio primitive is fine —
  the ``Await`` wrapper is exactly what distinguishes the two APIs).

The rule is lexical: a nested *sync* ``def`` inside a coroutine is skipped
(it runs wherever it is called, typically an executor), and a nested
``async def`` is checked on its own.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..core import Checker, FileContext, Finding

__all__ = ["AsyncioHygieneChecker"]

_BLOCKING_QUALIFIED = {
    "time.sleep": "time.sleep() stalls the whole event loop; await asyncio.sleep()",
    "os.system": "os.system() blocks the event loop; use an executor",
    "urllib.request.urlopen": "synchronous HTTP blocks the event loop; use an executor",
    "subprocess.run": "subprocess.run() blocks the event loop; use asyncio.create_subprocess_exec",
    "subprocess.call": "subprocess.call() blocks the event loop; use asyncio.create_subprocess_exec",
    "subprocess.check_output": (
        "subprocess.check_output() blocks the event loop; use asyncio.create_subprocess_exec"
    ),
    "socket.create_connection": (
        "synchronous socket I/O blocks the event loop; use asyncio.open_connection"
    ),
}

_BLOCKING_MODULE_PREFIXES = {
    "socket.": "synchronous socket I/O blocks the event loop; use the asyncio stream API",
}

#: Method names that block when invoked synchronously on concurrency
#: primitives.  Only flagged when the call is not directly awaited.
_BLOCKING_METHODS = {
    "acquire": "blocking acquire() in a coroutine stalls the event loop; "
               "use an asyncio.Lock and `async with`",
    "wait": "blocking wait() in a coroutine stalls the event loop; "
            "await the asyncio equivalent",
    "result": "Future.result() blocks the event loop; "
              "await asyncio.wrap_future(future) instead",
}


class AsyncioHygieneChecker(Checker):
    rule = "REP103"
    name = "asyncio-hygiene"
    description = "no blocking calls inside async def in repro.serving"
    rationale = (
        "The PR 8 gateway multiplexes every connection onto one event loop "
        "thread; one blocking call in one coroutine freezes all in-flight "
        "requests simultaneously (admission control, health checks, drains "
        "included). The codebase bridges the threaded batcher via "
        "asyncio.wrap_future + await; anything that can block must go "
        "through the asyncio API or an executor."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.serving")

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_coroutine(ctx, node))
        return findings

    def _check_coroutine(
        self, ctx: FileContext, coroutine: ast.AsyncFunctionDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        awaited: Set[int] = set()
        skipped: Set[int] = set()

        for node in ast.walk(coroutine):
            # Sync defs nested in the coroutine run elsewhere — skip their
            # bodies (a nested async def is reached by the outer walk too,
            # and re-checked as its own coroutine there).
            if isinstance(node, ast.FunctionDef):
                for sub in ast.walk(node):
                    skipped.add(id(sub))
            elif isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))

        for node in ast.walk(coroutine):
            if node is coroutine or id(node) in skipped:
                continue
            if isinstance(node, ast.AsyncFunctionDef):
                for sub in ast.walk(node):
                    skipped.add(id(sub))
                continue
            if not isinstance(node, ast.Call):
                continue
            message = self._blocking_message(ctx, node, awaited)
            if message is not None:
                findings.append(ctx.finding(self.rule, node, message))
        return findings

    def _blocking_message(
        self, ctx: FileContext, node: ast.Call, awaited: Set[int]
    ) -> Optional[str]:
        resolved = ctx.imports.resolve_node(node.func)
        if resolved is not None:
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                return "synchronous file I/O blocks the event loop; use an executor"
            if resolved in _BLOCKING_QUALIFIED:
                return _BLOCKING_QUALIFIED[resolved]
            for prefix, message in _BLOCKING_MODULE_PREFIXES.items():
                if resolved.startswith(prefix):
                    return message
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_METHODS
            and id(node) not in awaited
        ):
            return _BLOCKING_METHODS[node.func.attr]
        return None
