"""REP105 — exception policy: subsystems raise the ``repro.exceptions`` hierarchy.

Callers of the subsystem APIs catch :class:`~repro.exceptions.ReproError`
subclasses — that is the contract the serving gateway's status-code mapping
(``QueueFullError`` → 429, other ``ServingError`` → 4xx/5xx), the
experiments CLI's exit codes and the test suites are all built on.  A bare
``ValueError`` from inside one of those subsystems escapes every one of
those handlers: PR 8's admission control, for example, can only translate
rejections it can *catch*.  The fix that motivated the rule was exactly
such a hole — serving errors that started life as builtins and bypassed the
gateway's error mapping until rewrapped.

Flagged: ``raise ValueError(...)`` / ``raise RuntimeError(...)`` (the two
generic builtins the hierarchy replaces) inside the subsystem packages that
own a domain exception — serving, obs, parallel, experiments, core,
evaluation, datasets, masking, training, bayesopt, deployment, baselines
and ``nn.jit``.  Deliberately out of scope: ``repro.nn`` (ex-jit),
``repro.signal`` and ``repro.rng`` — the low-level numeric library keeps
numpy's convention of ``ValueError`` for malformed array arguments, which
is what its callers (including our own ops) expect to catch.

Re-raises (``raise``), raising pre-built exception objects (``raise exc``)
and other builtins with precise semantics (``TypeError`` for wrong types,
``KeyError`` from mapping protocols, ``NotImplementedError``) are not
flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import Checker, FileContext, Finding

__all__ = ["ExceptionPolicyChecker"]

_BANNED = {"ValueError", "RuntimeError"}

#: Subsystem package prefixes (under ``repro.``) with a domain exception.
_SCOPED_PREFIXES = (
    "repro.serving",
    "repro.obs",
    "repro.parallel",
    "repro.experiments",
    "repro.core",
    "repro.evaluation",
    "repro.datasets",
    "repro.masking",
    "repro.training",
    "repro.bayesopt",
    "repro.deployment",
    "repro.baselines",
    "repro.nn.jit",
    "repro.analysis",
    "repro.faults",
)

#: The replacement to suggest per package (documentation in the finding).
_SUGGESTIONS = {
    "repro.serving": "ServingError",
    "repro.obs": "ObservabilityError",
    "repro.parallel": "ParallelError",
    "repro.experiments": "ConfigurationError/ReproError",
    "repro.core": "ConfigurationError/TrainingError",
    "repro.evaluation": "ConfigurationError",
    "repro.datasets": "DataError",
    "repro.masking": "MaskingError",
    "repro.training": "TrainingError/ConfigurationError",
    "repro.bayesopt": "SearchError",
    "repro.deployment": "DeploymentError",
    "repro.baselines": "ConfigurationError/TrainingError",
    "repro.nn.jit": "ConfigurationError/TraceError",
    "repro.analysis": "AnalysisError",
    "repro.faults": "FaultError",
}


class ExceptionPolicyChecker(Checker):
    rule = "REP105"
    name = "exception-policy"
    description = (
        "subsystem packages raise the repro.exceptions hierarchy, not bare "
        "ValueError/RuntimeError"
    )
    rationale = (
        "Admission control, CLI exit codes and retry classification all "
        "dispatch on ReproError subclasses (QueueFullError→429 is the "
        "canonical example). A bare ValueError from inside a subsystem "
        "bypasses every such handler and surfaces as an unclassified 500 / "
        "stack trace. The low-level numeric library (repro.nn ex-jit, "
        "repro.signal, repro.rng) deliberately keeps numpy's "
        "ValueError-for-bad-arguments convention and is out of scope."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return self._prefix_for(ctx.module) is not None

    @staticmethod
    def _prefix_for(module: str) -> Optional[str]:
        for prefix in _SCOPED_PREFIXES:
            if module == prefix or module.startswith(prefix + "."):
                return prefix
        return None

    def check(self, ctx: FileContext) -> List[Finding]:
        prefix = self._prefix_for(ctx.module)
        suggestion = _SUGGESTIONS.get(prefix, "a ReproError subclass")
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_builtin(node.exc)
            if name is not None:
                findings.append(
                    ctx.finding(
                        self.rule, node,
                        f"raise {name} escapes the repro.exceptions hierarchy "
                        f"callers dispatch on; raise {suggestion} instead",
                    )
                )
        return findings

    @staticmethod
    def _raised_builtin(exc: ast.expr) -> Optional[str]:
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            if exc.func.id in _BANNED:
                return exc.func.id
        elif isinstance(exc, ast.Name) and exc.id in _BANNED:
            return exc.id
        return None
