"""REP106 — annotation integrity: every name used in a type annotation resolves.

The shipped bug (PR 6 era, fixed in ``repro.serving.telemetry``): under
``from __future__ import annotations`` every annotation is a string that is
never evaluated, so ``self._first_request_at: Optional[float] = None``
imports cleanly and runs forever with ``Optional`` missing from the module
— runtime never notices, and ``typing.get_type_hints`` cannot help because
attribute annotations inside method bodies are not stored anywhere.

Originally closed as a standalone test (``tests/test_annotation_integrity``)
that *imported* each module and checked ``vars(module)``; ported here as a
pure AST pass so all repo invariants live in one engine: module-level
bindings are collected statically (imports — including conditional ones
inside ``if``/``try`` blocks —, assignments, def/class statements, loop and
context-manager targets), and every root identifier of every annotation
expression (variable/attribute annotations, arguments, return types,
recursing into string-literal annotations) must resolve against those
bindings or builtins.  Deleting the ``Optional`` import from any module
that annotates with it produces a finding immediately, no import required.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, List, Set

from ..core import Checker, FileContext, Finding

__all__ = ["AnnotationIntegrityChecker"]

_IMPLICIT_GLOBALS = {
    "__name__", "__doc__", "__package__", "__loader__", "__spec__",
    "__file__", "__path__", "__builtins__", "__annotations__",
}


def _iter_annotation_exprs(tree: ast.AST) -> Iterator[ast.expr]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            yield node.annotation
        elif isinstance(node, ast.arg) and node.annotation is not None:
            yield node.annotation
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.returns:
            yield node.returns


def _names_in_annotation(expr: ast.expr) -> Set[str]:
    """Root identifiers referenced by one annotation expression.

    String-literal annotations (``"Future[np.ndarray]"``) are parsed and
    recursed into; an attribute chain like ``np.ndarray`` contributes only
    its root ``np`` (the attribute is resolved by that module, not ours).
    """
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                continue  # a plain string payload in Annotated[...] etc.
            names.update(_names_in_annotation(inner))
    return names


def _bind_target(target: ast.expr, bound: Set[str]) -> None:
    if isinstance(target, ast.Name):
        bound.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, bound)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, bound)


def module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound in the module namespace by import-time execution.

    Recurses into module-level compound statements (``if``/``try``/loops/
    ``with`` all execute at import) but not into function or class bodies —
    names bound there are not module globals, matching what the original
    import-based checker saw in ``vars(module)``.
    """
    bound: Set[str] = set(_IMPLICIT_GLOBALS)

    def visit(statements) -> None:
        for statement in statements:
            if isinstance(statement, ast.Import):
                for item in statement.names:
                    bound.add(item.asname or item.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for item in statement.names:
                    if item.name != "*":
                        bound.add(item.asname or item.name)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    _bind_target(target, bound)
            elif isinstance(statement, ast.AnnAssign):
                _bind_target(statement.target, bound)
            elif isinstance(statement, ast.AugAssign):
                _bind_target(statement.target, bound)
            elif isinstance(statement, (ast.If, ast.While)):
                visit(statement.body)
                visit(statement.orelse)
            elif isinstance(statement, (ast.For, ast.AsyncFor)):
                _bind_target(statement.target, bound)
                visit(statement.body)
                visit(statement.orelse)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if item.optional_vars is not None:
                        _bind_target(item.optional_vars, bound)
                visit(statement.body)
            elif isinstance(statement, ast.Try):
                visit(statement.body)
                for handler in statement.handlers:
                    if handler.name:
                        bound.add(handler.name)
                    visit(handler.body)
                visit(statement.orelse)
                visit(statement.finalbody)

    visit(tree.body)
    # Module-level walrus targets (rare, but they do bind globals).
    for statement in tree.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for node in ast.walk(statement):
                if isinstance(node, ast.NamedExpr):
                    _bind_target(node.target, bound)
    return bound


class AnnotationIntegrityChecker(Checker):
    rule = "REP106"
    name = "annotation-integrity"
    description = "every root name used in a type annotation must resolve in the module"
    rationale = (
        "from __future__ import annotations makes every annotation a string "
        "that is never evaluated: the telemetry collector shipped with "
        "Optional annotated but not imported, importing cleanly and running "
        "forever one typo away from a NameError. Static resolution of every "
        "annotation root (including string annotations and attribute "
        "annotations inside method bodies, which get_type_hints never sees) "
        "catches the whole class at check time."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        bound = module_bindings(ctx.tree)
        findings: List[Finding] = []
        for annotation in _iter_annotation_exprs(ctx.tree):
            for name in sorted(_names_in_annotation(annotation)):
                if name in bound or hasattr(builtins, name):
                    continue
                findings.append(
                    ctx.finding(
                        self.rule, annotation,
                        f"annotation references {name!r}, which is bound "
                        "nowhere in the module namespace",
                    )
                )
        return findings
