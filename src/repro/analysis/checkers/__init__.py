"""Checker registry: every project invariant the analysis gate enforces."""

from __future__ import annotations

from typing import Dict, List

from ..core import Checker
from .annotations import AnnotationIntegrityChecker
from .asyncio_hygiene import AsyncioHygieneChecker
from .determinism import DeterminismChecker
from .dtype_policy import DtypePolicyChecker
from .exception_policy import ExceptionPolicyChecker
from .lock_discipline import LockDisciplineChecker
from .swallowed_exceptions import SwallowedExceptionChecker

__all__ = [
    "AnnotationIntegrityChecker",
    "AsyncioHygieneChecker",
    "DeterminismChecker",
    "DtypePolicyChecker",
    "ExceptionPolicyChecker",
    "LockDisciplineChecker",
    "SwallowedExceptionChecker",
    "all_checkers",
    "checker_index",
]


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, in rule-id order."""
    return [
        DtypePolicyChecker(),
        DeterminismChecker(),
        AsyncioHygieneChecker(),
        LockDisciplineChecker(),
        ExceptionPolicyChecker(),
        AnnotationIntegrityChecker(),
        SwallowedExceptionChecker(),
    ]


def checker_index() -> Dict[str, Checker]:
    return {checker.rule: checker for checker in all_checkers()}
