"""REP102 — determinism: no unseeded or time-derived randomness outside ``repro.rng``.

The shipped bug behind this rule: the ``Dropout`` module silently fell back
to an unseeded ``np.random.default_rng()`` when no generator was supplied,
so every training run drew different masks regardless of the experiment
seed — run-to-run reproducibility broke with zero visible failure (fixed in
PR 4 by making a generator mandatory in training mode).  The contract since:
every stochastic component takes an explicit ``numpy.random.Generator``,
and the *only* module allowed to mint entropy is :mod:`repro.rng` — its
``make_rng()`` is the single audited escape hatch for callers that
explicitly opt out of seeding.

Flagged anywhere under ``src/repro`` except ``rng.py`` itself:

* calls through numpy's **global** stream (``np.random.rand``,
  ``np.random.seed``, ``np.random.shuffle``, …) — global-stream state is
  invisible cross-module coupling even when seeded;
* seedless ``np.random.default_rng()`` / ``np.random.Generator`` /
  stdlib ``random.Random()`` construction;
* stdlib ``random`` module-level draws (``random.random()``, …);
* seeds derived from wall-clock or process identity (``time.time()``,
  ``time.time_ns()``, ``os.urandom``, ``os.getpid``, ``uuid.uuid4``) passed
  to any generator constructor — a "seeded" stream that can never be
  replayed is still nondeterministic.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import Checker, FileContext, Finding

__all__ = ["DeterminismChecker"]

#: numpy.random attributes that are classes/constructors, not global draws.
_NP_RANDOM_NON_DRAWS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "RandomState",
    "default_rng",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: stdlib ``random`` attributes that are not module-level draws.
_STDLIB_RANDOM_NON_DRAWS = {"Random", "SystemRandom", "seed"}

#: Generator constructors whose seed argument must be replayable.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
    "repro.rng.make_rng",
}

_ENTROPY_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getpid",
    "uuid.uuid4",
    "uuid.uuid1",
}


class DeterminismChecker(Checker):
    rule = "REP102"
    name = "determinism"
    description = (
        "stochastic code must take an explicit seeded Generator; only "
        "repro.rng mints entropy"
    )
    rationale = (
        "The Dropout fallback bug (fixed in PR 4): a silent unseeded "
        "np.random.default_rng() fallback made every training run "
        "irreproducible with no visible failure. All randomness flows from "
        "an explicit numpy Generator derived from the experiment seed "
        "(repro.rng.RNGRegistry); repro.rng.make_rng() is the one audited "
        "place a caller may opt out of seeding, so unseeded/global-stream/"
        "time-seeded draws anywhere else are latent reproducibility bugs."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module != "repro.rng"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve_node(node.func)
            if resolved is None:
                continue
            finding = self._check_resolved_call(ctx, node, resolved)
            if finding is not None:
                findings.append(finding)
        return findings

    def _check_resolved_call(
        self, ctx: FileContext, node: ast.Call, resolved: str
    ) -> Optional[Finding]:
        # Global numpy stream: np.random.<draw>(...)
        if resolved.startswith("numpy.random."):
            tail = resolved.split(".", 2)[2]
            if tail == "seed":
                return ctx.finding(
                    self.rule, node,
                    "np.random.seed() mutates hidden global state; pass "
                    "seeded Generators explicitly",
                )
            if "." not in tail and tail not in _NP_RANDOM_NON_DRAWS:
                return ctx.finding(
                    self.rule, node,
                    f"np.random.{tail}() draws from the global stream; take "
                    "an explicit np.random.Generator instead",
                )

        # Stdlib random module-level draws: random.random(), random.choice()…
        if resolved.startswith("random.") and resolved.count(".") == 1:
            tail = resolved.split(".")[1]
            if tail not in _STDLIB_RANDOM_NON_DRAWS:
                return ctx.finding(
                    self.rule, node,
                    f"random.{tail}() draws from the interpreter-global "
                    "stream; use a seeded random.Random or numpy Generator",
                )
            if tail == "seed":
                return ctx.finding(
                    self.rule, node,
                    "random.seed() mutates hidden global state; construct "
                    "a seeded random.Random instead",
                )

        # Seedless / time-seeded generator construction.
        if resolved in _SEEDED_CONSTRUCTORS and resolved != "repro.rng.make_rng":
            if not node.args and not any(k.arg in ("seed", "entropy", "x") for k in node.keywords):
                short = resolved.replace("numpy.random", "np.random")
                return ctx.finding(
                    self.rule, node,
                    f"seedless {short}() is OS-entropy randomness; derive the "
                    "generator from the experiment seed, or call "
                    "repro.rng.make_rng() where opting out is intended",
                )
        if resolved in _SEEDED_CONSTRUCTORS:
            entropy = self._entropy_argument(ctx, node)
            if entropy is not None:
                return ctx.finding(
                    self.rule, node,
                    f"seed derived from {entropy}() can never be replayed; "
                    "derive it from the experiment seed",
                )
        return None

    def _entropy_argument(self, ctx: FileContext, node: ast.Call) -> Optional[str]:
        candidates = list(node.args) + [k.value for k in node.keywords]
        for argument in candidates:
            for sub in ast.walk(argument):
                if isinstance(sub, ast.Call):
                    resolved = ctx.imports.resolve_node(sub.func)
                    if resolved in _ENTROPY_SOURCES:
                        return resolved
        return None
