"""REP101 — dtype policy: no hard-coded float precision in ``repro.nn`` op paths.

The PR 4 bug class: under NEP 50, a wrapped python scalar or ``np.float64``
constant is a *strong* float64 and silently promotes a float32 forward pass
back to float64 — the model "works", at half the serving throughput the
precision policy was built to deliver.  The fix made every op preserve
operand dtype and construct new arrays in the policy dtype
(``get_default_dtype()``) or an operand's dtype.  This rule keeps it that
way by flagging hard-coded float precision in *construction* contexts:

* ``np.float64(x)`` / ``np.float32(x)`` scalar wrappers (strong scalars
  under NEP 50 — exactly the shipped promotion bug);
* ``dtype=np.float64`` / ``dtype="float64"`` (and the float32 spellings)
  keyword arguments, and ``.astype(np.float64)``-style hard-coded casts;
* the float64-defaulting constructors (``np.zeros``/``ones``/``empty``/
  ``full``/``eye``/``identity``/``linspace``) called without an explicit
  ``dtype`` (keyword or the signature's positional slot) — a bare
  ``np.zeros(n)`` mints float64 regardless of the policy.

Dtype *tests* (``x.dtype == np.float32`` — the JIT strength-reduction
gates) promote nothing and are not flagged.  Integer/bool dtypes are exempt
(indices and masks are precision-neutral), and so are the policy-definition
and exchange surfaces themselves — ``tensor.py``/``module.py`` (the
policy), ``serialization.py`` (checkpoints record their dtype by design)
and ``utils.py`` (flat float64 vectors are the all-reduce wire contract) —
the rule polices the *op* modules that must follow the policy, not the
modules that define it.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import Checker, FileContext, Finding, call_keyword

__all__ = ["DtypePolicyChecker"]

#: numpy constructors whose default dtype is float64, with the 0-based
#: positional index of their ``dtype`` parameter.
_FLOAT64_CONSTRUCTORS = {
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.eye": 3,
    "numpy.identity": 1,
    "numpy.linspace": 5,
}

_HARDCODED_FLOATS = {"numpy.float64", "numpy.float32"}
_HARDCODED_STRINGS = {"float64", "float32"}

#: Modules inside ``repro.nn`` that define (rather than follow) the policy.
_POLICY_MODULES = {
    "repro.nn.tensor",
    "repro.nn.module",
    "repro.nn.serialization",
    "repro.nn.utils",
}


class DtypePolicyChecker(Checker):
    rule = "REP101"
    name = "dtype-policy"
    description = (
        "repro.nn op paths must not hard-code float dtypes or call "
        "float64-defaulting constructors without an explicit dtype"
    )
    rationale = (
        "PR 4 shipped the NEP-50 scalar-promotion bug: np.float64 constants "
        "and dtype-less constructors silently upcast float32 forwards to "
        "float64, costing ~1.7x serving throughput with zero visible failure. "
        "Ops must construct in get_default_dtype() or an operand's dtype; "
        "only repro.nn.tensor/module define the policy, and "
        "serialization/utils exchange float64 deliberately (checkpoint and "
        "all-reduce wire formats). Dtype comparisons are fine — hard-coded "
        "construction precision is not."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.nn") and ctx.module not in _POLICY_MODULES

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node))
        return findings

    def _hardcoded_float(self, ctx: FileContext, node: ast.expr) -> Optional[str]:
        """The offending spelling when ``node`` hard-codes a float dtype."""
        resolved = ctx.imports.resolve_node(node)
        if resolved in _HARDCODED_FLOATS:
            return f"np.{resolved.split('.')[-1]}"
        if isinstance(node, ast.Constant) and node.value in _HARDCODED_STRINGS:
            return f'"{node.value}"'
        return None

    def _check_call(self, ctx: FileContext, node: ast.Call) -> List[Finding]:
        findings: List[Finding] = []
        advice = "use get_default_dtype() or an operand's dtype"

        # np.float64(x) — a strong scalar under NEP 50.
        func_resolved = ctx.imports.resolve_node(node.func)
        if func_resolved in _HARDCODED_FLOATS:
            findings.append(
                ctx.finding(
                    self.rule, node,
                    f"np.{func_resolved.split('.')[-1]}(...) wraps a strong "
                    f"scalar that promotes float32 operands; {advice}",
                )
            )

        # dtype=<hard-coded float> keyword on any call.
        dtype_kw = call_keyword(node, "dtype")
        if dtype_kw is not None:
            spelling = self._hardcoded_float(ctx, dtype_kw)
            if spelling is not None:
                findings.append(
                    ctx.finding(
                        self.rule, dtype_kw,
                        f"hard-coded dtype={spelling} defeats the precision "
                        f"policy; {advice}",
                    )
                )

        # x.astype(np.float64) — a hard-coded cast.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            spelling = self._hardcoded_float(ctx, node.args[0])
            if spelling is not None:
                findings.append(
                    ctx.finding(
                        self.rule, node.args[0],
                        f".astype({spelling}) hard-codes float precision; {advice}",
                    )
                )

        # np.zeros(n) and friends — float64 by default.
        if func_resolved in _FLOAT64_CONSTRUCTORS:
            dtype_position = _FLOAT64_CONSTRUCTORS[func_resolved]
            if dtype_kw is None and len(node.args) <= dtype_position:
                findings.append(
                    ctx.finding(
                        self.rule, node,
                        f"{func_resolved.replace('numpy', 'np')}() without "
                        "dtype= mints float64 regardless of the precision policy",
                    )
                )
        return findings
