"""REP104 — lock discipline: ``_GUARDED_BY`` attributes only touched under their lock.

The shared-state classes in ``obs.metrics``, ``obs.tracing``,
``serving.batcher`` and ``serving.telemetry`` are hit concurrently by the
serving worker pool, the parallel trainer and exporter threads.  Their
locking protocols exist only as convention — nothing stops a future method
from reading ``self._queue`` without ``self._lock`` and shipping a
heisenbug.  This rule makes the protocol declarative and checkable: a class
states

.. code-block:: python

    _GUARDED_BY = {"_lock": ("_queue", "_closed")}

(mapping each lock attribute to the attributes it guards; an attribute may
appear under several locks — e.g. a ``Condition`` constructed over the same
underlying ``Lock`` — and holding *any* of them suffices).  Every
``self.<attr>`` access to a guarded attribute must then sit lexically
inside a ``with self.<lock>:`` block in the same method.

``__init__`` is exempt (the object is not shared before construction
returns), and deliberately lock-free fast paths (the tracer's GIL-atomic
``deque.append`` hot path) opt out per line with ``# repro: noqa[REP104]``
plus a justification — the exemption is then visible in the diff and the
rule still covers every other access.

The declaration must be a literal dict of ``str`` → tuple/list of ``str``;
anything else is itself reported (a guard that cannot be parsed guards
nothing).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..core import Checker, FileContext, Finding

__all__ = ["LockDisciplineChecker"]

_DECLARATION = "_GUARDED_BY"
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}


def _parse_declaration(node: ast.Assign) -> Optional[Dict[str, Tuple[str, ...]]]:
    try:
        value = ast.literal_eval(node.value)
    except (ValueError, SyntaxError):
        return None
    if not isinstance(value, dict):
        return None
    parsed: Dict[str, Tuple[str, ...]] = {}
    for lock, attrs in value.items():
        if not isinstance(lock, str) or not isinstance(attrs, (tuple, list)):
            return None
        if not all(isinstance(attr, str) for attr in attrs):
            return None
        parsed[lock] = tuple(attrs)
    return parsed


class LockDisciplineChecker(Checker):
    rule = "REP104"
    name = "lock-discipline"
    description = (
        "_GUARDED_BY-declared attributes may only be accessed inside "
        "`with self.<lock>:`"
    )
    rationale = (
        "MicroBatcher, TelemetryCollector, the metrics registry children and "
        "the tracer are mutated from many threads (serving workers, parallel "
        "trainer, exporter scrapes). Their lock protocols were folklore; a "
        "method touching self._queue without self._lock ships a rare-loss "
        "heisenbug no test reliably catches. _GUARDED_BY turns the protocol "
        "into a checked declaration; the tracer's GIL-atomic append path "
        "opts out explicitly with noqa so the exemption is visible."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> List[Finding]:
        declaration: Optional[Dict[str, Tuple[str, ...]]] = None
        declaration_node: Optional[ast.Assign] = None
        for statement in cls.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == _DECLARATION
            ):
                declaration_node = statement
                declaration = _parse_declaration(statement)
        if declaration_node is None:
            return []
        if declaration is None:
            return [
                ctx.finding(
                    self.rule, declaration_node,
                    f"{_DECLARATION} must be a literal dict mapping lock "
                    "attribute names to tuples of guarded attribute names",
                )
            ]

        guards: Dict[str, Set[str]] = {}
        for lock, attrs in declaration.items():
            for attr in attrs:
                guards.setdefault(attr, set()).add(lock)
        if not guards:
            return []

        findings: List[Finding] = []
        for statement in cls.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name not in _EXEMPT_METHODS
            ):
                findings.extend(
                    self._check_method(ctx, cls.name, statement, guards)
                )
        return findings

    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: ast.AST,
        guards: Dict[str, Set[str]],
    ) -> List[Finding]:
        findings: List[Finding] = []

        def held_after(node: ast.AST, held: Set[str]) -> None:
            """Recurse, tracking which locks the `with` nesting holds."""
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in node.items:
                    lock = self._self_attribute(item.context_expr)
                    if lock is not None:
                        acquired.add(lock)
                for child in node.body:
                    held_after(child, acquired)
                # `with` item expressions themselves are evaluated unlocked.
                for item in node.items:
                    visit_expr(item.context_expr, held)
                return
            if isinstance(node, ast.Attribute):
                visit_expr(node, held)
                return
            for child in ast.iter_child_nodes(node):
                held_after(child, held)

        def visit_expr(node: ast.AST, held: Set[str]) -> None:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Attribute):
                    continue
                attr = self._self_attribute(sub)
                if attr is None or attr not in guards:
                    continue
                if guards[attr] & held:
                    continue
                findings.append(
                    ctx.finding(
                        self.rule, sub,
                        f"{class_name}.{attr} is declared _GUARDED_BY "
                        f"{sorted(guards[attr])} but is accessed without "
                        "holding any of them",
                    )
                )

        for child in ast.iter_child_nodes(method):
            held_after(child, set())
        return findings

    @staticmethod
    def _self_attribute(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None
