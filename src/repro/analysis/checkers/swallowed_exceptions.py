"""REP107 — swallowed exceptions: every handler re-raises, raises, or records.

The fault-injection work (PR 10) made exception handlers load-bearing: the
parallel engine's respawn path, the forward-path quarantine and the registry
rollback all *depend* on failures being observable.  A handler whose body is
``pass`` (or only rebinds a variable-free constant) erases the failure — the
chaos suite can inject a fault and CI still goes green because nothing saw
it.  The rule enforces the failure-visibility floor on the subsystems with
recovery semantics: a handler must either re-raise, raise a domain
exception, or *do something observable* (log, count a metric, send an error
reply, record state).

Mechanically, an ``except`` handler is flagged when its body contains no
statement that could plausibly surface or react to the failure: no
``raise``, no call (loggers, metric ``.inc()``, ``conn.send``), no
assignment (recording the exception into state), no ``await``/``yield``,
and no ``return``/``continue``/``break`` *carrying a call or name* — i.e.
bodies made only of ``pass``, bare control flow and constants.

``return``/``continue``/``break`` alone do **not** count as handling: they
are exactly how failures get silently skipped.  Handlers that legitimately
*must* swallow (asyncio teardown races, best-effort pipe closes) carry an
inline ``# repro: noqa[REP107]`` with a justification — the suppression is
the documentation.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import Checker, FileContext, Finding

__all__ = ["SwallowedExceptionChecker"]

#: Packages with recovery/observability semantics where a silent handler is
#: a correctness bug, not a style preference.
_SCOPED_PREFIXES = (
    "repro.serving",
    "repro.parallel",
    "repro.obs",
    "repro.faults",
)

#: Statement types whose presence means the handler *reacted*: raising,
#: calling (log/metric/reply), recording into state, or yielding control.
_HANDLING_NODES = (
    ast.Raise,
    ast.Call,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
)


class SwallowedExceptionChecker(Checker):
    rule = "REP107"
    name = "swallowed-exceptions"
    description = (
        "except handlers in recovery-bearing subsystems must re-raise, raise "
        "a domain exception, or observably record the failure"
    )
    rationale = (
        "Self-healing paths (worker respawn, tape quarantine, registry "
        "rollback) only work when failures are seen. A bare `except: pass` "
        "erases the very signal the chaos suite injects, so a regression in "
        "a recovery path can pass CI silently. Handlers that must swallow "
        "(teardown races, best-effort closes) document why with an inline "
        "`# repro: noqa[REP107]`."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return self._in_scope(ctx.module)

    @staticmethod
    def _in_scope(module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _SCOPED_PREFIXES
        )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handles(node):
                continue
            caught = self._caught_names(node)
            findings.append(
                ctx.finding(
                    self.rule, node,
                    f"except handler for {caught} swallows the failure "
                    "(no raise, call, assignment or await in its body); "
                    "re-raise, raise a domain exception, or record it "
                    "(log/metric/state)",
                )
            )
        return findings

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, _HANDLING_NODES):
                    return True
        return False

    @staticmethod
    def _caught_names(handler: ast.ExceptHandler) -> str:
        def name_of(node: Optional[ast.expr]) -> str:
            if node is None:
                return "<all>"
            if isinstance(node, ast.Name):
                return node.id
            if isinstance(node, ast.Attribute):
                return node.attr
            if isinstance(node, ast.Tuple):
                return "(" + ", ".join(name_of(el) for el in node.elts) + ")"
            return "<expr>"

        return name_of(handler.type)
