"""Core types of the static-analysis framework: rules, findings, checkers.

A :class:`Checker` encodes one repo-specific semantic invariant as an AST
pass.  Each produces typed :class:`Finding`\\ s (rule id, path, line,
message) over one parsed file (:class:`FileContext`); the engine
(:mod:`repro.analysis.engine`) handles discovery, inline suppressions and
the committed baseline.  Checkers are *pure*: they read the AST and source,
never import the module under analysis, and never touch global state — so
the whole suite runs in well under a second over ``src/repro`` and can gate
CI next to ruff.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import AnalysisError

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "ImportMap",
    "qualified_name",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line.

    Findings order by location so reports are stable, and ``content_key``
    (rule + path + the stripped source line) is the baseline identity:
    grandfathered findings keep matching after unrelated edits shift line
    numbers, and disappear from the baseline once the offending line is
    fixed or removed.
    """

    path: str  # POSIX-style, relative to the analysis root's parent
    line: int
    col: int
    rule: str
    message: str
    source_line: str = field(default="", compare=False)

    @property
    def content_key(self) -> str:
        return f"{self.rule}|{self.path}|{self.source_line.strip()}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """One parsed source file handed to every checker.

    ``module`` is the dotted import path (``repro.nn.layers``); checkers use
    it for scoping (REP101 only looks at ``repro.nn`` op paths, REP103 only
    at ``repro.serving``).  The AST is parsed once and shared.
    """

    def __init__(self, path: Path, relpath: str, module: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.module = module
        self.source = source
        self.lines: List[str] = source.splitlines()
        try:
            self.tree: ast.Module = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - repo code always parses
            raise AnalysisError(f"cannot parse {relpath}: {exc}") from exc
        self._import_map: Optional[ImportMap] = None

    @classmethod
    def from_source(
        cls,
        source: str,
        module: str = "repro.example",
        path: Optional[str] = None,
        relpath: Optional[str] = None,
    ) -> "FileContext":
        """Build a context from an in-memory snippet (fixture tests)."""
        default = module.replace(".", "/") + ".py"
        return cls(
            path=Path(path or default),
            relpath=relpath or path or default,
            module=module,
            source=source,
        )

    @property
    def imports(self) -> "ImportMap":
        if self._import_map is None:
            self._import_map = ImportMap.from_tree(self.tree)
        return self._import_map

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            path=self.relpath,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            source_line=self.line_text(lineno),
        )


class Checker:
    """Base class: one rule id, one invariant, one AST pass per file.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` is the shipped-bug story behind the rule — surfaced by
    ``python -m repro.analysis explain RULE`` so a developer hitting the
    gate learns *why* the invariant exists, not just that it tripped.
    """

    rule: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx):
            return []
        return self.check(ctx)


class ImportMap:
    """Resolve local names/attribute chains to qualified dotted names.

    Built from a module's import statements so checkers can recognise
    ``np.random.default_rng`` regardless of the alias numpy was imported
    under (``import numpy as np``, ``from numpy import random as npr``, …).
    """

    def __init__(self, aliases: Dict[str, str]) -> None:
        self._aliases = dict(aliases)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    aliases[local] = item.name if item.asname else item.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
        return cls(aliases)

    def resolve(self, dotted: str) -> str:
        """Map ``np.random.rand`` to ``numpy.random.rand`` (or itself)."""
        root, _, rest = dotted.partition(".")
        base = self._aliases.get(root)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base

    def resolve_node(self, node: ast.AST) -> Optional[str]:
        dotted = qualified_name(node)
        if dotted is None:
            return None
        return self.resolve(dotted)


def qualified_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` → ``"np.random.default_rng"``; chains rooted
    in calls or subscripts (``x().attr``) return ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name`` on a call, if present."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def walk_scoped(
    tree: ast.AST, kinds: Tuple[type, ...]
) -> Sequence[ast.AST]:
    """``ast.walk`` filtered to ``kinds`` (tiny convenience used by checkers)."""
    return [node for node in ast.walk(tree) if isinstance(node, kinds)]
