"""Analysis engine: discovery → checkers → suppressions → baseline.

One :func:`run_analysis` call is one gate evaluation: parse every file under
the root once, run every registered checker over each parsed context, drop
findings covered by inline ``# repro: noqa[RULE]`` markers, then partition
the remainder against the committed baseline.  The gate passes when no
*active* finding survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..exceptions import AnalysisError
from .baseline import Baseline
from .core import Checker, Finding
from .discovery import discover
from .suppressions import SuppressionIndex

__all__ = ["AnalysisResult", "run_analysis"]


@dataclass
class AnalysisResult:
    """Everything one gate evaluation learned."""

    root: Path
    files_checked: int
    rules: List[str]
    findings: List[Finding] = field(default_factory=list)  # active → gate fails
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def run_analysis(
    root: Path,
    checkers: Sequence[Checker],
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Run ``checkers`` over every python file under ``root``.

    ``rules`` optionally restricts the run to a subset of rule ids (the CLI's
    ``--rules``); unknown ids raise so a typo cannot silently disable a gate.
    """
    selected = list(checkers)
    if rules is not None:
        wanted = {rule.upper() for rule in rules}
        known = {checker.rule for checker in selected}
        unknown = wanted - known
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) {sorted(unknown)}; known rules: {sorted(known)}"
            )
        selected = [checker for checker in selected if checker.rule in wanted]

    contexts = discover(Path(root))
    raw: List[Finding] = []
    suppressed: List[Finding] = []
    for ctx in contexts:
        index = SuppressionIndex(ctx.lines)
        for checker in selected:
            for finding in checker.run(ctx):
                if index.covers(finding):
                    suppressed.append(finding)
                else:
                    raw.append(finding)

    baseline = baseline if baseline is not None else Baseline()
    active, baselined, stale = baseline.partition(raw)
    return AnalysisResult(
        root=Path(root),
        files_checked=len(contexts),
        rules=[checker.rule for checker in selected],
        findings=sorted(active),
        baselined=sorted(baselined),
        suppressed=sorted(suppressed),
        stale_baseline=stale,
    )
