"""Committed baseline: grandfathered findings that do not fail the gate.

The baseline is a JSON file mapping finding *content keys* (rule + path +
stripped source line, see :attr:`repro.analysis.core.Finding.content_key`)
to occurrence counts.  Content keys survive unrelated edits that shift line
numbers, and a baselined line that gets fixed simply stops matching — the
engine reports such stale entries so ``update-baseline`` can prune them.

Project policy (ISSUE 9): the baseline exists for *grandfathering during
adoption only*.  Deliberate, permanent exemptions belong inline as
``# repro: noqa[RULE]`` next to a justification; the committed baseline in
this repo is empty because every finding the initial rollout surfaced was
fixed at the source.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import AnalysisError
from .core import Finding

__all__ = ["Baseline", "default_baseline_path"]

_FORMAT_VERSION = 1


def default_baseline_path(root: Path) -> Path:
    """``analysis_baseline.json`` next to the tree under analysis.

    For the canonical ``src/repro`` layout this lands at the repository
    root, where the file is committed; a missing file is an empty baseline.
    """
    root = Path(root).resolve()
    base = root.parent
    if base.name == "src":
        base = base.parent
    return base / "analysis_baseline.json"


class Baseline:
    """Occurrence-counted set of grandfathered finding keys."""

    def __init__(self, entries: Optional[Dict[str, int]] = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not Path(path).exists():
            return cls()
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise AnalysisError(f"baseline {path} is not a v{_FORMAT_VERSION} baseline file")
        entries = payload["entries"]
        if not isinstance(entries, dict) or not all(
            isinstance(key, str) and isinstance(count, int) and count > 0
            for key, count in entries.items()
        ):
            raise AnalysisError(f"baseline {path} has malformed entries")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(dict(Counter(finding.content_key for finding in findings)))

    def save(self, path: Path) -> Path:
        path = Path(path)
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered repro.analysis findings (adoption aid only; "
                "permanent exemptions use inline '# repro: noqa[RULE]')."
            ),
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        return path

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], Dict[str, int]]:
        """Split findings into (active, baselined); also return stale entries.

        Each baseline entry absorbs up to its recorded count of matching
        findings; anything beyond the count is active (a *new* occurrence of
        a grandfathered pattern still fails the gate).  ``stale`` maps
        baseline keys to the unconsumed remainder — entries whose source
        lines were fixed and should be pruned.
        """
        budget = Counter(self.entries)
        active: List[Finding] = []
        baselined: List[Finding] = []
        for finding in sorted(findings):
            key = finding.content_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale = {key: count for key, count in budget.items() if count > 0}
        return active, baselined, stale
