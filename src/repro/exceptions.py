"""Exception hierarchy for the Saga reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object contains invalid values."""


class DataError(ReproError):
    """Raised when dataset construction or loading fails validation."""


class MaskingError(ReproError):
    """Raised when a masking strategy cannot be applied to a window."""


class TrainingError(ReproError):
    """Raised when a training loop encounters an unrecoverable condition."""


class SearchError(ReproError):
    """Raised when the Bayesian-Optimization weight search is misconfigured."""


class DeploymentError(ReproError):
    """Raised by the deployment cost model for unknown devices or models."""


class ServingError(ReproError):
    """Raised by the online serving stack (registry, batcher, server)."""


class QueueFullError(ServingError):
    """Raised when a bounded serving queue rejects a request at capacity.

    A distinct subclass so admission layers (the HTTP gateway) can translate
    *this* rejection into a retryable 429 while every other
    :class:`ServingError` stays a client/server fault.
    """


class GatewayError(ServingError):
    """Raised by the HTTP gateway for configuration/lifecycle misuse."""


class ParallelError(ReproError):
    """Raised by the data-parallel training subsystem (workers, all-reduce)."""


class FaultError(ReproError):
    """Raised by :mod:`repro.faults` for plan/configuration misuse.

    Distinct from :class:`FaultInjectedError`: this one means the *harness*
    is broken (bad ``REPRO_FAULTS`` grammar, invalid schedule parameters),
    never that a fault fired.
    """


class FaultInjectedError(ReproError):
    """The exception a :mod:`repro.faults` site raises when an ``error`` (or
    pid-downgraded ``kill``) fault fires.

    A dedicated type so recovery paths and tests can distinguish injected
    faults from organic failures, while still being a :class:`ReproError`
    that the serving stack's error mapping classifies instead of crashing on.
    """


class TraceError(ReproError):
    """Raised when :mod:`repro.nn.jit` cannot trace a module's forward."""


class ObservabilityError(ReproError):
    """Raised by :mod:`repro.obs` (metrics registry, tracer, profilers)."""


class AnalysisError(ReproError):
    """Raised by :mod:`repro.analysis` (static-analysis framework misuse)."""
