"""Library-wide logging configuration helpers."""

from __future__ import annotations

import logging
import sys
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a child logger under the library's namespace."""
    if name is None or name == _LIBRARY_LOGGER_NAME:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(f"{_LIBRARY_LOGGER_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a simple stream handler to the library logger (idempotent)."""
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
