"""Sensor-level masking (paper Section IV-B).

Masks the recordings of one or more randomly chosen sensor axes over the
whole window, forcing the backbone to reconstruct one axis from the others —
i.e. to learn the cross-axis dependencies that identify the underlying
device and its orientation.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MaskingError
from .base import MaskResult, apply_mask


class SensorLevelMasker:
    """Mask entire sensor axes chosen uniformly at random (Eq. 3)."""

    level = "sensor"

    def __init__(self, num_masked_axes: int = 1) -> None:
        if num_masked_axes <= 0:
            raise MaskingError("num_masked_axes must be positive")
        self.num_masked_axes = num_masked_axes

    def mask_window(self, window: np.ndarray, rng: np.random.Generator) -> MaskResult:
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise MaskingError(f"window must be 2-D (length, channels), got {window.shape}")
        num_channels = window.shape[1]
        if self.num_masked_axes >= num_channels:
            raise MaskingError(
                f"cannot mask {self.num_masked_axes} axes of a {num_channels}-channel window"
            )
        # m_se ~ U[0, 3 N_se): sample the masked axis indices without replacement.
        masked_axes = rng.choice(num_channels, size=self.num_masked_axes, replace=False)
        mask = np.zeros_like(window, dtype=bool)
        mask[:, masked_axes] = True
        return apply_mask(window, mask, self.level)
