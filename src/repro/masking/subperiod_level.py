"""Sub-period-level masking (paper Section IV-D).

The acceleration energy signal is partitioned into sub-periods delimited by
the filtered peak/valley key points; one sub-period chosen uniformly at
random is masked on all axes.  This forces the backbone to model the
composition of actions within a gait cycle.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MaskingError
from ..signal.energy import acceleration_energy
from ..signal.keypoints import find_key_points, subperiod_boundaries
from .base import MaskResult, apply_mask


class SubPeriodLevelMasker:
    """Mask one sub-period between consecutive key points (Eq. 5)."""

    level = "subperiod"

    def __init__(
        self,
        filter_window: int = 5,
        min_distance: int = 5,
        accel_axes: int = 3,
        max_masked_fraction: float = 0.5,
    ) -> None:
        if filter_window < 0 or min_distance < 0:
            raise MaskingError("filter_window and min_distance must be non-negative")
        if not 0.0 < max_masked_fraction <= 1.0:
            raise MaskingError("max_masked_fraction must be in (0, 1]")
        self.filter_window = filter_window
        self.min_distance = min_distance
        self.accel_axes = accel_axes
        self.max_masked_fraction = max_masked_fraction

    def partition(self, window: np.ndarray) -> list:
        """Compute the sub-period ``(start, end)`` intervals of one window."""
        energy = acceleration_energy(window, accel_axes=self.accel_axes)
        key_points = find_key_points(
            energy, filter_window=self.filter_window, min_distance=self.min_distance
        )
        return subperiod_boundaries(key_points, window.shape[0])

    def mask_window(self, window: np.ndarray, rng: np.random.Generator) -> MaskResult:
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise MaskingError(f"window must be 2-D (length, channels), got {window.shape}")
        intervals = self.partition(window)
        if not intervals:
            raise MaskingError("sub-period partition is empty")
        # Prefer sub-periods that do not exceed the masking budget; if every
        # sub-period is larger (e.g. a static window with no key points), fall
        # back to the full candidate list so a mask is always produced.
        length = window.shape[0]
        budget = self.max_masked_fraction * length
        candidates = [iv for iv in intervals if (iv[1] - iv[0]) <= budget] or intervals
        start, end = candidates[int(rng.integers(0, len(candidates)))]
        mask = np.zeros_like(window, dtype=bool)
        mask[start:end, :] = True
        return apply_mask(window, mask, self.level)
