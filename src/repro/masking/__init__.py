"""Multi-level semantic masking (the MM module of Saga)."""

from .base import MaskResult, Masker, apply_mask, mask_batch
from .multi import MASK_LEVELS, MultiLevelMasker, MultiLevelMaskingConfig
from .period_level import PeriodLevelMasker
from .point_level import PointLevelMasker, sample_span_length
from .sensor_level import SensorLevelMasker
from .subperiod_level import SubPeriodLevelMasker

__all__ = [
    "MaskResult",
    "Masker",
    "apply_mask",
    "mask_batch",
    "SensorLevelMasker",
    "PointLevelMasker",
    "sample_span_length",
    "SubPeriodLevelMasker",
    "PeriodLevelMasker",
    "MultiLevelMasker",
    "MultiLevelMaskingConfig",
    "MASK_LEVELS",
]
