"""Multi-level masking: the MM module of Saga (paper Section III / Figure 2).

Given a batch of unlabelled windows, :class:`MultiLevelMasker` produces one
masked copy per semantic level (``x_se``, ``x_po``, ``x_sp``, ``x_pe``).  The
pre-trainer reconstructs all four and combines the per-level losses with the
weights searched by the LWS module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import MaskingError
from .base import MaskResult, Masker, mask_batch
from .period_level import PeriodLevelMasker
from .point_level import PointLevelMasker
from .sensor_level import SensorLevelMasker
from .subperiod_level import SubPeriodLevelMasker

MASK_LEVELS: Tuple[str, ...] = ("sensor", "point", "subperiod", "period")
"""Canonical ordering of the four semantic levels (se, po, sp, pe)."""


@dataclass
class MultiLevelMaskingConfig:
    """Hyper-parameters of the four maskers."""

    sensor_num_masked_axes: int = 1
    point_success_probability: float = 0.3
    point_max_span_length: int = 20
    point_num_spans: int = 1
    subperiod_filter_window: int = 5
    subperiod_min_distance: int = 5
    period_min_period: int = 4
    period_max_fraction: float = 0.5
    accel_axes: int = 3
    levels: Tuple[str, ...] = MASK_LEVELS

    def __post_init__(self) -> None:
        unknown = set(self.levels) - set(MASK_LEVELS)
        if unknown:
            raise MaskingError(f"unknown masking levels: {sorted(unknown)}")
        if not self.levels:
            raise MaskingError("at least one masking level is required")


class MultiLevelMasker:
    """Produce all four level-specific masked copies of a batch of windows."""

    def __init__(self, config: Optional[MultiLevelMaskingConfig] = None) -> None:
        self.config = config if config is not None else MultiLevelMaskingConfig()
        self._maskers: Dict[str, Masker] = {}
        cfg = self.config
        if "sensor" in cfg.levels:
            self._maskers["sensor"] = SensorLevelMasker(num_masked_axes=cfg.sensor_num_masked_axes)
        if "point" in cfg.levels:
            self._maskers["point"] = PointLevelMasker(
                success_probability=cfg.point_success_probability,
                max_span_length=cfg.point_max_span_length,
                num_spans=cfg.point_num_spans,
            )
        if "subperiod" in cfg.levels:
            self._maskers["subperiod"] = SubPeriodLevelMasker(
                filter_window=cfg.subperiod_filter_window,
                min_distance=cfg.subperiod_min_distance,
                accel_axes=cfg.accel_axes,
            )
        if "period" in cfg.levels:
            self._maskers["period"] = PeriodLevelMasker(
                min_period=cfg.period_min_period,
                max_period_fraction=cfg.period_max_fraction,
                accel_axes=cfg.accel_axes,
            )

    @property
    def levels(self) -> Tuple[str, ...]:
        """Active masking levels, in canonical order."""
        return tuple(level for level in MASK_LEVELS if level in self._maskers)

    def masker(self, level: str) -> Masker:
        """Return the level-specific masker."""
        if level not in self._maskers:
            raise MaskingError(f"masking level {level!r} is not active; active: {self.levels}")
        return self._maskers[level]

    def mask_all_levels(
        self,
        windows: np.ndarray,
        rng: np.random.Generator,
        levels: Optional[Sequence[str]] = None,
    ) -> Dict[str, MaskResult]:
        """Mask ``windows`` once per active level.

        Parameters
        ----------
        windows:
            Batch of windows ``(N, L, C)`` (or a single window ``(L, C)``).
        rng:
            Random generator driving all stochastic choices.
        levels:
            Optional subset of levels to produce; defaults to all active ones.

        Returns
        -------
        Mapping ``level -> MaskResult``.
        """
        selected = tuple(levels) if levels is not None else self.levels
        unknown = set(selected) - set(self.levels)
        if unknown:
            raise MaskingError(f"requested inactive masking levels: {sorted(unknown)}")
        return {level: mask_batch(self._maskers[level], windows, rng) for level in selected}
