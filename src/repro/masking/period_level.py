"""Period-level masking (paper Section IV-E).

The main period of the window is identified from the maximum-amplitude
frequency of the energy spectrum (``T_main = 1 / f_max``); the window is
partitioned into consecutive main periods and one of them, chosen uniformly
at random, is masked on all axes.  Reconstructing a whole period requires the
backbone to capture the semantics of the complete periodic action.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MaskingError
from ..signal.energy import acceleration_energy
from ..signal.period import find_main_period, period_boundaries
from .base import MaskResult, apply_mask


class PeriodLevelMasker:
    """Mask one full main period of the window (Eq. 6)."""

    level = "period"

    def __init__(
        self,
        min_period: int = 4,
        max_period_fraction: float = 0.5,
        accel_axes: int = 3,
    ) -> None:
        if min_period < 1:
            raise MaskingError("min_period must be at least 1")
        if not 0.0 < max_period_fraction <= 1.0:
            raise MaskingError("max_period_fraction must be in (0, 1]")
        self.min_period = min_period
        self.max_period_fraction = max_period_fraction
        self.accel_axes = accel_axes

    def main_period(self, window: np.ndarray) -> int:
        """Main period (in samples) of one window, capped by the masking budget."""
        energy = acceleration_energy(window, accel_axes=self.accel_axes)
        length = window.shape[0]
        max_period = max(self.min_period, int(self.max_period_fraction * length))
        analysis = find_main_period(energy, min_period=self.min_period, max_period=max_period)
        return min(analysis.period, max_period)

    def mask_window(self, window: np.ndarray, rng: np.random.Generator) -> MaskResult:
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise MaskingError(f"window must be 2-D (length, channels), got {window.shape}")
        period = self.main_period(window)
        intervals = period_boundaries(period, window.shape[0])
        start, end = intervals[int(rng.integers(0, len(intervals)))]
        mask = np.zeros_like(window, dtype=bool)
        mask[start:end, :] = True
        return apply_mask(window, mask, self.level)
