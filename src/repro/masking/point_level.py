"""Point-level (span) masking (paper Section IV-C).

IMU data is continuous in time, so masking isolated points is trivially
solvable by interpolation.  Following LIMU-BERT and SpanBERT, a contiguous
span of time steps is masked on *all* axes: the span length is drawn from a
geometric distribution clipped at ``l_max`` and the start position uniformly
from the window.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MaskingError
from .base import MaskResult, apply_mask


def sample_span_length(rng: np.random.Generator, success_probability: float, max_length: int) -> int:
    """Draw a span length from ``Geo(p)`` clipped to ``[1, max_length]``."""
    if not 0.0 < success_probability < 1.0:
        raise MaskingError("success_probability must be in (0, 1)")
    if max_length < 1:
        raise MaskingError("max_length must be at least 1")
    length = int(rng.geometric(success_probability))
    return min(max(length, 1), max_length)


class PointLevelMasker:
    """Mask a contiguous span of time steps on all axes (Eq. 4)."""

    level = "point"

    def __init__(
        self,
        success_probability: float = 0.3,
        max_span_length: int = 20,
        num_spans: int = 1,
    ) -> None:
        if not 0.0 < success_probability < 1.0:
            raise MaskingError("success_probability must be in (0, 1)")
        if max_span_length < 1:
            raise MaskingError("max_span_length must be at least 1")
        if num_spans < 1:
            raise MaskingError("num_spans must be at least 1")
        self.success_probability = success_probability
        self.max_span_length = max_span_length
        self.num_spans = num_spans

    def mask_window(self, window: np.ndarray, rng: np.random.Generator) -> MaskResult:
        window = np.asarray(window, dtype=np.float64)
        if window.ndim != 2:
            raise MaskingError(f"window must be 2-D (length, channels), got {window.shape}")
        length = window.shape[0]
        mask = np.zeros_like(window, dtype=bool)
        for _ in range(self.num_spans):
            span = sample_span_length(rng, self.success_probability, min(self.max_span_length, length))
            start = int(rng.integers(0, length))
            end = min(start + span, length)
            mask[start:end, :] = True
        return apply_mask(window, mask, self.level)
