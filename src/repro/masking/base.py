"""Masking abstractions shared by the four semantic levels.

A masker consumes a window ``x`` of shape ``(L_win, C)`` (or a batch
``(N, L_win, C)``) and produces a :class:`MaskResult`: the masked window
``x*`` (masked entries set to zero, Eq. 3–6 of the paper) together with a
boolean mask marking which entries were removed.  The pre-training loss is
computed only over the masked entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

import numpy as np

from ..exceptions import MaskingError


@dataclass
class MaskResult:
    """Masked window(s) plus the boolean mask of removed entries."""

    masked: np.ndarray
    """Window with masked entries zeroed, same shape as the input."""

    mask: np.ndarray
    """Boolean array, ``True`` where the entry was masked (removed)."""

    level: str
    """Name of the masking level that produced this result."""

    @property
    def masked_fraction(self) -> float:
        """Fraction of entries that were masked."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    def validate_against(self, original: np.ndarray) -> None:
        """Check the core masking invariants against the original window."""
        original = np.asarray(original, dtype=np.float64)
        if self.masked.shape != original.shape or self.mask.shape != original.shape:
            raise MaskingError("mask result shapes do not match the original window")
        if not np.allclose(self.masked[~self.mask], original[~self.mask]):
            raise MaskingError("unmasked entries were modified by the masker")
        if not np.allclose(self.masked[self.mask], 0.0):
            raise MaskingError("masked entries are not zeroed")


class Masker(Protocol):
    """Protocol implemented by the four level-specific maskers."""

    level: str

    def mask_window(self, window: np.ndarray, rng: np.random.Generator) -> MaskResult:
        """Mask a single window of shape ``(L_win, C)``."""
        ...


def apply_mask(window: np.ndarray, mask: np.ndarray, level: str) -> MaskResult:
    """Zero the entries selected by ``mask`` (Eq. 3–6: ``x_i * (1 - 1_mask(i))``)."""
    window = np.asarray(window, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != window.shape:
        raise MaskingError(
            f"mask shape {mask.shape} does not match window shape {window.shape}"
        )
    masked = window.copy()
    masked[mask] = 0.0
    return MaskResult(masked=masked, mask=mask, level=level)


def mask_batch(masker: Masker, windows: np.ndarray, rng: np.random.Generator) -> MaskResult:
    """Apply a per-window masker independently to every window of a batch."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:
        return masker.mask_window(windows, rng)
    if windows.ndim != 3:
        raise MaskingError(f"expected 2-D or 3-D input, got shape {windows.shape}")
    masked_list: List[np.ndarray] = []
    mask_list: List[np.ndarray] = []
    for window in windows:
        result = masker.mask_window(window, rng)
        masked_list.append(result.masked)
        mask_list.append(result.mask)
    return MaskResult(
        masked=np.stack(masked_list, axis=0),
        mask=np.stack(mask_list, axis=0),
        level=masker.level,
    )
