"""Setuptools shim so ``pip install -e .`` works without network access.

The offline environment has setuptools but not the ``wheel`` package, so the
legacy ``setup.py develop`` code path is used for editable installs.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
