"""Cross-process observability through the data-parallel engine.

The acceptance gate of the aggregation layer: an N=2 process-backend run must
expose exactly the same merged metric series (counter totals, histogram
counts, label sets) as the equivalent thread-backend run, and one sampled
parallel step must export as one trace whose fragments span the parent and
every forked worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import Batch
from repro.nn import SGD, CrossEntropyLoss, Flatten, Linear, Sequential
from repro.obs import MetricsRegistry, get_tracer, set_registry, snapshot_registry
from repro.obs.tracing import configure_tracing
from repro.parallel import DataParallelEngine, fork_available

FEATURES = (3, 4)  # (window, channels) -> 12 flat features
NUM_CLASSES = 4
BACKENDS = [
    "thread",
    pytest.param("process", marks=pytest.mark.skipif(not fork_available(), reason="no fork")),
]

loss_fn = CrossEntropyLoss()


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Flatten(), Linear(12, NUM_CLASSES, rng=rng))


def step_fn(model, batch, rng):
    return loss_fn(model(batch.windows), batch.labels)


def make_batches(steps=3, batch_size=8, seed=7):
    rng = np.random.default_rng(seed)
    return [
        Batch(
            windows=rng.normal(size=(batch_size, *FEATURES)),
            labels=rng.integers(0, NUM_CLASSES, size=batch_size),
        )
        for _ in range(steps)
    ]


@pytest.fixture()
def fresh_obs():
    """Private registry + a cleared tracer at sample_rate=1.0, restored after."""
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    tracer = get_tracer()
    previous_rate = tracer.sample_rate
    tracer.clear()
    configure_tracing(sample_rate=1.0)
    try:
        yield registry, tracer
    finally:
        configure_tracing(sample_rate=previous_rate)
        tracer.clear()
        set_registry(previous_registry)


def run_engine(backend, num_workers=2, steps=3):
    model = build_model()
    optimizer = SGD(model.parameters(), lr=0.05)
    with DataParallelEngine(model, step_fn, num_workers=num_workers, backend=backend) as engine:
        for batch in make_batches(steps=steps):
            loss, _ = engine.accumulate(batch)
            optimizer.step()
            engine.broadcast()
    return loss


def worker_series(registry):
    """(family name, sorted labels) -> mergeable state, for the worker metrics."""
    series = {}
    for family in snapshot_registry(registry)["families"]:
        if not family["name"].startswith("parallel_worker_"):
            continue
        for child in family["children"]:
            key = (family["name"], tuple(sorted(map(tuple, child["labels"]))))
            series[key] = child["state"]
    return series


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_metrics_recorded_per_rank(fresh_obs, backend):
    registry, _ = fresh_obs
    run_engine(backend, num_workers=2, steps=3)
    series = worker_series(registry)
    for rank in ("0", "1"):
        label = (("worker", rank),)
        assert series[("parallel_worker_steps_total", label)]["value"] == 3.0
        assert series[("parallel_worker_samples_total", label)]["value"] == 12.0
        hist = series[("parallel_worker_step_seconds", label)]
        assert hist["count"] == 3
        assert hist["sum"] > 0.0


@pytest.mark.skipif(not fork_available(), reason="no fork")
def test_process_and_thread_backends_expose_identical_series():
    """The merge-correctness acceptance gate: N=2 process == N=2 thread."""
    results = {}
    losses = {}
    for backend in ("thread", "process"):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            losses[backend] = run_engine(backend, num_workers=2, steps=3)
        finally:
            set_registry(previous)
        results[backend] = worker_series(registry)

    thread, process = results["thread"], results["process"]
    assert set(thread) == set(process)  # same families, same label sets
    for key in thread:
        name = key[0]
        if name.endswith("_total"):
            assert thread[key]["value"] == process[key]["value"], key
        else:  # the step-seconds histogram: counts and buckets match exactly
            assert thread[key]["count"] == process[key]["count"], key
            assert sum(thread[key]["bucket_counts"]) == sum(process[key]["bucket_counts"]), key
    # Gradient parity is untouched by the obs plumbing.
    assert losses["thread"] == pytest.approx(losses["process"], abs=1e-12)


@pytest.mark.skipif(not fork_available(), reason="no fork")
def test_one_parallel_step_yields_one_cross_process_trace(fresh_obs, tmp_path):
    _, tracer = fresh_obs
    run_engine("process", num_workers=2, steps=1)

    trace_ids = tracer.trace_ids()
    assert len(trace_ids) == 1
    spans = tracer.spans(trace_ids[0])
    names = {span.name for span in spans}
    # Parent phases + per-worker fragments, all under the one id.
    assert {"parallel.step", "workers", "allreduce", "broadcast"} <= names
    assert {"data", "forward", "backward"} <= names

    pids = {span.pid for span in spans}
    assert len(pids) >= 3  # parent + 2 forked workers

    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    parent_pid = by_name["parallel.step"][0].pid
    for fragment in ("forward", "backward", "data"):
        worker_pids = {span.pid for span in by_name[fragment]}
        assert len(worker_pids) == 2
        assert parent_pid not in worker_pids
    # The root step span brackets the parent phases.
    root = by_name["parallel.step"][0]
    for phase in ("workers", "allreduce", "broadcast"):
        (span,) = by_name[phase]
        assert root.started <= span.started + 1e-9
        assert span.finished <= root.finished + 1e-9

    # And the merged trace exports as one Chrome JSON with per-process lanes.
    path = tracer.export_chrome_trace(tmp_path / "parallel.json", trace_id=trace_ids[0])
    import json

    events = json.loads(path.read_text())["traceEvents"]
    assert {event["pid"] for event in events} == pids


@pytest.mark.parametrize("backend", BACKENDS)
def test_unsampled_steps_record_no_spans(backend):
    tracer = get_tracer()
    tracer.clear()
    previous = tracer.sample_rate
    tracer.sample_rate = 0.0
    registry_previous = set_registry(MetricsRegistry())
    try:
        run_engine(backend, num_workers=2, steps=1)
        assert tracer.spans() == []
    finally:
        tracer.sample_rate = previous
        set_registry(registry_previous)
