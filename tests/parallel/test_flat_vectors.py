"""Flat parameter/gradient vector codec (`repro.nn.utils`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Flatten,
    Linear,
    ReLUActivation,
    Sequential,
    Tensor,
    gradients_to_vector,
    parameters_to_vector,
    vector_to_gradients,
    vector_to_parameters,
)


@pytest.fixture()
def model() -> Sequential:
    rng = np.random.default_rng(5)
    return Sequential(Flatten(), Linear(12, 8, rng=rng), ReLUActivation(), Linear(8, 3, rng=rng))


def test_parameters_round_trip_preserves_values_shapes_dtypes(model):
    params = model.parameters()
    before = [p.data.copy() for p in params]
    shapes = [p.data.shape for p in params]
    dtypes = [p.data.dtype for p in params]

    vector = parameters_to_vector(params)
    assert vector.ndim == 1
    assert vector.size == sum(p.data.size for p in params)

    for param in params:  # scramble, then restore
        param.data = np.zeros_like(param.data)
    vector_to_parameters(vector, params)

    for param, data, shape, dtype in zip(params, before, shapes, dtypes):
        assert param.data.shape == shape
        assert param.data.dtype == dtype
        np.testing.assert_array_equal(param.data, data)


def test_vector_writeback_is_a_copy(model):
    params = model.parameters()
    vector = parameters_to_vector(params)
    vector_to_parameters(vector, params)
    vector[:] = -1.0  # mutating the vector must not touch the parameters
    assert not np.any(params[0].data == -1.0)


def test_gradients_to_vector_matches_per_param_grads(model):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 12))
    loss = (model(Tensor(x)) ** 2).sum()
    loss.backward()
    params = model.parameters()
    vector = gradients_to_vector(params)
    offset = 0
    for param in params:
        size = param.data.size
        np.testing.assert_allclose(
            vector[offset:offset + size], np.asarray(param.grad).reshape(-1)
        )
        offset += size
    assert offset == vector.size


def test_gradients_to_vector_zero_fills_missing_grads(model):
    params = model.parameters()
    for param in params:
        param.zero_grad()
    vector = gradients_to_vector(params)
    assert vector.size == sum(p.data.size for p in params)
    np.testing.assert_array_equal(vector, np.zeros_like(vector))


def test_vector_to_gradients_round_trip(model):
    params = model.parameters()
    total = sum(p.data.size for p in params)
    vector = np.arange(total, dtype=np.float64)
    vector_to_gradients(vector, params)
    np.testing.assert_allclose(gradients_to_vector(params), vector)
    for param in params:
        assert param.grad.shape == param.data.shape


def test_size_mismatch_raises(model):
    params = model.parameters()
    with pytest.raises(ValueError, match="flat vector"):
        vector_to_parameters(np.zeros(3), params)
    with pytest.raises(ValueError, match="flat vector"):
        vector_to_gradients(np.zeros(3), params)


def test_empty_parameter_list_raises():
    with pytest.raises(ValueError, match="at least one parameter"):
        parameters_to_vector([])
