"""Background-thread batch prefetching (`repro.parallel.prefetch`)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.datasets.loaders import DataLoader
from repro.exceptions import ParallelError
from repro.parallel import PrefetchDataLoader


def _batch_signature(batch):
    return batch.indices.tolist()


def test_yields_same_batches_as_direct_iteration(tiny_dataset):
    direct = DataLoader(tiny_dataset, batch_size=8, task="activity", seed=13)
    prefetched = PrefetchDataLoader(DataLoader(tiny_dataset, batch_size=8, task="activity", seed=13), depth=2)
    for epoch in range(2):
        direct.set_epoch(epoch)
        prefetched.set_epoch(epoch)
        direct_batches = [_batch_signature(b) for b in direct]
        prefetch_batches = [_batch_signature(b) for b in prefetched]
        assert prefetch_batches == direct_batches


def test_len_and_depth_validation(tiny_dataset):
    loader = DataLoader(tiny_dataset, batch_size=8, shuffle=False)
    assert len(PrefetchDataLoader(loader)) == len(loader)
    with pytest.raises(ParallelError, match="depth"):
        PrefetchDataLoader(loader, depth=0)


def test_underlying_exception_reaches_the_consumer():
    class ExplodingLoader:
        def __iter__(self):
            yield "first"
            raise RuntimeError("disk on fire")

    loader = PrefetchDataLoader(ExplodingLoader(), depth=2)
    iterator = iter(loader)
    assert next(iterator) == "first"
    with pytest.raises(RuntimeError, match="disk on fire"):
        next(iterator)


def test_early_break_stops_the_producer(tiny_dataset):
    loader = PrefetchDataLoader(DataLoader(tiny_dataset, batch_size=4, seed=0), depth=1)
    before = threading.active_count()
    for _ in range(3):  # abandon each epoch after one batch
        for batch in loader:
            assert len(batch) > 0
            break
    deadline = time.time() + 5.0
    while threading.active_count() > before and time.time() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before


def test_batches_are_produced_ahead_of_consumption(tiny_dataset):
    produced = []

    class RecordingLoader:
        def __init__(self, loader):
            self.loader = loader

        def __iter__(self):
            for batch in self.loader:
                produced.append(len(produced))
                yield batch

    loader = PrefetchDataLoader(
        RecordingLoader(DataLoader(tiny_dataset, batch_size=4, shuffle=False)), depth=2
    )
    iterator = iter(loader)
    next(iterator)
    time.sleep(0.2)  # give the producer time to run ahead
    assert len(produced) >= 2  # at least one batch was assembled ahead
    for _ in iterator:
        pass
