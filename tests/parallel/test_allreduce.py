"""Weighted all-reduce buffers (`repro.parallel.allreduce`)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import ParallelError
from repro.parallel import InProcessAllReduce, SharedMemoryAllReduce


@pytest.fixture(params=["in_process", "shared_memory"])
def allreduce(request):
    if request.param == "in_process":
        return InProcessAllReduce(num_slots=3, size=4)
    return SharedMemoryAllReduce(num_slots=3, size=4, timeout=10.0)


def test_weighted_mean_over_contributions(allreduce):
    allreduce.contribute(0, np.array([1.0, 1.0, 1.0, 1.0]), weight=1.0)
    allreduce.contribute(1, np.array([2.0, 2.0, 2.0, 2.0]), weight=3.0)
    allreduce.contribute(2, np.array([5.0, 5.0, 5.0, 5.0]), weight=0.0)  # empty shard
    vector, total = allreduce.reduce()
    assert total == pytest.approx(4.0)
    np.testing.assert_allclose(vector, np.full(4, (1.0 + 6.0) / 4.0))


def test_reduce_equals_large_batch_gradient(allreduce):
    """Weighted shard means recombine into the global mean (the SGD identity)."""
    rng = np.random.default_rng(0)
    shards = [rng.standard_normal((n, 4)) for n in (5, 2, 3)]
    for rank, shard in enumerate(shards):
        allreduce.contribute(rank, shard.mean(axis=0), weight=shard.shape[0])
    vector, total = allreduce.reduce()
    stacked = np.concatenate(shards, axis=0)
    assert total == pytest.approx(10.0)
    np.testing.assert_allclose(vector, stacked.mean(axis=0), atol=1e-12)


def test_reset_clears_slots(allreduce):
    allreduce.contribute(0, np.ones(4), weight=2.0)
    allreduce.reset()
    vector, total = allreduce.reduce()
    assert total == 0.0
    np.testing.assert_array_equal(vector, np.zeros(4))


def test_contribution_validation(allreduce):
    with pytest.raises(ParallelError, match="rank"):
        allreduce.contribute(7, np.ones(4), weight=1.0)
    with pytest.raises(ParallelError, match="elements"):
        allreduce.contribute(0, np.ones(5), weight=1.0)


def test_concurrent_thread_contributions_are_row_disjoint():
    allreduce = InProcessAllReduce(num_slots=8, size=64)
    threads = [
        threading.Thread(target=allreduce.contribute, args=(rank, np.full(64, float(rank)), 1.0))
        for rank in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    vector, total = allreduce.reduce()
    assert total == pytest.approx(8.0)
    np.testing.assert_allclose(vector, np.full(64, np.mean(range(8))))


def test_shared_memory_barrier_timeout_raises_instead_of_hanging():
    allreduce = SharedMemoryAllReduce(num_slots=1, size=2, timeout=0.2)
    with pytest.raises(ParallelError, match="barrier"):
        allreduce.barrier_wait()  # the lone worker never shows up
