"""Parity and lifecycle of the data-parallel training subsystem.

The headline guarantee: a 2-worker :class:`ParallelTrainer` step aggregates
shard gradients into exactly the large-batch gradient, so trained parameters
match single-process training on the same seed to floating-point reordering
error (far inside the 1e-6 budget of the acceptance criterion).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.datasets.loaders import Batch
from repro.exceptions import ConfigurationError, ParallelError
from repro.models.backbone import BackboneConfig
from repro.nn import Flatten, Linear, ReLUActivation, Sequential, parameters_to_vector
from repro.parallel import DataParallelEngine, ParallelTrainer, fork_available, split_batch
from repro.training import (
    FinetuneConfig,
    Finetuner,
    PretrainConfig,
    Pretrainer,
    SupervisedTrainer,
    TrainerConfig,
)

TASK = "activity"


def build_model(dataset, seed=3):
    rng = np.random.default_rng(seed)
    features = dataset.window_length * dataset.num_channels
    classes = dataset.num_classes(TASK)
    return Sequential(Flatten(), Linear(features, 16, rng=rng), ReLUActivation(), Linear(16, classes, rng=rng))


def fit_single(dataset, model, **overrides):
    config = TrainerConfig(epochs=2, batch_size=16, seed=11, log_every=0, **overrides)
    return SupervisedTrainer(config).fit(model, dataset, TASK)


@pytest.mark.parametrize(
    "backend",
    ["thread", pytest.param("process", marks=pytest.mark.skipif(not fork_available(), reason="no fork"))],
)
def test_two_worker_parity_with_single_process_training(tiny_dataset, backend):
    base = build_model(tiny_dataset)
    single = copy.deepcopy(base)
    parallel = copy.deepcopy(base)

    single_history = fit_single(tiny_dataset, single)
    config = TrainerConfig(
        epochs=2, batch_size=16, seed=11, log_every=0, num_workers=2, parallel_backend=backend
    )
    trainer = ParallelTrainer(config)
    parallel_history = trainer.fit(parallel, tiny_dataset, TASK)

    np.testing.assert_allclose(
        parameters_to_vector(parallel.parameters()),
        parameters_to_vector(single.parameters()),
        atol=1e-6,
    )
    assert parallel_history.final_loss() == pytest.approx(single_history.final_loss(), abs=1e-9)
    assert trainer.last_run is not None
    assert trainer.last_run.samples == 2 * len(tiny_dataset)
    assert trainer.last_run.backend == backend


def test_supervised_trainer_delegates_on_num_workers(tiny_dataset):
    base = build_model(tiny_dataset)
    single = copy.deepcopy(base)
    delegated = copy.deepcopy(base)
    fit_single(tiny_dataset, single)
    fit_single(tiny_dataset, delegated, num_workers=2)
    np.testing.assert_allclose(
        parameters_to_vector(delegated.parameters()),
        parameters_to_vector(single.parameters()),
        atol=1e-6,
    )


def test_parity_with_validation_and_early_stopping(tiny_dataset):
    base = build_model(tiny_dataset)
    single = copy.deepcopy(base)
    parallel = copy.deepcopy(base)
    kwargs = dict(epochs=3, batch_size=16, seed=11, log_every=0, early_stopping_patience=2)
    single_hist = SupervisedTrainer(TrainerConfig(**kwargs)).fit(
        single, tiny_dataset, TASK, validation_dataset=tiny_dataset
    )
    parallel_hist = ParallelTrainer(TrainerConfig(num_workers=2, **kwargs)).fit(
        parallel, tiny_dataset, TASK, validation_dataset=tiny_dataset
    )
    assert len(parallel_hist) == len(single_hist)
    np.testing.assert_allclose(
        parameters_to_vector(parallel.parameters()),
        parameters_to_vector(single.parameters()),
        atol=1e-6,
    )


def test_custom_forward_rejected_in_parallel_mode(tiny_dataset):
    model = build_model(tiny_dataset)
    trainer = SupervisedTrainer(TrainerConfig(epochs=1, num_workers=2))
    with pytest.raises(ConfigurationError, match="forward"):
        trainer.fit(model, tiny_dataset, TASK, forward=lambda x: model(x))


def test_parallel_pretrain_and_finetune_run(tiny_dataset):
    backbone_config = BackboneConfig(
        input_channels=tiny_dataset.num_channels,
        window_length=tiny_dataset.window_length,
        hidden_dim=16,
        num_layers=1,
        num_heads=2,
        intermediate_dim=32,
    )
    pretrain_config = PretrainConfig(epochs=1, batch_size=16, seed=0, log_every=0, num_workers=2)
    result = Pretrainer(pretrain_config, backbone_config).pretrain(tiny_dataset)
    assert np.isfinite(result.history.final_loss())
    assert set(result.per_level_losses) == set(result.weights)

    finetune_config = FinetuneConfig(
        epochs=1, batch_size=16, seed=0, log_every=0, num_workers=2, classifier_hidden_dim=8
    )
    fit = Finetuner(finetune_config).finetune(
        result.model.backbone, tiny_dataset, TASK, validation_dataset=tiny_dataset
    )
    assert np.isfinite(fit.history.final_loss())
    assert fit.validation_metrics is not None


def test_engine_replicas_inherit_training_mode(tiny_dataset):
    """Replicas are cloned from the master, so its mode must carry over."""
    from repro.nn import CrossEntropyLoss

    model = build_model(tiny_dataset)
    model.train()
    loss_fn = CrossEntropyLoss()
    seen_modes = []

    def step(replica, chunk, _rng):
        seen_modes.append(replica.training)
        return loss_fn(replica(chunk.windows), chunk.labels)

    batch = Batch(windows=tiny_dataset.windows[:8], labels=tiny_dataset.task_labels(TASK)[:8])
    with DataParallelEngine(model, step, num_workers=2) as engine:
        engine.accumulate(batch)
        engine.broadcast()
    assert seen_modes == [True, True]


def test_trainers_enter_train_mode_before_cloning_replicas(tiny_dataset, monkeypatch):
    """Regression: an eval()-ed model (e.g. a pre-trained backbone) must be put
    back in train mode *before* the engine clones it, or every worker would
    silently train with dropout disabled (broadcast only syncs parameters)."""
    captured = []
    original_start = DataParallelEngine.start

    def spying_start(self):
        captured.append(all(module.training for _, module in self.model.named_modules()))
        return original_start(self)

    monkeypatch.setattr(DataParallelEngine, "start", spying_start)
    backbone_config = BackboneConfig(
        input_channels=tiny_dataset.num_channels,
        window_length=tiny_dataset.window_length,
        hidden_dim=16,
        num_layers=1,
        num_heads=2,
        intermediate_dim=32,
    )
    # pretrain() leaves the model in eval mode; both the continuation pretrain
    # and the fine-tune reuse those eval()-ed modules.
    seeded = Pretrainer(
        PretrainConfig(epochs=1, batch_size=16, seed=0, log_every=0), backbone_config
    ).pretrain(tiny_dataset)
    Pretrainer(
        PretrainConfig(epochs=1, batch_size=16, seed=0, log_every=0, num_workers=2),
        backbone_config,
    ).pretrain(tiny_dataset, model=seeded.model)
    Finetuner(
        FinetuneConfig(epochs=1, batch_size=16, seed=0, log_every=0, num_workers=2)
    ).finetune(seeded.model.backbone, tiny_dataset, TASK)
    assert captured == [True, True]


def test_num_workers_validation():
    with pytest.raises(ConfigurationError, match="num_workers"):
        TrainerConfig(num_workers=-1)
    with pytest.raises(ConfigurationError, match="num_workers"):
        TrainerConfig(num_workers=1.5)
    with pytest.raises(ConfigurationError, match="num_workers"):
        TrainerConfig(num_workers=True)
    with pytest.raises(ConfigurationError, match="parallel_backend"):
        TrainerConfig(parallel_backend="mpi")
    with pytest.raises(ConfigurationError, match="prefetch_batches"):
        TrainerConfig(prefetch_batches=-2)
    with pytest.raises(ConfigurationError, match="num_workers"):
        PretrainConfig(num_workers=-1)
    with pytest.raises(ConfigurationError, match="num_workers"):
        FinetuneConfig(num_workers=-1)
    with pytest.raises(ConfigurationError, match="num_workers >= 1"):
        ParallelTrainer(TrainerConfig(num_workers=0))
    assert TrainerConfig(num_workers=0).num_workers == 0  # default stays valid


def test_split_batch_partitions_and_preserves_order():
    windows = np.arange(10 * 2 * 3, dtype=np.float64).reshape(10, 2, 3)
    labels = np.arange(10)
    batch = Batch(windows=windows, labels=labels, indices=np.arange(10))
    chunks = split_batch(batch, 3)
    assert [len(chunk) for chunk in chunks] == [4, 3, 3]
    np.testing.assert_array_equal(np.concatenate([c.windows for c in chunks]), windows)
    np.testing.assert_array_equal(np.concatenate([c.labels for c in chunks]), labels)
    # more chunks than samples -> trailing chunks are empty but present
    small = split_batch(Batch(windows=windows[:2], labels=labels[:2]), 4)
    assert [len(chunk) for chunk in small] == [1, 1, 0, 0]


def test_engine_enforces_accumulate_broadcast_pairing(tiny_dataset):
    model = build_model(tiny_dataset)
    batch = Batch(
        windows=tiny_dataset.windows[:8], labels=tiny_dataset.task_labels(TASK)[:8]
    )

    from repro.nn import CrossEntropyLoss

    loss_fn = CrossEntropyLoss()

    def step(replica, chunk, _rng):
        return loss_fn(replica(chunk.windows), chunk.labels)

    with DataParallelEngine(model, step, num_workers=2) as engine:
        engine.accumulate(batch)
        with pytest.raises(ParallelError, match="broadcast"):
            engine.accumulate(batch)
        engine.broadcast()
        loss, _ = engine.accumulate(batch)
        engine.broadcast()
        assert np.isfinite(loss)
        with pytest.raises(ParallelError, match="empty"):
            engine.accumulate(Batch(windows=tiny_dataset.windows[:0]))


def test_worker_replicas_stay_in_sync_with_master(tiny_dataset):
    model = build_model(tiny_dataset)
    from repro.nn import SGD, CrossEntropyLoss

    loss_fn = CrossEntropyLoss()

    def step(replica, chunk, _rng):
        return loss_fn(replica(chunk.windows), chunk.labels)

    optimizer = SGD(model.parameters(), lr=0.1)
    batch = Batch(windows=tiny_dataset.windows[:8], labels=tiny_dataset.task_labels(TASK)[:8])
    with DataParallelEngine(model, step, num_workers=2) as engine:
        for _ in range(3):
            engine.accumulate(batch)
            optimizer.step()
            engine.broadcast()
        master = parameters_to_vector(model.parameters())
        for replica in engine._replicas:
            np.testing.assert_allclose(parameters_to_vector(replica.parameters()), master)
