"""Sharded, seeded sampling in `repro.datasets.loaders.DataLoader`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import DataLoader
from repro.exceptions import DataError


def _epoch_indices(loader, epoch):
    loader.set_epoch(epoch)
    return [batch.indices for batch in loader]


def test_seeded_epoch_order_is_deterministic(tiny_dataset):
    a = DataLoader(tiny_dataset, batch_size=8, seed=42)
    b = DataLoader(tiny_dataset, batch_size=8, seed=42)
    for epoch in (0, 1, 5):
        first = [idx.tolist() for idx in _epoch_indices(a, epoch)]
        second = [idx.tolist() for idx in _epoch_indices(b, epoch)]
        assert first == second


def test_epoch_order_depends_only_on_seed_and_epoch(tiny_dataset):
    """Unlike legacy stream mode, consuming epochs out of order changes nothing."""
    loader = DataLoader(tiny_dataset, batch_size=8, seed=7)
    epoch3_first = [idx.tolist() for idx in _epoch_indices(loader, 3)]
    for epoch in (0, 1, 2):
        _epoch_indices(loader, epoch)
    epoch3_again = [idx.tolist() for idx in _epoch_indices(loader, 3)]
    assert epoch3_first == epoch3_again


def test_different_epochs_and_seeds_shuffle_differently(tiny_dataset):
    loader = DataLoader(tiny_dataset, batch_size=len(tiny_dataset), seed=1)
    epoch0 = _epoch_indices(loader, 0)[0].tolist()
    epoch1 = _epoch_indices(loader, 1)[0].tolist()
    other_seed = DataLoader(tiny_dataset, batch_size=len(tiny_dataset), seed=2)
    seed2 = _epoch_indices(other_seed, 0)[0].tolist()
    assert epoch0 != epoch1
    assert epoch0 != seed2
    assert sorted(epoch0) == sorted(epoch1) == list(range(len(tiny_dataset)))


def test_epoch_auto_advances_without_set_epoch(tiny_dataset):
    loader = DataLoader(tiny_dataset, batch_size=len(tiny_dataset), seed=3)
    first = [b.indices.tolist() for b in loader][0]
    second = [b.indices.tolist() for b in loader][0]
    assert first != second
    loader.set_epoch(0)
    again = [b.indices.tolist() for b in loader][0]
    assert again == first


def test_shards_partition_each_global_batch(tiny_dataset):
    """Union of the shards' step-t batches == the single-process step-t batch."""
    batch_size, num_shards = 4, 2
    reference = DataLoader(tiny_dataset, batch_size=batch_size * num_shards, seed=9)
    shards = [
        DataLoader(
            tiny_dataset,
            batch_size=batch_size,
            seed=9,
            num_shards=num_shards,
            shard_index=w,
        )
        for w in range(num_shards)
    ]
    reference_batches = _epoch_indices(reference, 0)
    shard_batches = [_epoch_indices(shard, 0) for shard in shards]
    assert len(shard_batches[0]) == len(shard_batches[1]) == len(reference_batches)
    for step, global_batch in enumerate(reference_batches):
        union = np.concatenate([shard_batches[w][step] for w in range(num_shards)])
        np.testing.assert_array_equal(union, global_batch)


def test_shard_contents_deterministic_given_seed_epoch_shard(tiny_dataset):
    kwargs = dict(batch_size=4, seed=21, num_shards=3, shard_index=1)
    first = [b.indices.tolist() for b in DataLoader(tiny_dataset, **kwargs)]
    second = [b.indices.tolist() for b in DataLoader(tiny_dataset, **kwargs)]
    assert first == second
    other_shard = [
        b.indices.tolist()
        for b in DataLoader(tiny_dataset, batch_size=4, seed=21, num_shards=3, shard_index=2)
    ]
    assert first != other_shard


def test_sharded_len_counts_global_blocks(tiny_dataset):
    n = len(tiny_dataset)
    loader = DataLoader(tiny_dataset, batch_size=4, seed=0, num_shards=2)
    expected = -(-n // 8)  # ceil over the global block size
    assert len(loader) == len(list(iter(loader))) == expected
    dropping = DataLoader(tiny_dataset, batch_size=4, seed=0, num_shards=2, drop_last=True)
    assert len(dropping) == len(list(iter(dropping))) == n // 8


def test_invalid_shard_arguments(tiny_dataset):
    with pytest.raises(DataError, match="num_shards"):
        DataLoader(tiny_dataset, batch_size=4, num_shards=0)
    with pytest.raises(DataError, match="shard_index"):
        DataLoader(tiny_dataset, batch_size=4, seed=0, num_shards=2, shard_index=2)
    with pytest.raises(DataError, match="seed"):
        DataLoader(tiny_dataset, batch_size=4, num_shards=2, shard_index=0)


def test_unsharded_legacy_stream_mode_unchanged(tiny_dataset):
    """Without a seed the loader still shuffles from the provided rng stream."""
    rng = np.random.default_rng(5)
    loader = DataLoader(tiny_dataset, batch_size=8, rng=rng)
    epoch0 = [b.indices.tolist() for b in loader]
    epoch1 = [b.indices.tolist() for b in loader]
    assert epoch0 != epoch1
    replay = DataLoader(tiny_dataset, batch_size=8, rng=np.random.default_rng(5))
    assert [b.indices.tolist() for b in replay] == epoch0
