"""Evaluation protocol, result tables, experiment runner and figure generators."""

import numpy as np
import pytest

from repro.core.experiment import (
    ABLATION_METHOD_NAMES,
    ALL_METHOD_NAMES,
    PROFILES,
    ExperimentRunner,
    build_method,
    get_profile,
)
from repro.evaluation import (
    LABELLING_RATES,
    TASKS,
    ExperimentRecord,
    ResultTable,
    format_mapping_table,
    get_task,
    task_dataset_pairs,
    validate_pair,
)
from repro.evaluation.figures import (
    format_latency_measurements,
    table1_devices,
    table2_datasets,
    table3_tasks,
)
from repro.exceptions import ConfigurationError


class TestProtocol:
    def test_labelling_rates_match_paper(self):
        assert LABELLING_RATES == (0.05, 0.10, 0.15, 0.20)

    def test_three_tasks_defined(self):
        assert set(TASKS) == {"AR", "UA", "DP"}
        assert get_task("ar").label_field == "activity"
        assert get_task("UA").label_field == "user"
        assert get_task("DP").datasets == ("shoaib",)

    def test_unknown_task(self):
        with pytest.raises(ConfigurationError):
            get_task("XX")

    def test_task_dataset_pairs_count(self):
        # AR x {hhar, motion}, UA x {hhar, shoaib}, DP x {shoaib} = 5 pairs.
        assert len(task_dataset_pairs()) == 5

    def test_validate_pair(self):
        assert validate_pair("AR", "hhar").code == "AR"
        with pytest.raises(ConfigurationError):
            validate_pair("DP", "hhar")


class TestResultTable:
    @pytest.fixture()
    def table(self):
        table = ResultTable()
        for method, accuracy in [("saga", 0.9), ("limu", 0.8), ("saga", 0.7), ("limu", 0.6)]:
            rate = 0.05 if accuracy in (0.9, 0.8) else 0.2
            table.add(ExperimentRecord(
                method=method, task="AR", dataset="hhar", labelling_rate=rate,
                accuracy=accuracy, f1=accuracy - 0.05, num_train_samples=10,
            ))
        return table

    def test_mean_by_method(self, table):
        means = table.mean_by_method("accuracy")
        assert means["saga"] == pytest.approx(0.8)
        assert means["limu"] == pytest.approx(0.7)

    def test_mean_by_method_and_rate(self, table):
        cells = table.mean_by_method_and_rate("f1")
        assert cells["saga"][0.05] == pytest.approx(0.85)

    def test_ranking(self, table):
        assert table.ranking("accuracy") == ["saga", "limu"]

    def test_filters(self, table):
        assert len(table.for_method("saga")) == 2
        assert len(table.for_rate(0.2)) == 2
        assert table.methods() == ["saga", "limu"]

    def test_relative_record(self):
        record = ExperimentRecord("saga", "AR", "hhar", 0.1, 0.45, 0.4, 10)
        relative = record.relative_to(0.9, 0.8)
        assert relative.accuracy == pytest.approx(50.0)
        assert relative.f1 == pytest.approx(50.0)
        with pytest.raises(ConfigurationError):
            record.relative_to(0.0, 1.0)

    def test_format_table_contains_methods_and_rates(self, table):
        text = table.format_table("accuracy")
        assert "saga" in text and "limu" in text and "5%" in text and "20%" in text

    def test_to_rows(self, table):
        rows = table.to_rows()
        assert len(rows) == 4
        assert set(rows[0]) >= {"method", "task", "dataset", "accuracy", "f1"}

    def test_format_mapping_table(self):
        text = format_mapping_table(
            [{"a": 1.23456, "b": "x"}], columns=("a", "b"), digits=2
        )
        assert "1.23" in text and "x" in text


class TestProfilesAndMethods:
    def test_profiles_exist(self):
        assert {"paper", "quick", "bench", "ci"} <= set(PROFILES)
        assert PROFILES["paper"].hidden_dim == 72
        assert PROFILES["paper"].pretrain_epochs == 50

    def test_get_profile_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "ci")
        assert get_profile().name == "ci"
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile("bench").name == "bench"
        with pytest.raises(ConfigurationError):
            get_profile("huge")

    def test_method_name_lists(self):
        assert "saga" in ALL_METHOD_NAMES and "no_pretrain" in ALL_METHOD_NAMES
        assert len(ABLATION_METHOD_NAMES) == 6

    @pytest.mark.parametrize("name", ALL_METHOD_NAMES + ("saga_sensor", "saga_random", "saga_uniform"))
    def test_build_method_all_names(self, name):
        profile = PROFILES["ci"]
        method = build_method(name, profile, input_channels=6)
        assert method.name in (name, "saga")  # "saga" policy resolves to name "saga"

    def test_build_method_unknown(self):
        with pytest.raises(ConfigurationError):
            build_method("bogus", PROFILES["ci"], 6)


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(PROFILES["ci"], seed=0)

    def test_load_subsamples_window(self, runner):
        dataset = runner.load("hhar")
        assert dataset.window_length <= PROFILES["ci"].window_length
        # Cached: same object on second load.
        assert runner.load("hhar") is dataset

    def test_context_caches_and_stratifies(self, runner):
        context = runner.context("AR", "hhar")
        assert runner.context("AR", "hhar") is context
        train_classes = set(np.unique(context.splits.train.task_labels("activity")))
        test_classes = set(np.unique(context.splits.test.task_labels("activity")))
        assert train_classes == test_classes

    def test_invalid_pair_rejected(self, runner):
        with pytest.raises(ConfigurationError):
            runner.context("DP", "hhar")

    def test_run_single_record_fields(self, runner):
        record = runner.run_single("no_pretrain", "AR", "hhar", 0.2)
        assert record.method == "no_pretrain"
        assert record.task == "AR"
        assert record.dataset == "hhar"
        assert 0.0 <= record.accuracy <= 1.0
        assert record.num_train_samples > 0

    def test_run_rate_sweep_shares_pretraining(self, runner):
        records = runner.run_rate_sweep("limu", "AR", "hhar", labelling_rates=(0.1, 0.2))
        assert [record.labelling_rate for record in records] == [0.1, 0.2]
        assert records[0].num_train_samples < records[1].num_train_samples

    def test_run_comparison_collects_all_methods(self, runner):
        table = runner.run_comparison(
            ("no_pretrain", "tpn"), "AR", "hhar", labelling_rates=(0.2,)
        )
        assert set(table.methods()) == {"no_pretrain", "tpn"}
        assert len(table) == 2

    def test_run_full_matrix_restricted_pairs(self, runner):
        table = runner.run_full_matrix(
            method_names=("no_pretrain",), pairs=(("AR", "hhar"),), labelling_rates=(0.2,)
        )
        assert len(table) == 1
        assert table.records[0].task == "AR"


class TestStaticTables:
    def test_table1(self):
        rows = table1_devices()
        assert len(rows) == 5
        assert rows[0]["phone"] == "Mi 6"

    def test_table2_structure(self):
        rows = table2_datasets(scale=0.01)
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["hhar"]["users"] == 9
        assert by_name["motion"]["users"] == 24
        assert by_name["shoaib"]["placements"] == 5
        assert by_name["shoaib"]["sensors"] == "acc+gyr+mag"
        assert by_name["hhar"]["paper_samples"] == 9166

    def test_table3(self):
        rows = table3_tasks()
        assert {row["task"] for row in rows} == {"AR", "UA", "DP"}

    def test_format_latency_measurements(self):
        from repro.deployment import LatencyMeasurement

        text = format_latency_measurements(
            [LatencyMeasurement("saga", "Mi 6", 5.0), LatencyMeasurement("tpn", "Mi 6", 2.0)]
        )
        assert "Mi 6" in text and "saga" in text
