"""The attention-mask bias is computed once per forward, not once per block."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.attention as attention_module
from repro.nn import MultiHeadSelfAttention, Tensor, TransformerEncoder
from repro.nn.attention import mask_to_bias


@pytest.fixture()
def encoder():
    return TransformerEncoder(3, 8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))


@pytest.fixture()
def masked_batch():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((4, 6, 8))
    mask = np.ones((4, 6))
    mask[:, -2:] = 0.0
    return x, mask


def test_mask_to_bias_values():
    mask = np.array([[1.0, 1.0, 0.0]])
    bias = mask_to_bias(mask, np.dtype(np.float32))
    assert bias.shape == (1, 1, 1, 3)
    assert bias.dtype == np.float32
    np.testing.assert_array_equal(bias[0, 0, 0], np.array([0.0, 0.0, -1e9], dtype=np.float32))


def test_bias_computed_once_per_forward(encoder, masked_batch, monkeypatch):
    x, mask = masked_batch
    calls = []
    original = mask_to_bias

    def counting(mask_arg, dtype):
        calls.append(1)
        return original(mask_arg, dtype)

    monkeypatch.setattr(attention_module, "mask_to_bias", counting)
    encoder(Tensor(x), attention_mask=mask)
    assert len(calls) == 1  # one conversion for all 3 blocks

    # Same mask object again: the identity-keyed cache skips even that one.
    encoder(Tensor(x), attention_mask=mask)
    assert len(calls) == 1

    # A different mask array recomputes.
    other = mask.copy()
    encoder(Tensor(x), attention_mask=other)
    assert len(calls) == 2


def test_hoisted_bias_matches_per_block_mask(encoder, masked_batch):
    """Passing the precomputed bias must equal the legacy per-block mask path."""
    x, mask = masked_batch
    hoisted = encoder(Tensor(x), attention_mask=mask).data

    legacy = Tensor(x)
    for block in encoder.blocks:
        legacy = block(legacy, attention_mask=mask)  # per-block conversion
    np.testing.assert_array_equal(hoisted, legacy.data)


def test_attention_accepts_either_mask_or_bias(masked_batch):
    x, mask = masked_batch
    attention = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(2))
    via_mask = attention(Tensor(x), attention_mask=mask).data
    via_bias = attention(
        Tensor(x), attention_bias=mask_to_bias(mask, x.dtype)
    ).data
    np.testing.assert_array_equal(via_mask, via_bias)


def test_masked_positions_get_negligible_attention(encoder, masked_batch):
    x, mask = masked_batch
    out_masked = encoder(Tensor(x), attention_mask=mask).data
    out_unmasked = encoder(Tensor(x)).data
    # Masking must actually change the result (the bias is applied).
    assert not np.allclose(out_masked, out_unmasked)


def test_dtype_keyed_cache(encoder, masked_batch):
    x, mask = masked_batch
    encoder(Tensor(x), attention_mask=mask)
    cached = encoder._bias_cache
    assert cached[2].dtype == np.float64
    encoder(Tensor(x.astype(np.float32)), attention_mask=mask)
    assert encoder._bias_cache[2].dtype == np.float32
