"""Tape-vs-eager equivalence for the repro.nn.jit compiled executor.

The contract under test (DESIGN.md "Compiled execution"):

* replaying a traced tape is **bit-identical** to the eager forward in
  float64 (reference numerics) and allclose in float32 (strength-reduced
  kernels), for every layer, the Saga backbone, and both baseline encoders,
  across batch sizes;
* signature changes (new batch size / window length) compile new buckets or
  fall back to eager without changing results;
* anything untraceable (kwargs, integer inputs, multi-output forwards)
  degrades to the eager path, never to a wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.clhar import ConvEncoder
from repro.exceptions import ConfigurationError
from repro.baselines.tpn import SmallConvEncoder
from repro.models.backbone import BackboneConfig, SagaBackbone
from repro.models.classifier import GRUClassifier, MLPClassifier
from repro.models.composite import ClassificationModel
from repro.nn import (
    GRU,
    CompiledModule,
    Conv1d,
    Dropout,
    FeedForward,
    Flatten,
    GELUActivation,
    GlobalAveragePool1d,
    GlobalMaxPool1d,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    PositionalEmbedding,
    ReLUActivation,
    Sequential,
    TanhActivation,
    Tensor,
    TransformerBlock,
    TransformerEncoder,
    default_dtype,
)
from repro.nn.jit import plan_buffers, trace_module
from repro.nn.jit.executor import SUPPORTED_OPS

DTYPES = ("float64", "float32")
BATCH_SIZES = (1, 3, 8)


def _assert_matches(compiled_out: np.ndarray, eager_out: np.ndarray, dtype: str) -> None:
    if dtype == "float64":
        # Reference numerics: the replay must be the same bits as eager.
        np.testing.assert_array_equal(compiled_out, eager_out)
    else:
        # float32 tapes run strength-reduced kernels: allclose, same argmax.
        np.testing.assert_allclose(compiled_out, eager_out, rtol=1e-4, atol=1e-5)


def _layer_cases(rng: np.random.Generator):
    """(name, module factory, input shape sans batch) for every float-input layer."""
    return [
        ("linear", lambda: Linear(6, 5, rng=rng), (6,)),
        ("layer_norm", lambda: LayerNorm(7), (4, 7)),
        ("dropout_eval", lambda: Dropout(0.5, rng=rng), (9,)),
        ("positional", lambda: PositionalEmbedding(12, 5, rng=rng), (12, 5)),
        ("gelu", GELUActivation, (3, 4)),
        ("relu", ReLUActivation, (3, 4)),
        ("tanh", TanhActivation, (3, 4)),
        ("flatten", Flatten, (3, 4)),
        ("conv1d", lambda: Conv1d(3, 5, kernel_size=3, stride=2, padding=1, rng=rng), (11, 3)),
        ("global_max_pool", GlobalMaxPool1d, (6, 3)),
        ("global_avg_pool", GlobalAveragePool1d, (6, 3)),
        ("feed_forward", lambda: FeedForward(6, 12, dropout=0.1, rng=rng), (5, 6)),
        ("attention", lambda: MultiHeadSelfAttention(8, 2, dropout=0.1, rng=rng), (5, 8)),
        ("transformer_block", lambda: TransformerBlock(8, 2, 16, dropout=0.1, rng=rng), (5, 8)),
        ("encoder", lambda: TransformerEncoder(2, 8, 2, 16, dropout=0.1, rng=rng), (5, 8)),
        ("gru_classifier", lambda: GRUClassifier(6, 4, hidden_dim=5, rng=rng), (7, 6)),
        ("mlp_classifier", lambda: MLPClassifier(6, 3, hidden_dim=8, rng=rng), (6,)),
        (
            "sequential",
            lambda: Sequential(Linear(6, 8, rng=rng), GELUActivation(), Linear(8, 2, rng=rng)),
            (6,),
        ),
    ]


class TestLayerEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "name", [case[0] for case in _layer_cases(np.random.default_rng(0))]
    )
    def test_every_layer_replays_equal_across_batch_sizes(self, name, dtype):
        rng = np.random.default_rng(7)
        with default_dtype(dtype):
            factory = dict((n, f) for n, f, _ in _layer_cases(rng))[name]
            shape = dict((n, s) for n, _, s in _layer_cases(rng))[name]
            module = factory()
        module.eval()
        compiled = CompiledModule(module)
        for batch in BATCH_SIZES:
            x = rng.standard_normal((batch,) + shape).astype(dtype)
            eager = module.inference(Tensor(x)).data
            replayed = compiled.run(x)
            _assert_matches(replayed, eager, dtype)
        assert compiled.stats.traces == len(BATCH_SIZES)  # one bucket per batch
        assert compiled.stats.fallbacks == 0
        assert compiled.stats.self_check_failures == 0


class TestModelEquivalence:
    def _config(self) -> BackboneConfig:
        return BackboneConfig(
            input_channels=6, window_length=16, hidden_dim=8, num_layers=2,
            num_heads=2, intermediate_dim=16, dropout=0.1,
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_backbone_and_classifier(self, dtype):
        rng = np.random.default_rng(3)
        with default_dtype(dtype):
            model = ClassificationModel(SagaBackbone(self._config(), rng=rng), 4, rng=rng)
        model.eval()
        compiled = model.compile()
        for batch in BATCH_SIZES:
            x = rng.standard_normal((batch, 16, 6)).astype(dtype)
            _assert_matches(compiled.run(x), model.inference(x).data, dtype)
            assert (compiled.run(x).argmax(-1) == model.predict(x)).all()

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_backbone_alone(self, dtype):
        rng = np.random.default_rng(4)
        with default_dtype(dtype):
            backbone = SagaBackbone(self._config(), rng=rng)
        backbone.eval()
        compiled = backbone.compile()
        for batch in (2, 5):
            x = rng.standard_normal((batch, 16, 6)).astype(dtype)
            _assert_matches(compiled.run(x), backbone.inference(x).data, dtype)

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("encoder_cls", [ConvEncoder, SmallConvEncoder])
    def test_baseline_encoders(self, encoder_cls, dtype):
        rng = np.random.default_rng(5)
        with default_dtype(dtype):
            encoder = encoder_cls(6, rng=rng)
        encoder.eval()
        compiled = encoder.compile()
        for batch in BATCH_SIZES:
            x = rng.standard_normal((batch, 32, 6)).astype(dtype)
            _assert_matches(compiled.run(x), encoder.inference(Tensor(x)).data, dtype)


class TestTapeOptimisation:
    def test_dead_gru_sequence_output_is_eliminated(self):
        """The classifier only reads the GRU's final hidden state: the stacked
        per-step sequence output (expand_dims x length + concatenate) must be
        dead on the tape."""
        rng = np.random.default_rng(6)
        model = GRUClassifier(4, 3, hidden_dim=5, rng=rng)
        model.eval()
        compiled = model.compile(np.random.default_rng(0).standard_normal((2, 10, 4)))
        report = compiled.stats.pass_report
        assert report["dead_nodes_removed"] >= 11  # 10 expand_dims + concatenate
        executor = next(iter(compiled._tapes.values()))
        ops = {node.op for node in executor.tape.nodes}
        assert "concatenate" not in ops

    def test_constants_fold_and_dedup(self):
        class ConstChain(Module):
            def __init__(self):
                super().__init__()

            def forward(self, x):
                offset = Tensor(np.full(4, 2.0)) * Tensor(np.full(4, 3.0))
                return x + offset + 1.0 - 1.0  # scalar consts dedup to one slot

        module = ConstChain()
        compiled = CompiledModule(module)
        x = np.random.default_rng(0).standard_normal((3, 4))
        np.testing.assert_array_equal(compiled.run(x), module.inference(Tensor(x)).data)
        report = compiled.stats.pass_report
        assert report["constants_folded"] >= 1   # the const*const multiply
        assert report["constants_deduped"] >= 1  # the repeated 1.0 scalars

    def test_float32_tape_is_strength_reduced_float64_is_not(self):
        rng = np.random.default_rng(8)
        for dtype, expect_fast in (("float32", True), ("float64", False)):
            with default_dtype(dtype):
                module = FeedForward(6, 12, dropout=0.0, rng=np.random.default_rng(1))
            module.eval()
            compiled = module.compile(rng.standard_normal((2, 3, 6)).astype(dtype))
            assert (compiled.stats.pass_report["fast_nodes"] > 0) == expect_fast

    def test_buffer_plan_reuses_arena(self):
        """Liveness planning must run a deep forward in a small fixed arena,
        with in-place chain fusion actually happening."""
        rng = np.random.default_rng(9)
        config = BackboneConfig(
            input_channels=6, window_length=16, hidden_dim=8, num_layers=3,
            num_heads=2, intermediate_dim=16, dropout=0.0,
        )
        backbone = SagaBackbone(config, rng=rng)
        backbone.eval()
        tape, _ = trace_module(backbone, [rng.standard_normal((4, 16, 6))], SUPPORTED_OPS)
        plan = plan_buffers(tape)
        buffer_producing = sum(
            1 for buf, _ in plan.assignments if buf is not None
        )
        assert len(plan.buffers) < buffer_producing / 3  # arena is much smaller
        assert plan.inplace_nodes > 0


class TestFallbackSemantics:
    def test_window_length_change_compiles_new_bucket_not_wrong_answer(self):
        rng = np.random.default_rng(10)
        module = Sequential(Linear(6, 4, rng=rng), TanhActivation())
        module.eval()
        compiled = CompiledModule(module)
        a = rng.standard_normal((2, 6))
        b = rng.standard_normal((5, 6))
        np.testing.assert_array_equal(compiled.run(a), module.inference(Tensor(a)).data)
        np.testing.assert_array_equal(compiled.run(b), module.inference(Tensor(b)).data)
        assert compiled.stats.traces == 2

    def test_kwargs_fall_back_to_eager(self):
        rng = np.random.default_rng(11)
        encoder = TransformerEncoder(1, 8, 2, 16, dropout=0.0, rng=rng)
        encoder.eval()
        compiled = CompiledModule(encoder)
        x = rng.standard_normal((2, 5, 8))
        mask = np.ones((2, 5))
        mask[:, -2:] = 0.0
        out = compiled(Tensor(x), attention_mask=mask)
        np.testing.assert_array_equal(out.data, encoder.inference(Tensor(x), attention_mask=mask).data)
        assert compiled.stats.fallbacks == 1
        assert compiled.stats.traces == 0

    def test_integer_input_disables_compilation(self):
        from repro.nn import Embedding

        embedding = Embedding(10, 4, rng=np.random.default_rng(12))
        embedding.eval()
        compiled = CompiledModule(embedding)
        indices = np.array([1, 4, 7])
        out = compiled.run(indices)
        np.testing.assert_array_equal(out, embedding.inference(indices).data)
        # A second, *different* index array must not replay a baked lookup.
        other = np.array([0, 2, 9])
        np.testing.assert_array_equal(compiled.run(other), embedding.inference(other).data)
        assert compiled.stats.traces == 0
        assert compiled.stats.fallbacks == 2

    def test_multi_output_forward_is_poisoned_not_wrong(self):
        gru = GRU(4, 3, rng=np.random.default_rng(13))
        gru.eval()
        compiled = CompiledModule(gru)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6, 4)))
        outputs, final = compiled(x)  # falls back: tuple output is untraceable
        eager_outputs, eager_final = gru.inference(x)
        np.testing.assert_array_equal(outputs.data, eager_outputs.data)
        np.testing.assert_array_equal(final.data, eager_final.data)
        assert compiled.stats.traces == 0
        assert compiled.stats.fallbacks >= 1

    def test_bucket_padding_slices_back_to_request(self):
        rng = np.random.default_rng(14)
        model = MLPClassifier(6, 3, hidden_dim=8, rng=rng)
        model.eval()
        compiled = CompiledModule(model, bucket_sizes=[4, 8])
        x = rng.standard_normal((3, 6))
        out = compiled.run(x)  # padded up to the 4-bucket
        np.testing.assert_array_equal(out, model.inference(Tensor(x)).data)
        assert out.shape[0] == 3
        assert compiled.stats.padded_replays == 1
        # A full-bucket batch reuses the same tape (no retrace).
        y = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(compiled.run(y), model.inference(Tensor(y)).data)
        assert compiled.stats.traces == 1

    def test_lru_eviction_bounds_bucket_count(self):
        rng = np.random.default_rng(15)
        module = Linear(4, 2, rng=rng)
        module.eval()
        compiled = CompiledModule(module, max_buckets=2)
        for batch in (1, 2, 3, 4):
            x = rng.standard_normal((batch, 4))
            np.testing.assert_array_equal(compiled.run(x), module.inference(Tensor(x)).data)
        assert compiled.compiled_bucket_count() <= 2
        assert compiled.stats.evictions == 2

    def test_dtype_switch_retraces(self):
        rng = np.random.default_rng(16)
        module = Linear(5, 3, rng=rng)
        module.eval()
        compiled = CompiledModule(module)
        x64 = rng.standard_normal((2, 5))
        np.testing.assert_array_equal(compiled.run(x64), module.inference(Tensor(x64)).data)
        module.to("float32")
        x32 = x64.astype(np.float32)
        out = compiled.run(x32)
        np.testing.assert_allclose(out, module.inference(Tensor(x32)).data, rtol=1e-5)
        assert compiled.stats.traces == 2  # old float64 tape was invalidated

    def test_weight_update_visible_without_retrace(self):
        """Param slots rebind from Parameter.data on every replay."""
        rng = np.random.default_rng(17)
        module = Linear(4, 2, rng=rng)
        module.eval()
        compiled = CompiledModule(module)
        x = rng.standard_normal((3, 4))
        before = compiled.run(x)
        module.weight.data = module.weight.data * 2.0
        after = compiled.run(x)
        np.testing.assert_array_equal(after, module.inference(Tensor(x)).data)
        assert compiled.stats.traces == 1
        assert not np.array_equal(before, after)

    def test_self_check_demotes_value_dependent_forward(self):
        from repro.nn import ensure_tensor

        class ValueDependent(Module):
            def __init__(self):
                super().__init__()

            def forward(self, x):
                x = ensure_tensor(x)
                # Escapes through .data: the tape would bake this batch in.
                return x + Tensor(np.array(x.data.sum()))

        module = ValueDependent()
        compiled = CompiledModule(module)
        a = np.ones((2, 3))
        b = np.full((2, 3), 5.0)
        np.testing.assert_array_equal(compiled.run(a), module.inference(Tensor(a)).data)
        np.testing.assert_array_equal(compiled.run(b), module.inference(Tensor(b)).data)


class TestCompiledModuleSurface:
    def test_forward_returns_detached_tensor(self):
        module = Linear(3, 2, rng=np.random.default_rng(18))
        compiled = module.compile()
        out = compiled(Tensor(np.ones((2, 3))))
        assert isinstance(out, Tensor)
        assert not out.requires_grad
        assert out._prev == ()

    def test_delegates_module_attributes(self):
        rng = np.random.default_rng(19)
        model = ClassificationModel(
            SagaBackbone(
                BackboneConfig(
                    input_channels=6, window_length=16, hidden_dim=8, num_layers=1,
                    num_heads=2, intermediate_dim=16, dropout=0.0,
                ),
                rng=rng,
            ),
            4,
            rng=rng,
        )
        compiled = model.compile()
        assert compiled.num_classes == 4
        assert compiled.backbone.config.window_length == 16
        assert compiled.dtype == model.dtype

    def test_output_copy_is_isolated_from_arena(self):
        """Two successive replays must not clobber each other's results."""
        rng = np.random.default_rng(20)
        module = Sequential(Linear(4, 4, rng=rng), TanhActivation())
        module.eval()
        compiled = CompiledModule(module)
        a = rng.standard_normal((2, 4))
        b = rng.standard_normal((2, 4))
        out_a = compiled.run(a)
        snapshot = out_a.copy()
        compiled.run(b)
        np.testing.assert_array_equal(out_a, snapshot)


class TestReviewRegressions:
    def test_empty_batch_falls_back_to_eager(self):
        """Padding has no row to repeat for an empty batch; eager handles it."""
        rng = np.random.default_rng(21)
        module = MLPClassifier(4, 3, hidden_dim=8, rng=rng)
        module.eval()
        compiled = CompiledModule(module, bucket_sizes=[4, 8])
        empty = np.empty((0, 4))
        out = compiled.run(empty)
        assert out.shape == (0, 3)
        np.testing.assert_array_equal(out, module.inference(Tensor(empty)).data)
        assert compiled.stats.fallbacks == 1
        assert compiled.stats.traces == 0

    def test_power_of_two_buckets_helper(self):
        from repro.nn.jit.compiled import power_of_two_buckets

        assert power_of_two_buckets(1) == [1]
        assert power_of_two_buckets(8) == [1, 2, 4, 8]
        assert power_of_two_buckets(96) == [1, 2, 4, 8, 16, 32, 64, 96]
        with pytest.raises(ConfigurationError):
            power_of_two_buckets(0)
