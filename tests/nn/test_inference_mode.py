"""The no_grad inference fast path: semantics, thread-locality, module wiring."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    Sequential,
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)


class TestNoGradSemantics:
    def test_ops_inside_no_grad_are_detached(self):
        a = Tensor(np.random.default_rng(0).standard_normal((3, 3)), requires_grad=True)
        with no_grad():
            out = (a @ a).relu().sum()
        assert not out.requires_grad
        assert out._prev == ()
        assert out._backward() is None  # noop closure, no graph

    def test_grad_mode_restored_after_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_grad_mode_restored_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_enable_grad_restores_disabled_mode_on_exception(self):
        """enable_grad inside no_grad must hand back *disabled* recording even
        when the block raises — the serving-vs-training invariant would
        silently break if an exception re-enabled recording in a worker."""
        with no_grad():
            with pytest.raises(ValueError):
                with enable_grad():
                    assert is_grad_enabled()
                    raise ValueError("boom")
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_decorator_restores_mode_on_exception(self):
        @no_grad()
        def exploding():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            exploding()
        assert is_grad_enabled()

    def test_enable_grad_nested_in_no_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            detached = a * 2
            with enable_grad():
                attached = a * 3
        assert not detached.requires_grad
        assert attached.requires_grad
        attached.sum().backward()
        np.testing.assert_allclose(a.grad, 3.0)

    def test_decorator_form(self):
        a = Tensor(np.ones(4), requires_grad=True)

        @no_grad()
        def forward(x):
            assert not is_grad_enabled()
            return x * 2

        assert not forward(a).requires_grad
        assert is_grad_enabled()

    def test_leaf_creation_unaffected(self):
        with no_grad():
            leaf = Tensor(np.ones(3), requires_grad=True)
        assert leaf.requires_grad  # no_grad detaches op results, not leaves

    def test_set_grad_enabled_returns_previous(self):
        previous = set_grad_enabled(False)
        try:
            assert previous is True
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(True)

    def test_gradients_identical_with_and_without_interleaved_no_grad(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((4, 4))
        a = Tensor(data, requires_grad=True)
        (a.tanh().sum()).backward()
        expected = a.grad.copy()

        b = Tensor(data, requires_grad=True)
        with no_grad():
            b.tanh().sum()  # a discarded inference pass must not disturb training
        (b.tanh().sum()).backward()
        np.testing.assert_allclose(b.grad, expected)


class TestThreadLocality:
    def test_no_grad_in_worker_does_not_leak_to_other_threads(self):
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)
                observed["worker"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        observed["main"] = is_grad_enabled()  # main thread still records
        release.set()
        thread.join(timeout=5.0)
        assert observed == {"main": True, "worker": False}

    def test_main_thread_no_grad_does_not_leak_into_new_threads(self):
        """Each thread starts with recording enabled regardless of the mode
        the spawning thread happens to be in (the training-vs-serving
        isolation DESIGN.md promises)."""
        observed = {}

        def worker():
            observed["fresh"] = is_grad_enabled()

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=5.0)
        assert observed == {"fresh": True}

    def test_exception_in_worker_does_not_disturb_other_threads(self):
        def worker():
            try:
                with no_grad():
                    raise RuntimeError("boom")
            except RuntimeError:
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=5.0)
        assert is_grad_enabled()


class TestModuleInference:
    def test_inference_skips_graph_and_restores_mode(self):
        model = Sequential(
            Linear(4, 8, rng=np.random.default_rng(0)),
            Linear(8, 2, rng=np.random.default_rng(1)),
        )
        model.train()
        out = model.inference(Tensor(np.ones((3, 4))))
        assert not out.requires_grad
        assert out._prev == ()
        assert model.training  # train mode restored

    def test_inference_matches_eval_forward(self):
        rng = np.random.default_rng(2)
        model = Linear(5, 3, rng=rng)
        x = Tensor(rng.standard_normal((6, 5)))
        model.eval()
        np.testing.assert_allclose(model.inference(x).data, model(x).data)
        assert not model.training  # eval mode kept

    def test_training_still_works_after_inference(self):
        rng = np.random.default_rng(3)
        model = Linear(4, 1, rng=rng)
        x = Tensor(rng.standard_normal((8, 4)))
        model.inference(x)
        loss = (model(x) ** 2.0).sum()
        loss.backward()
        assert model.weight.grad is not None

    def test_requires_grad_freezes_parameters(self):
        model = Linear(3, 3, rng=np.random.default_rng(4))
        model.requires_grad_(False)
        assert all(not p.requires_grad for p in model.parameters())
        out = model(Tensor(np.ones((2, 3)))).sum()
        assert not out.requires_grad  # nothing upstream wants gradients
        model.requires_grad_(True)
        assert all(p.requires_grad for p in model.parameters())


class TestFastPathIsLeaner:
    def test_no_grad_ops_carry_no_graph_metadata(self):
        """Detached ops must skip _prev/_op entirely, not just the closures."""
        from repro.nn import concatenate, stack, where
        from repro.nn.tensor import _noop_backward

        a = Tensor(np.random.default_rng(0).standard_normal((4, 5)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).standard_normal((4, 5)), requires_grad=True)
        with no_grad():
            results = [
                a + b, a * b, a @ b.T, a ** 2.0, a.exp(), a.tanh(), a.sigmoid(),
                a.relu(), a.gelu(), a.abs(), a.clip(-1.0, 1.0), a.sum(axis=1),
                a.max(axis=0), a.reshape(20), a.transpose(), a[1:], a.expand_dims(0),
                a.squeeze(), a.astype("float32"), concatenate([a, b]), stack([a, b]),
                where(a.data > 0, a, b),
            ]
        for out in results:
            assert out._op == ""          # no op label
            assert out._prev == ()        # no parent references
            assert out._backward is _noop_backward  # no closure allocated
            assert not out.requires_grad

    def test_no_grad_skips_backward_only_precomputation(self, monkeypatch):
        """abs/transpose precompute sign/inverse-permutation only for backward;
        the inference fast path must never touch them."""
        a = Tensor(np.random.default_rng(2).standard_normal((3, 4)), requires_grad=True)

        def forbidden(*args, **kwargs):
            raise AssertionError("backward-only precomputation ran under no_grad")

        with no_grad():
            monkeypatch.setattr(np, "sign", forbidden)
            monkeypatch.setattr(np, "argsort", forbidden)
            a.abs()
            a.transpose()
        monkeypatch.undo()
        # The grad-recording path still uses them.
        a.abs().sum().backward()
        assert a.grad is not None

    def test_no_grad_binary_ops_allocate_fewer_objects(self):
        """The detached path must not build the per-op parent tuples."""
        import tracemalloc

        a = Tensor(np.ones((8, 8)), requires_grad=True)

        def chain():
            y = a
            for _ in range(50):
                y = (y * a) + a
            return y

        chain()  # warm caches
        tracemalloc.start()
        chain()
        _, grad_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        with no_grad():
            chain()
            tracemalloc.start()
            chain()
            _, no_grad_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert no_grad_peak < grad_peak

    def test_no_grad_builds_no_graph_for_deep_chains(self):
        x = Tensor(np.ones((64, 64)), requires_grad=True)
        with no_grad():
            y = x
            for _ in range(10):
                y = (y @ x).tanh()
        assert y._prev == ()
        # The grad-recording version retains references at every step.
        z = (x @ x).tanh()
        assert z._prev != ()
